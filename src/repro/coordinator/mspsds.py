"""The MS-PSDS stepping loop over NTCP.

Per time step the coordinator (paper Figure 5 / §3) drives an explicit
state machine::

    INTEGRATE -> PROPOSE -> EXECUTE -> COMMIT

1. **INTEGRATE** — compute the next displacement from the pseudo-dynamic
   integrator (force data feeds the computational model, "the correct
   displacements were calculated and sent to the ... test sites");
2. **PROPOSE** — one transaction per site, so every site can veto before
   anything moves;
3. **EXECUTE** — all transactions in parallel; collect measured forces;
4. **COMMIT** — assemble the global restoring force and advance the
   integrator.

The machine's position lives in a serializable
:class:`~repro.coordinator.state.ExperimentState` (next step index,
committed integrator snapshot, pending transaction names).  With a
:mod:`checkpoint store <repro.repository.checkpoint>` attached, the state
plus the unflushed :class:`StepRecord` tail is persisted every N committed
steps and, best-effort, at abort time — so an aborted run resumes instead
of restarting: a new coordinator built from the checkpoint replays
committed-but-unpersisted steps through NTCP's idempotent propose/execute
(the servers return stored outcomes without touching specimens) and
reconciles the in-flight step via
:class:`~repro.coordinator.reconcile.Reconciler`.

Failures surface here as exceptions from the NTCP client; the configured
:class:`~repro.coordinator.fault_policy.FaultPolicy` decides retry vs
abort.  Retries and resumes reuse the same transaction names, so NTCP's
at-most-once semantics guarantee no step is ever applied twice to a
physical specimen — even across a coordinator restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.coordinator.fault_policy import FaultPolicy, NaiveFaultPolicy
from repro.coordinator.reconcile import (
    ACTION_CANCEL,
    ACTION_HARVEST,
    ACTION_REPROPOSE,
    Reconciler,
    ReconciliationReport,
)
from repro.coordinator.records import ExperimentResult, StepRecord
from repro.coordinator.state import (
    PHASE_COMMIT,
    PHASE_EXECUTE,
    PHASE_IDLE,
    PHASE_INTEGRATE,
    PHASE_PROPOSE,
    ExperimentState,
    record_to_payload,
)
from repro.core.client import NTCPClient
from repro.core.messages import ProposalVerdict
from repro.control.actions import make_displacement_actions
from repro.net.breaker import BreakerOpen, CircuitBreaker
from repro.net.rpc import RpcError
from repro.ogsi.handle import GridServiceHandle
from repro.repository.checkpoint import CheckpointPolicy, build_checkpoint_doc
from repro.structural.ground_motion import GroundMotion
from repro.structural.integrators import CentralDifferencePSD
from repro.structural.model import StructuralModel
from repro.util.errors import ConfigurationError, ProtocolError, ReproError


class SiteBinding:
    """One substructure site: its NTCP handle and global-DOF mapping.

    ``dof_indices[local] = global`` — the site receives displacements for
    its local DOFs and returns forces on them.
    """

    def __init__(self, name: str, handle: GridServiceHandle, dof_indices=(0,)):
        self.name = name
        self.handle = handle
        self.dof_indices = np.asarray(dof_indices, dtype=int)


@dataclass
class _InFlightStep:
    """One step's propose+execute round, running as a background process.

    The pipelined loop keeps at most two of these alive: the *verified*
    step (``speculative=False`` — its commanded displacement came from
    the committed integrator state) and the *speculative* step issued one
    ahead of it from predicted forces.  ``process`` is the kernel process
    running :meth:`SimulationCoordinator._step_at_all_sites`; its value
    is the per-site force map.  The process is defused at creation —
    a speculation abandoned by rollback must never crash the kernel —
    and awaited explicitly where its outcome matters.
    """

    step: int
    d: np.ndarray                 #: the displacement commanded to the sites
    txns: dict[str, str]          #: site name -> transaction name
    process: Any                  #: kernel Process yielding the force map
    issued_at: float              #: sim time the round went on the wire
    speculative: bool = False


class SimulationCoordinator:
    """Drives a distributed hybrid experiment to completion.

    Args:
        run_id: unique name; prefixes every transaction name.
        client: the NTCP client (owns RPC retry behaviour).
        model: nominal linear model of the full structure — mass and
            damping are exact (they are numerical in PSD testing); the
            stiffness is the design estimate used only for integrator setup.
        motion: the ground acceleration record (one step per sample).
        sites: substructure bindings; together they must restrain every DOF.
        fault_policy: retry/abort behaviour on step failures.
        execution_timeout: per-transaction execution budget sent to sites.
        on_step: optional callback invoked with each committed
            :class:`StepRecord` (used to feed NSDS/CHEF streaming).
        checkpoint_store: optional
            :class:`~repro.repository.checkpoint.CheckpointStoreBase`;
            when set, experiment state is persisted per ``checkpoint_policy``.
        checkpoint_policy: when to checkpoint (default: every 50 steps,
            plus a best-effort checkpoint while aborting).
        state: a prepared resume state (see
            :func:`~repro.coordinator.state.resume_state_from_checkpoint`);
            ``None`` starts a fresh run.
        prior_records: the committed steps recovered from checkpoints,
            prepended to this incarnation's result.
        breakers: optional ``{site name: CircuitBreaker}`` map; every NTCP
            exchange with a site passes through its breaker, so a site
            that keeps failing is fast-failed (``BreakerOpen``) instead of
            burning the full RPC retry ladder on every attempt.
        failover: optional
            :class:`~repro.coordinator.failover.FailoverManager`; consulted
            when a step attempt fails, it may swap a dead site for its
            numerical surrogate (graceful degradation) instead of letting
            the fault policy abort the run.
        pipeline_depth: ``0`` (default) runs the classic sequential
            machine.  ``1`` enables pipelined stepping: while step *n*
            executes at the sites, the coordinator speculatively
            integrates and proposes step *n+1* from predicted restoring
            forces, hiding one protocol round trip per step.  A
            mispredict or a mid-flight fault rolls the speculation back
            under the §7 cancel+rename discipline, so committed
            histories stay bit-exact with the sequential run.
        predictor: object with ``predict(site, targets) -> forces``
            (see :class:`~repro.coordinator.predictor.SubstructurePredictor`)
            supplying the predicted restoring forces speculation
            integrates against; required when ``pipeline_depth > 0``.
        mispredict_tolerance: maximum absolute divergence between the
            speculative displacement command and the one the measured
            forces produce before the speculation is rolled back;
            ``0.0`` (default) demands bit-exact prediction.
    """

    def __init__(self, *, run_id: str, client: NTCPClient,
                 model: StructuralModel, motion: GroundMotion,
                 sites: list[SiteBinding],
                 fault_policy: FaultPolicy | None = None,
                 execution_timeout: float = 60.0,
                 negotiation_barrier: bool = True,
                 integrator_factory: Callable | None = None,
                 on_step: Callable[[StepRecord], None] | None = None,
                 checkpoint_store=None,
                 checkpoint_policy: CheckpointPolicy | None = None,
                 state: ExperimentState | None = None,
                 prior_records: Sequence[StepRecord] = (),
                 breakers: dict[str, CircuitBreaker] | None = None,
                 failover=None,
                 pipeline_depth: int = 0,
                 predictor=None,
                 mispredict_tolerance: float = 0.0):
        if not sites:
            raise ConfigurationError("coordinator needs at least one site")
        covered = set()
        for site in sites:
            covered.update(int(i) for i in site.dof_indices)
        if covered != set(range(model.n_dof)):
            raise ConfigurationError(
                f"sites cover DOFs {sorted(covered)}; model has "
                f"{model.n_dof} DOF(s)")
        self.run_id = run_id
        self.client = client
        self.model = model
        self.motion = motion
        self.sites = list(sites)
        self.fault_policy = fault_policy or NaiveFaultPolicy()
        self.execution_timeout = execution_timeout
        #: With the barrier (the paper's design), *all* sites must accept a
        #: step's proposals before any site executes.  Disabling it (an
        #: ablation) lets each site execute as soon as its own proposal is
        #: accepted — one overlapped round trip faster, but a late
        #: rejection leaves other specimens already moved.
        self.negotiation_barrier = negotiation_barrier
        self.on_step = on_step
        self.checkpoint_store = checkpoint_store
        self.checkpoint_policy = checkpoint_policy or CheckpointPolicy()
        if state is None:
            self.state = ExperimentState(run_id=run_id,
                                         target_steps=motion.n_steps - 1,
                                         dt=motion.dt)
        else:
            if state.run_id != run_id:
                raise ConfigurationError(
                    f"resume state is for run {state.run_id!r}, "
                    f"coordinator is {run_id!r}")
            if (state.target_steps != motion.n_steps - 1
                    or not np.isclose(state.dt, motion.dt)):
                raise ConfigurationError(
                    "resume state does not match the configured motion "
                    f"record (state: {state.target_steps} steps @ "
                    f"{state.dt}; motion: {motion.n_steps - 1} @ "
                    f"{motion.dt})")
            if state.generation > 0 and state.integrator is None:
                raise ConfigurationError(
                    "resume state carries no integrator snapshot")
            self.state = state
        self.prior_records = list(prior_records)
        self.breakers: dict[str, CircuitBreaker] = dict(breakers or {})
        self.failover = failover
        if pipeline_depth < 0:
            raise ConfigurationError("pipeline_depth must be >= 0")
        if pipeline_depth > 1:
            raise ConfigurationError(
                "pipeline_depth > 1 is not supported: speculating more "
                "than one step ahead compounds prediction error without "
                "hiding additional round trips")
        if pipeline_depth > 0 and predictor is None:
            raise ConfigurationError(
                "pipelined stepping needs a predictor (see "
                "repro.coordinator.predictor.SubstructurePredictor)")
        self.pipeline_depth = int(pipeline_depth)
        self.predictor = predictor
        self.mispredict_tolerance = float(mispredict_tolerance)
        #: monotone epoch appended (``-s<n>``) to transaction names whose
        #: speculation was rolled back — a cancelled name is burned
        #: server-side, so the verified re-proposal must never reuse it.
        self._speculation_epoch = 0
        self.last_reconciliation: ReconciliationReport | None = None
        self._records_flushed = 0
        self._txn_overrides: dict[tuple[int, str], str] = {}
        self.kernel = client.rpc.kernel
        telemetry = self.kernel.telemetry
        self._tracer = telemetry.tracer
        self._tm_steps = telemetry.counter("coordinator.mspsds.steps",
                                           run_id=run_id)
        self._tm_retries = telemetry.counter("coordinator.mspsds.retries",
                                             run_id=run_id)
        self._tm_step_time = telemetry.histogram("coordinator.mspsds.step_time",
                                                 run_id=run_id)
        self._tm_ckpt_writes = telemetry.counter(
            "coordinator.checkpoint.writes", run_id=run_id)
        self._tm_ckpt_time = telemetry.histogram(
            "coordinator.checkpoint.write_time", run_id=run_id)
        self._tm_resumes = telemetry.counter("coordinator.resume.resumes",
                                             run_id=run_id)
        self._tm_harvested = telemetry.counter("coordinator.resume.harvested",
                                               run_id=run_id)
        self._tm_cancelled = telemetry.counter("coordinator.resume.cancelled",
                                               run_id=run_id)
        self._tm_reproposed = telemetry.counter(
            "coordinator.resume.reproposed", run_id=run_id)
        self._tm_replayed = telemetry.counter("coordinator.resume.replayed",
                                              run_id=run_id)
        self._tm_degraded_steps = telemetry.counter(
            "coordinator.failover.degraded_steps", run_id=run_id)
        self._tm_spec_issued = telemetry.counter(
            "coordinator.pipeline.speculated", run_id=run_id)
        self._tm_spec_hits = telemetry.counter(
            "coordinator.pipeline.hits", run_id=run_id)
        self._tm_spec_mispredicts = telemetry.counter(
            "coordinator.pipeline.mispredicts", run_id=run_id)
        self._tm_spec_drains = telemetry.counter(
            "coordinator.pipeline.drains", run_id=run_id)
        telemetry.gauge("coordinator.pipeline.depth",
                        run_id=run_id).set(self.pipeline_depth)
        #: any object with the start/propose_next/commit stepping API
        #: (CentralDifferencePSD for MOST; AlphaOSPSD for stiff structures
        #: whose frequencies exceed the explicit stability limit).
        factory = integrator_factory or CentralDifferencePSD
        self._integrator_factory = factory
        self.integrator = factory(model, motion.dt)
        #: lazily built twin used only to compute speculative commands —
        #: it is re-grounded in the committed integrator's snapshot
        #: before every speculation, so it never drifts from truth.
        self._shadow_integrator = None
        self._integrator_started = False
        if self.state.integrator is not None:
            self.integrator.restore(self.state.integrator)
            self._integrator_started = True
        if failover is not None:
            failover.bind(self)

    # -- helpers -----------------------------------------------------------
    def _txn_name(self, step: int, site: SiteBinding) -> str:
        override = self._txn_overrides.get((step, site.name))
        if override is not None:
            return override
        return f"{self.run_id}-step{step:05d}-{site.name}"

    def _site_targets(self, site: SiteBinding,
                      d_global: np.ndarray) -> dict:
        if d_global.ndim > 1:
            # Ensemble batch: one column per scenario variant; the wire
            # value for each DOF is the whole row.
            return {local: [float(v) for v in d_global[global_dof]]
                    for local, global_dof in enumerate(site.dof_indices)}
        return {local: float(d_global[global_dof])
                for local, global_dof in enumerate(site.dof_indices)}

    def _state_shape(self) -> tuple[int, ...]:
        """Shape of displacement/force vectors (widened by ensembles)."""
        return (self.model.n_dof,)

    def _zero_displacement(self) -> np.ndarray:
        """The at-rest command for step 0."""
        return np.zeros(self._state_shape())

    def _external_force(self, step: int) -> np.ndarray:
        """External load for ``step`` (ensembles widen it per variant)."""
        return self.model.external_force(self.motion.accel[step])

    def _coerce_site_forces(self, forces: dict) -> dict:
        """Normalize one site's raw force readings keyed by local DOF."""
        out: dict[int, Any] = {}
        for dof, f in forces.items():
            if isinstance(f, (list, tuple)):
                out[int(dof)] = [float(v) for v in f]
            else:
                out[int(dof)] = float(f)
        return out

    def _count_step(self, record: StepRecord) -> None:
        """Per-commit accounting hook (ensembles count variant-steps)."""

    def _assemble_forces(self, per_site: dict[str, dict],
                         ) -> np.ndarray:
        r = np.zeros(self._state_shape())
        for site in self.sites:
            forces = per_site[site.name]
            for local, global_dof in enumerate(site.dof_indices):
                r[global_dof] += np.asarray(forces[local], dtype=float)
        return r

    def _guarded(self, site: SiteBinding, exchange):
        """Run one site's NTCP exchange through its circuit breaker.

        Fast-fails with :class:`BreakerOpen` while the site's breaker is
        open, records the outcome otherwise, and tags the propagating
        exception with ``site`` so the fault policy and failover manager
        know who failed.  A site currently served by its surrogate
        bypasses the breaker entirely — the breaker tracks the *real*
        site's health, and surrogate successes must not close it.
        """
        breaker = self.breakers.get(site.name)
        if (breaker is not None and self.failover is not None
                and site.name in self.failover.active):
            breaker = None
        if breaker is not None:
            breaker.check()
        try:
            result = yield from exchange
        except (RpcError, ReproError) as exc:
            if getattr(exc, "site", None) in (None, "?"):
                exc.site = site.name
            # Policy rejections are the site *working* (vetoing an unsafe
            # command is NTCP behaving as designed), not failing.
            if breaker is not None and not (isinstance(exc, ProtocolError)
                                            and "rejected" in str(exc)):
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result

    def _step_at_all_sites(self, step: int, d_global: np.ndarray, ctx=None,
                           *, set_phase: bool = True):
        """Propose then execute step ``step`` at every site, in parallel.

        Returns ``{site: {local_dof: force}}``; raises on any failure
        (after cancelling accepted siblings if a site rejected).  ``ctx``
        is the step span context the phase spans nest under.
        ``set_phase=False`` keeps ``state.phase`` untouched — a
        speculative round must not make the serialized machine claim it
        is executing a step that has not been verified yet.
        """
        if not self.negotiation_barrier:
            results = yield from self._step_without_barrier(step, d_global,
                                                            ctx)
            return results
        verdicts: dict[str, ProposalVerdict] = {}
        propose_span = self._tracer.start_span(
            "coordinator.step.propose", parent=ctx, step=step)

        def propose_one(site: SiteBinding):
            actions = make_displacement_actions(
                self._site_targets(site, d_global))
            verdict = yield from self._guarded(site, self.client.propose(
                site.handle, self._txn_name(step, site), actions,
                execution_timeout=self.execution_timeout,
                ctx=propose_span))
            verdicts[site.name] = verdict

        procs = [self.kernel.process(propose_one(s),
                                     name=f"propose.{s.name}.{step}")
                 for s in self.sites]
        try:
            yield self.kernel.all_of(procs)
        except BaseException:
            propose_span.end(ok=False)
            raise

        if self.state.generation and all(v.state == "executed"
                                         for v in verdicts.values()):
            # Every site already holds this step's outcome: the resumed
            # coordinator is replaying a committed-but-unpersisted step
            # through the idempotent paths; no specimen will move.
            self._tm_replayed.inc()

        rejected = [name for name, v in verdicts.items()
                    if v.state not in ("accepted", "executed", "executing")]
        if rejected:
            propose_span.end(ok=False, rejected=",".join(rejected))
            # Abort this step: cancel the accepted siblings for hygiene.
            for site in self.sites:
                if verdicts[site.name].state == "accepted":
                    cancel = self.kernel.process(
                        self.client.cancel(site.handle,
                                           self._txn_name(step, site)))
                    cancel.defuse()
            name = rejected[0]
            raise ProtocolError(
                f"site {name} rejected step {step}: "
                f"{verdicts[name].error or ''}")
        propose_span.end(ok=True)

        if set_phase:
            self.state.phase = PHASE_EXECUTE
        results: dict[str, dict[int, float]] = {}
        execute_span = self._tracer.start_span(
            "coordinator.step.execute", parent=ctx, step=step)

        def execute_one(site: SiteBinding):
            result = yield from self._guarded(site, self.client.execute(
                site.handle, self._txn_name(step, site),
                timeout=self.execution_timeout + 10.0,
                ctx=execute_span))
            forces = result.readings["forces"]
            results[site.name] = self._coerce_site_forces(forces)

        procs = [self.kernel.process(execute_one(s),
                                     name=f"execute.{s.name}.{step}")
                 for s in self.sites]
        try:
            yield self.kernel.all_of(procs)
        except BaseException:
            execute_span.end(ok=False)
            raise
        execute_span.end(ok=True)
        return results

    def _step_without_barrier(self, step: int, d_global: np.ndarray,
                              ctx=None):
        """Ablation path: per-site propose→execute chains, no global gate."""
        results: dict[str, dict[int, float]] = {}
        span = self._tracer.start_span(
            "coordinator.step.propose_execute", parent=ctx, step=step)

        def chain_one(site: SiteBinding):
            actions = make_displacement_actions(
                self._site_targets(site, d_global))
            result = yield from self._guarded(
                site, self.client.propose_and_execute(
                    site.handle, self._txn_name(step, site), actions,
                    execution_timeout=self.execution_timeout,
                    timeout=self.execution_timeout + 10.0,
                    ctx=span))
            forces = result.readings["forces"]
            results[site.name] = self._coerce_site_forces(forces)

        procs = [self.kernel.process(chain_one(s),
                                     name=f"chain.{s.name}.{step}")
                 for s in self.sites]
        try:
            yield self.kernel.all_of(procs)
        except BaseException:
            span.end(ok=False)
            raise
        span.end(ok=True)
        return results

    def _attempt_with_policy(self, step: int, d_global: np.ndarray,
                             result: ExperimentResult, ctx=None, *,
                             initial_error=None):
        """One step with fault-policy retries; returns (forces, attempts).

        ``initial_error`` lets the pipelined loop feed in a failure from
        an already-issued round (the in-flight step it was awaiting) so
        attempt #1 consults the policy instead of re-sending blindly.
        """
        attempt = 0
        exc = initial_error
        while True:
            attempt += 1
            if exc is None:
                try:
                    forces = yield from self._step_at_all_sites(step,
                                                                d_global, ctx)
                    return forces, attempt
                except (RpcError, ReproError) as caught:
                    exc = caught
            site = getattr(exc, "site", "?")
            self.kernel.emit(f"coordinator.{self.run_id}", "step.failed",
                             step=step, attempt=attempt, error=str(exc))
            if isinstance(exc, ProtocolError) and "rejected" in str(exc):
                # A policy rejection is not transient; never retry.
                raise exc
            if self.failover is not None and self.failover.consider(
                    step=step, site=site, error=exc):
                # The site was just swapped for its numerical
                # surrogate (and the step's transaction renamed);
                # retry immediately instead of asking the policy.
                self._tm_retries.inc()
                exc = None
                continue
            decision = self.fault_policy.decide(
                step=step, attempt=attempt, site=site, error=exc)
            if decision.action != "retry":
                raise exc
            self._tm_retries.inc()
            if decision.delay > 0:
                wait_span = self._tracer.start_span(
                    "coordinator.step.retry_wait", parent=ctx,
                    step=step, attempt=attempt)
                yield self.kernel.timeout(decision.delay)
                wait_span.end()
            exc = None

    # -- pipelined stepping ---------------------------------------------------
    def _shadow(self):
        """The speculation twin, built lazily from the same factory."""
        if self._shadow_integrator is None:
            self._shadow_integrator = self._integrator_factory(
                self.model, self.motion.dt)
        return self._shadow_integrator

    def _predicted_forces(self, d_cmd: np.ndarray) -> dict[str, dict]:
        """What the predictor expects every site to measure for ``d_cmd``."""
        return {site.name: self.predictor.predict(
                    site.name, self._site_targets(site, d_cmd))
                for site in self.sites}

    def _issue_step(self, step: int, d_cmd: np.ndarray, *,
                    speculative: bool) -> _InFlightStep:
        """Launch one step's propose+execute round as a background process.

        The round runs :meth:`_step_at_all_sites` without touching
        ``state.phase`` (the serialized machine must not claim to execute
        a step that is still speculative); the process is defused so an
        abandoned speculation's failure never crashes the kernel.
        """
        txns = {site.name: self._txn_name(step, site) for site in self.sites}
        span_name = ("coordinator.step.speculate" if speculative
                     else "coordinator.step.round")

        def round_runner():
            span = self._tracer.start_span(span_name, step=step)
            try:
                forces = yield from self._step_at_all_sites(
                    step, d_cmd, span, set_phase=False)
            except BaseException:
                span.end(ok=False)
                raise
            span.end(ok=True)
            return forces

        process = self.kernel.process(round_runner(),
                                      name=f"step.round.{step}")
        process.defuse()
        return _InFlightStep(step=step, d=d_cmd, txns=txns, process=process,
                             issued_at=self.kernel.now,
                             speculative=speculative)

    def _speculate(self, step: int, pending: _InFlightStep):
        """Issue step ``step`` speculatively while ``pending`` executes.

        The shadow integrator is re-grounded in the committed state,
        advanced through the in-flight command against *predicted*
        restoring forces, and the resulting displacement goes on the wire
        one round trip early.  The speculative names are recorded in
        ``state.speculative`` (at ``state.speculative_step``) so a
        checkpoint taken while they may be burned lets the resume drain
        them.  Returns ``None`` (speculation skipped) if the prediction
        goes non-finite — the verified path will abort cleanly instead.
        """
        shadow = self._shadow()
        shadow.restore(self.integrator.snapshot())
        # Re-deriving the in-flight command arms the shadow for commit
        # (AlphaOS predictor-corrector refuses to commit un-proposed).
        shadow.propose_next()
        r_hat = self._assemble_forces(self._predicted_forces(pending.d))
        shadow.commit(pending.d, r_hat, self._external_force(pending.step))
        d_hat = shadow.propose_next()
        if not np.all(np.isfinite(d_hat)):
            return None
        spec = self._issue_step(step, d_hat, speculative=True)
        self.state.speculative = dict(spec.txns)
        self.state.speculative_step = step
        self._tm_spec_issued.inc()
        return spec

    def _rollback_speculation(self, spec: _InFlightStep, reason: str) -> None:
        """Retire a wrong (or fault-stranded) speculation, §7-style.

        Non-blocking: cancels are fire-and-forget (the round's own
        process is defused and left to die), and the step's verified
        re-proposal is renamed with a fresh ``-s<epoch>`` suffix — a
        cancelled name is burned server-side, so reusing it would turn
        the re-proposal into a permanent rejection.  The burned names
        stay in ``state.speculative`` until the replacement goes on the
        wire, keeping the resume drain able to find them.
        """
        self._speculation_epoch += 1
        for site in self.sites:
            name = spec.txns[site.name]
            cancel = self.kernel.process(
                self.client.cancel(site.handle, name),
                name=f"pipeline.cancel.{site.name}.{spec.step}")
            cancel.defuse()
            self._txn_overrides[(spec.step, site.name)] = (
                f"{name}-s{self._speculation_epoch}")
        if reason == "mispredict":
            self._tm_spec_mispredicts.inc()
        else:
            self._tm_spec_drains.inc()
        self.kernel.emit(f"coordinator.{self.run_id}", "pipeline.rolled_back",
                         step=spec.step, reason=reason)

    def _prediction_matches(self, d_true: np.ndarray,
                            d_spec: np.ndarray) -> bool:
        if self.mispredict_tolerance <= 0:
            return bool(np.array_equal(d_true, d_spec))
        return bool(np.max(np.abs(d_true - d_spec))
                    <= self.mispredict_tolerance)

    def _run_pipelined(self, result: ExperimentResult):
        """The overlapped stepping machine (``pipeline_depth == 1``).

        Instead of waiting out each step's full round trip, the
        coordinator issues step *n+1* speculatively (from predicted
        forces) as soon as step *n* is on the wire, then verifies the
        prediction when *n*'s measured forces arrive:

        * **hit** — the speculative command equals what the committed
          integrator produces; the speculation is *adopted* as the next
          in-flight step, hiding its propose/execute latency entirely;
        * **mispredict / fault** — the speculation is rolled back
          (cancel + ``-s`` rename) and the step re-runs sequentially
          from the committed state, so the committed history is the
          sequential one regardless.

        Returns ``True`` when the full record committed, ``False`` on
        abort (mirrors :meth:`_run_one_step`'s contract).
        """
        pending: _InFlightStep | None = None
        while self.state.step <= self.state.target_steps:
            step = self.state.step
            if pending is None:
                # Clean boundary — nothing in flight.  The only place
                # recovered sites may swap back in: a readmission under
                # a live speculation would split that step's
                # propose/execute across two servers.
                if self.failover is not None:
                    self.failover.apply_readmissions(step)
                self.state.phase = PHASE_INTEGRATE
                try:
                    d_next = self.integrator.propose_next()
                    if not np.all(np.isfinite(d_next)):
                        raise FloatingPointError("non-finite displacement")
                except (ValueError, FloatingPointError) as exc:
                    self._record_abort(result, step,
                                       f"integrator diverged: {exc}")
                    return False
                self.state.phase = PHASE_PROPOSE
                pending = self._issue_step(step, d_next, speculative=False)
                self.state.pending = dict(pending.txns)
                # The replacement names for any rolled-back speculation
                # of this step are now on the wire; the burned originals
                # are dead garbage no resume needs to drain.
                self.state.speculative = {}
                self.state.speculative_step = 0
            step_span = self._tracer.start_span("coordinator.step.pipelined",
                                                run_id=self.run_id, step=step)
            spec = None
            if (step < self.state.target_steps
                    and not (self.failover is not None
                             and self.failover.has_pending_readmissions)):
                spec = self._speculate(step + 1, pending)
            self.state.phase = PHASE_EXECUTE
            try:
                forces = yield pending.process
                attempts = 1
            except (RpcError, ReproError) as exc:
                # Drain the speculation *before* the sequential fallback:
                # its retries may swap in a surrogate, and a speculative
                # transaction must never straddle that swap.
                if spec is not None:
                    self._rollback_speculation(spec, "fault")
                    spec = None
                try:
                    forces, attempts = yield from self._attempt_with_policy(
                        step, pending.d, result, step_span,
                        initial_error=exc)
                except (RpcError, ReproError) as final:
                    step_span.end(ok=False)
                    self._record_abort(result, step, str(final))
                    return False
            self.state.phase = PHASE_COMMIT
            r_meas = self._assemble_forces(forces)
            p_next = self._external_force(step)
            self.integrator.commit(pending.d, r_meas, p_next)
            degraded = tuple(self.state.degraded_sites)
            record = StepRecord(step=step, model_time=step * self.motion.dt,
                                displacement=pending.d.copy(),
                                restoring_force=r_meas,
                                site_forces=forces, attempts=attempts,
                                wall_started=pending.issued_at,
                                wall_finished=self.kernel.now,
                                degraded=degraded)
            result.steps.append(record)
            if self.on_step is not None:
                self.on_step(record)
            self._tm_steps.inc()
            self._count_step(record)
            self._tm_step_time.observe(record.wall_finished -
                                       pending.issued_at)
            if degraded:
                self._tm_degraded_steps.inc()
            self.state.pending = {}
            self.state.phase = PHASE_IDLE
            self.state.step = step + 1
            next_pending = None
            if spec is not None:
                # propose_next() both re-arms the integrator for the
                # next commit and yields the truth the speculation is
                # judged against.  It is a pure function of committed
                # state, so a rolled-back path recomputing it at the
                # top of the loop gets the identical command.
                d_true = self.integrator.propose_next()
                if spec.process.triggered and not spec.process.ok:
                    # The speculative round already died (site fault
                    # mid-speculation); never adopt a broken round.
                    self._rollback_speculation(spec, "fault")
                elif self._prediction_matches(d_true, spec.d):
                    self._tm_spec_hits.inc()
                    next_pending = spec
                    self.state.pending = dict(spec.txns)
                    self.state.phase = PHASE_EXECUTE
                    # Adoption verifies the speculation: from here on it
                    # is an ordinary in-flight step a resume may harvest.
                    self.state.speculative = {}
                    self.state.speculative_step = 0
                else:
                    self._rollback_speculation(spec, "mispredict")
            step_span.end(ok=True, attempts=attempts,
                          speculated=spec is not None,
                          adopted=next_pending is not None)
            pending = next_pending
            yield from self._maybe_checkpoint(result, reason="policy")
        return True

    # -- checkpointing -------------------------------------------------------
    def _write_checkpoint(self, result: ExperimentResult, reason: str):
        """Kernel process: persist state + unflushed record tail.

        Best-effort by design — a checkpoint that cannot reach the
        repository is reported (``checkpoint.failed``) but never kills or
        perturbs the experiment.
        """
        seq = self.state.checkpoint_seq + 1
        self.state.integrator = self.integrator.snapshot()
        state_payload = self.state.to_payload()
        state_payload["checkpoint_seq"] = seq
        tail = result.steps[self._records_flushed:]
        doc = build_checkpoint_doc(
            run_id=self.run_id, seq=seq, wall_time=self.kernel.now,
            reason=reason, state_payload=state_payload,
            record_payloads=[record_to_payload(r) for r in tail])
        span = self._tracer.start_span("coordinator.checkpoint.write",
                                       run_id=self.run_id, seq=seq,
                                       reason=reason)
        started = self.kernel.now
        try:
            yield from self.checkpoint_store.save(doc)
        except (RpcError, ReproError) as exc:
            span.end(ok=False)
            self.kernel.emit(f"coordinator.{self.run_id}", "checkpoint.failed",
                             seq=seq, reason=reason, error=str(exc))
            return
        span.end(ok=True)
        self.state.checkpoint_seq = seq
        self._records_flushed = len(result.steps)
        self._tm_ckpt_writes.inc()
        self._tm_ckpt_time.observe(self.kernel.now - started)

    def _maybe_checkpoint(self, result: ExperimentResult, *, reason: str,
                          force: bool = False):
        if self.checkpoint_store is None or not self._integrator_started:
            return
        committed = self.state.step - 1
        if not force and not self.checkpoint_policy.due(committed):
            return
        yield from self._write_checkpoint(result, reason)

    def _abort_checkpoint(self, result: ExperimentResult):
        """The best-effort final checkpoint while aborting.

        Captures the in-flight step's pending transaction names so the
        resume-time reconciliation can probe exactly what was on the wire.
        """
        if (self.checkpoint_store is None
                or not self.checkpoint_policy.on_abort
                or not self._integrator_started):
            return
        yield from self._write_checkpoint(result, "abort")

    # -- lifecycle -----------------------------------------------------------
    def _record_abort(self, result: ExperimentResult, step: int,
                      reason: str) -> None:
        result.aborted_reason = reason
        result.aborted_at_step = step
        result.wall_finished = self.kernel.now
        self.kernel.emit(f"coordinator.{self.run_id}", "experiment.aborted",
                         step=step, error=reason)

    def _initialize(self, result: ExperimentResult):
        """Step 0: measure forces at rest and start the integrator."""
        d0 = self._zero_displacement()
        init_span = self._tracer.start_span("coordinator.step",
                                            run_id=self.run_id, step=0)
        self.state.phase = PHASE_PROPOSE
        self.state.pending = {site.name: self._txn_name(0, site)
                              for site in self.sites}
        try:
            forces0, _ = yield from self._attempt_with_policy(0, d0, result,
                                                              init_span)
        except (RpcError, ReproError) as exc:
            init_span.end(ok=False)
            result.aborted_reason = f"initialization failed: {exc}"
            result.aborted_at_step = 0
            result.wall_finished = self.kernel.now
            return False
        init_span.end(ok=True)
        r0 = self._assemble_forces(forces0)
        self.integrator.start(r0=r0, p0=self._external_force(0))
        self._integrator_started = True
        self.state.pending = {}
        self.state.phase = PHASE_IDLE
        self.state.step = 1
        yield from self._maybe_checkpoint(result, reason="policy")
        return True

    def _resume(self, result: ExperimentResult):
        """Re-enter the step machine after a coordinator restart."""
        result.steps.extend(self.prior_records)
        self._records_flushed = len(result.steps)
        self._tm_resumes.inc()
        self.kernel.emit(f"coordinator.{self.run_id}", "experiment.resumed",
                         step=self.state.step,
                         generation=self.state.generation,
                         prior_steps=len(self.prior_records))
        reconciler = Reconciler(client=self.client, sites=self.sites,
                                state=self.state, tracer=self._tracer)
        report = yield from reconciler.run()
        self.last_reconciliation = report
        for action in report.actions:
            self._txn_overrides[(self.state.step, action.site)] = (
                action.transaction)
            if action.action == ACTION_HARVEST:
                self._tm_harvested.inc()
            elif action.action == ACTION_CANCEL:
                self._tm_cancelled.inc()
            elif action.action == ACTION_REPROPOSE:
                self._tm_reproposed.inc()
        # Speculative overrides are applied *after* the in-flight step's,
        # so when the speculation's step index collides with state.step
        # (a rollback left burned names at the step a later commit made
        # current) the drain's rename wins — harvesting a mispredicted
        # speculation would commit forces for a displacement the
        # integrator never chose.
        for action in report.speculative:
            self._txn_overrides[(self.state.speculative_step, action.site)] \
                = action.transaction
            self._tm_spec_drains.inc()
        self.state.speculative = {}
        self.state.speculative_step = 0
        self.state.pending = {}
        self.state.phase = PHASE_IDLE
        return True

    def _run_one_step(self, result: ExperimentResult):
        """One full INTEGRATE → PROPOSE → EXECUTE → COMMIT cycle."""
        step = self.state.step
        wall_started = self.kernel.now
        if self.failover is not None:
            # Recovered sites re-enter only at step boundaries, so a step
            # never splits its propose/execute across two servers.
            self.failover.apply_readmissions(step)
        # The step span and its contiguous phase children (integrate →
        # propose → execute → commit, plus retry_wait on faults) are the
        # paper's Figure-5 step-time breakdown: phase durations sum to
        # the step's wall time on the sim clock.  Checkpoint spans live
        # *outside* the step span for the same reason.
        step_span = self._tracer.start_span("coordinator.step",
                                            run_id=self.run_id, step=step)
        self.state.phase = PHASE_INTEGRATE
        integrate_span = self._tracer.start_span(
            "coordinator.step.integrate", parent=step_span, step=step)
        try:
            d_next = self.integrator.propose_next()
            if not np.all(np.isfinite(d_next)):
                raise FloatingPointError("non-finite displacement")
        except (ValueError, FloatingPointError) as exc:
            # Numerical divergence (e.g. an explicit integrator past
            # its stability limit) ends the experiment, it does not
            # crash the coordinator.
            integrate_span.end(ok=False)
            step_span.end(ok=False)
            self._record_abort(result, step, f"integrator diverged: {exc}")
            return False
        integrate_span.end()
        self.state.phase = PHASE_PROPOSE
        self.state.pending = {site.name: self._txn_name(step, site)
                              for site in self.sites}
        try:
            forces, attempts = yield from self._attempt_with_policy(
                step, d_next, result, step_span)
        except (RpcError, ReproError) as exc:
            step_span.end(ok=False)
            self._record_abort(result, step, str(exc))
            return False
        self.state.phase = PHASE_COMMIT
        commit_span = self._tracer.start_span(
            "coordinator.step.commit", parent=step_span, step=step)
        r_next = self._assemble_forces(forces)
        p_next = self._external_force(step)
        self.integrator.commit(d_next, r_next, p_next)
        degraded = tuple(self.state.degraded_sites)
        record = StepRecord(step=step, model_time=step * self.motion.dt,
                            displacement=d_next.copy(),
                            restoring_force=r_next,
                            site_forces=forces, attempts=attempts,
                            wall_started=wall_started,
                            wall_finished=self.kernel.now,
                            degraded=degraded)
        result.steps.append(record)
        if self.on_step is not None:
            self.on_step(record)
        commit_span.end()
        if degraded:
            step_span.end(ok=True, attempts=attempts,
                          degraded=",".join(degraded))
            self._tm_degraded_steps.inc()
        else:
            step_span.end(ok=True, attempts=attempts)
        self._tm_steps.inc()
        self._count_step(record)
        self._tm_step_time.observe(record.wall_finished - wall_started)
        self.state.pending = {}
        self.state.phase = PHASE_IDLE
        self.state.step = step + 1
        yield from self._maybe_checkpoint(result, reason="policy")
        return True

    # -- the experiment ------------------------------------------------------
    def run(self):
        """Kernel process: execute the full record; returns the result.

        Never raises for step failures — aborts are recorded in the result
        (``completed=False``), matching how MOST's premature exit was itself
        a recorded outcome, not a crash.  A resumed coordinator
        (``state.generation > 0``) reconciles the aborted attempt first,
        then continues from the checkpointed step; its result contains the
        prior incarnations' records too, so histories merge seamlessly.
        """
        resumed = self.state.generation > 0
        result = ExperimentResult(run_id=self.run_id,
                                  target_steps=self.state.target_steps,
                                  dt=self.motion.dt,
                                  wall_started=(self.state.wall_started
                                                if resumed
                                                else self.kernel.now))
        if resumed:
            ok = yield from self._resume(result)
        else:
            self.state.wall_started = result.wall_started
            self.kernel.emit(f"coordinator.{self.run_id}",
                             "experiment.started",
                             steps=result.target_steps,
                             sites=len(self.sites))
            ok = yield from self._initialize(result)
        if not ok:
            yield from self._abort_checkpoint(result)
            return result
        if self.pipeline_depth > 0:
            ok = yield from self._run_pipelined(result)
            if not ok:
                yield from self._abort_checkpoint(result)
                return result
        else:
            while self.state.step <= self.state.target_steps:
                ok = yield from self._run_one_step(result)
                if not ok:
                    yield from self._abort_checkpoint(result)
                    return result
        result.completed = True
        result.wall_finished = self.kernel.now
        self.kernel.emit(f"coordinator.{self.run_id}", "experiment.completed",
                         steps=result.steps_completed,
                         wall=result.wall_duration)
        yield from self._maybe_checkpoint(result, reason="final", force=True)
        return result
