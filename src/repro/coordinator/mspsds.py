"""The MS-PSDS stepping loop over NTCP.

Per time step the coordinator (paper Figure 5 / §3) drives an explicit
state machine::

    INTEGRATE -> PROPOSE -> EXECUTE -> COMMIT

1. **INTEGRATE** — compute the next displacement from the pseudo-dynamic
   integrator (force data feeds the computational model, "the correct
   displacements were calculated and sent to the ... test sites");
2. **PROPOSE** — one transaction per site, so every site can veto before
   anything moves;
3. **EXECUTE** — all transactions in parallel; collect measured forces;
4. **COMMIT** — assemble the global restoring force and advance the
   integrator.

The machine's position lives in a serializable
:class:`~repro.coordinator.state.ExperimentState` (next step index,
committed integrator snapshot, pending transaction names).  With a
:mod:`checkpoint store <repro.repository.checkpoint>` attached, the state
plus the unflushed :class:`StepRecord` tail is persisted every N committed
steps and, best-effort, at abort time — so an aborted run resumes instead
of restarting: a new coordinator built from the checkpoint replays
committed-but-unpersisted steps through NTCP's idempotent propose/execute
(the servers return stored outcomes without touching specimens) and
reconciles the in-flight step via
:class:`~repro.coordinator.reconcile.Reconciler`.

Failures surface here as exceptions from the NTCP client; the configured
:class:`~repro.coordinator.fault_policy.FaultPolicy` decides retry vs
abort.  Retries and resumes reuse the same transaction names, so NTCP's
at-most-once semantics guarantee no step is ever applied twice to a
physical specimen — even across a coordinator restart.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.coordinator.fault_policy import FaultPolicy, NaiveFaultPolicy
from repro.coordinator.reconcile import (
    ACTION_CANCEL,
    ACTION_HARVEST,
    ACTION_REPROPOSE,
    Reconciler,
    ReconciliationReport,
)
from repro.coordinator.records import ExperimentResult, StepRecord
from repro.coordinator.state import (
    PHASE_COMMIT,
    PHASE_EXECUTE,
    PHASE_IDLE,
    PHASE_INTEGRATE,
    PHASE_PROPOSE,
    ExperimentState,
    record_to_payload,
)
from repro.core.client import NTCPClient
from repro.core.messages import ProposalVerdict
from repro.control.actions import make_displacement_actions
from repro.net.breaker import BreakerOpen, CircuitBreaker
from repro.net.rpc import RpcError
from repro.ogsi.handle import GridServiceHandle
from repro.repository.checkpoint import CheckpointPolicy, build_checkpoint_doc
from repro.structural.ground_motion import GroundMotion
from repro.structural.integrators import CentralDifferencePSD
from repro.structural.model import StructuralModel
from repro.util.errors import ConfigurationError, ProtocolError, ReproError


class SiteBinding:
    """One substructure site: its NTCP handle and global-DOF mapping.

    ``dof_indices[local] = global`` — the site receives displacements for
    its local DOFs and returns forces on them.
    """

    def __init__(self, name: str, handle: GridServiceHandle, dof_indices=(0,)):
        self.name = name
        self.handle = handle
        self.dof_indices = np.asarray(dof_indices, dtype=int)


class SimulationCoordinator:
    """Drives a distributed hybrid experiment to completion.

    Args:
        run_id: unique name; prefixes every transaction name.
        client: the NTCP client (owns RPC retry behaviour).
        model: nominal linear model of the full structure — mass and
            damping are exact (they are numerical in PSD testing); the
            stiffness is the design estimate used only for integrator setup.
        motion: the ground acceleration record (one step per sample).
        sites: substructure bindings; together they must restrain every DOF.
        fault_policy: retry/abort behaviour on step failures.
        execution_timeout: per-transaction execution budget sent to sites.
        on_step: optional callback invoked with each committed
            :class:`StepRecord` (used to feed NSDS/CHEF streaming).
        checkpoint_store: optional
            :class:`~repro.repository.checkpoint.CheckpointStoreBase`;
            when set, experiment state is persisted per ``checkpoint_policy``.
        checkpoint_policy: when to checkpoint (default: every 50 steps,
            plus a best-effort checkpoint while aborting).
        state: a prepared resume state (see
            :func:`~repro.coordinator.state.resume_state_from_checkpoint`);
            ``None`` starts a fresh run.
        prior_records: the committed steps recovered from checkpoints,
            prepended to this incarnation's result.
        breakers: optional ``{site name: CircuitBreaker}`` map; every NTCP
            exchange with a site passes through its breaker, so a site
            that keeps failing is fast-failed (``BreakerOpen``) instead of
            burning the full RPC retry ladder on every attempt.
        failover: optional
            :class:`~repro.coordinator.failover.FailoverManager`; consulted
            when a step attempt fails, it may swap a dead site for its
            numerical surrogate (graceful degradation) instead of letting
            the fault policy abort the run.
    """

    def __init__(self, *, run_id: str, client: NTCPClient,
                 model: StructuralModel, motion: GroundMotion,
                 sites: list[SiteBinding],
                 fault_policy: FaultPolicy | None = None,
                 execution_timeout: float = 60.0,
                 negotiation_barrier: bool = True,
                 integrator_factory: Callable | None = None,
                 on_step: Callable[[StepRecord], None] | None = None,
                 checkpoint_store=None,
                 checkpoint_policy: CheckpointPolicy | None = None,
                 state: ExperimentState | None = None,
                 prior_records: Sequence[StepRecord] = (),
                 breakers: dict[str, CircuitBreaker] | None = None,
                 failover=None):
        if not sites:
            raise ConfigurationError("coordinator needs at least one site")
        covered = set()
        for site in sites:
            covered.update(int(i) for i in site.dof_indices)
        if covered != set(range(model.n_dof)):
            raise ConfigurationError(
                f"sites cover DOFs {sorted(covered)}; model has "
                f"{model.n_dof} DOF(s)")
        self.run_id = run_id
        self.client = client
        self.model = model
        self.motion = motion
        self.sites = list(sites)
        self.fault_policy = fault_policy or NaiveFaultPolicy()
        self.execution_timeout = execution_timeout
        #: With the barrier (the paper's design), *all* sites must accept a
        #: step's proposals before any site executes.  Disabling it (an
        #: ablation) lets each site execute as soon as its own proposal is
        #: accepted — one overlapped round trip faster, but a late
        #: rejection leaves other specimens already moved.
        self.negotiation_barrier = negotiation_barrier
        self.on_step = on_step
        self.checkpoint_store = checkpoint_store
        self.checkpoint_policy = checkpoint_policy or CheckpointPolicy()
        if state is None:
            self.state = ExperimentState(run_id=run_id,
                                         target_steps=motion.n_steps - 1,
                                         dt=motion.dt)
        else:
            if state.run_id != run_id:
                raise ConfigurationError(
                    f"resume state is for run {state.run_id!r}, "
                    f"coordinator is {run_id!r}")
            if (state.target_steps != motion.n_steps - 1
                    or not np.isclose(state.dt, motion.dt)):
                raise ConfigurationError(
                    "resume state does not match the configured motion "
                    f"record (state: {state.target_steps} steps @ "
                    f"{state.dt}; motion: {motion.n_steps - 1} @ "
                    f"{motion.dt})")
            if state.generation > 0 and state.integrator is None:
                raise ConfigurationError(
                    "resume state carries no integrator snapshot")
            self.state = state
        self.prior_records = list(prior_records)
        self.breakers: dict[str, CircuitBreaker] = dict(breakers or {})
        self.failover = failover
        self.last_reconciliation: ReconciliationReport | None = None
        self._records_flushed = 0
        self._txn_overrides: dict[tuple[int, str], str] = {}
        self.kernel = client.rpc.kernel
        telemetry = self.kernel.telemetry
        self._tracer = telemetry.tracer
        self._tm_steps = telemetry.counter("coordinator.mspsds.steps",
                                           run_id=run_id)
        self._tm_retries = telemetry.counter("coordinator.mspsds.retries",
                                             run_id=run_id)
        self._tm_step_time = telemetry.histogram("coordinator.mspsds.step_time",
                                                 run_id=run_id)
        self._tm_ckpt_writes = telemetry.counter(
            "coordinator.checkpoint.writes", run_id=run_id)
        self._tm_ckpt_time = telemetry.histogram(
            "coordinator.checkpoint.write_time", run_id=run_id)
        self._tm_resumes = telemetry.counter("coordinator.resume.resumes",
                                             run_id=run_id)
        self._tm_harvested = telemetry.counter("coordinator.resume.harvested",
                                               run_id=run_id)
        self._tm_cancelled = telemetry.counter("coordinator.resume.cancelled",
                                               run_id=run_id)
        self._tm_reproposed = telemetry.counter(
            "coordinator.resume.reproposed", run_id=run_id)
        self._tm_replayed = telemetry.counter("coordinator.resume.replayed",
                                              run_id=run_id)
        self._tm_degraded_steps = telemetry.counter(
            "coordinator.failover.degraded_steps", run_id=run_id)
        #: any object with the start/propose_next/commit stepping API
        #: (CentralDifferencePSD for MOST; AlphaOSPSD for stiff structures
        #: whose frequencies exceed the explicit stability limit).
        factory = integrator_factory or CentralDifferencePSD
        self.integrator = factory(model, motion.dt)
        self._integrator_started = False
        if self.state.integrator is not None:
            self.integrator.restore(self.state.integrator)
            self._integrator_started = True
        if failover is not None:
            failover.bind(self)

    # -- helpers -----------------------------------------------------------
    def _txn_name(self, step: int, site: SiteBinding) -> str:
        override = self._txn_overrides.get((step, site.name))
        if override is not None:
            return override
        return f"{self.run_id}-step{step:05d}-{site.name}"

    def _site_targets(self, site: SiteBinding,
                      d_global: np.ndarray) -> dict[int, float]:
        return {local: float(d_global[global_dof])
                for local, global_dof in enumerate(site.dof_indices)}

    def _assemble_forces(self, per_site: dict[str, dict[int, float]],
                         ) -> np.ndarray:
        r = np.zeros(self.model.n_dof)
        for site in self.sites:
            forces = per_site[site.name]
            for local, global_dof in enumerate(site.dof_indices):
                r[global_dof] += forces[local]
        return r

    def _guarded(self, site: SiteBinding, exchange):
        """Run one site's NTCP exchange through its circuit breaker.

        Fast-fails with :class:`BreakerOpen` while the site's breaker is
        open, records the outcome otherwise, and tags the propagating
        exception with ``site`` so the fault policy and failover manager
        know who failed.  A site currently served by its surrogate
        bypasses the breaker entirely — the breaker tracks the *real*
        site's health, and surrogate successes must not close it.
        """
        breaker = self.breakers.get(site.name)
        if (breaker is not None and self.failover is not None
                and site.name in self.failover.active):
            breaker = None
        if breaker is not None:
            breaker.check()
        try:
            result = yield from exchange
        except (RpcError, ReproError) as exc:
            if getattr(exc, "site", None) in (None, "?"):
                exc.site = site.name
            # Policy rejections are the site *working* (vetoing an unsafe
            # command is NTCP behaving as designed), not failing.
            if breaker is not None and not (isinstance(exc, ProtocolError)
                                            and "rejected" in str(exc)):
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result

    def _step_at_all_sites(self, step: int, d_global: np.ndarray, ctx=None):
        """Propose then execute step ``step`` at every site, in parallel.

        Returns ``{site: {local_dof: force}}``; raises on any failure
        (after cancelling accepted siblings if a site rejected).  ``ctx``
        is the step span context the phase spans nest under.
        """
        if not self.negotiation_barrier:
            results = yield from self._step_without_barrier(step, d_global,
                                                            ctx)
            return results
        verdicts: dict[str, ProposalVerdict] = {}
        propose_span = self._tracer.start_span(
            "coordinator.step.propose", parent=ctx, step=step)

        def propose_one(site: SiteBinding):
            actions = make_displacement_actions(
                self._site_targets(site, d_global))
            verdict = yield from self._guarded(site, self.client.propose(
                site.handle, self._txn_name(step, site), actions,
                execution_timeout=self.execution_timeout,
                ctx=propose_span))
            verdicts[site.name] = verdict

        procs = [self.kernel.process(propose_one(s),
                                     name=f"propose.{s.name}.{step}")
                 for s in self.sites]
        try:
            yield self.kernel.all_of(procs)
        except BaseException:
            propose_span.end(ok=False)
            raise

        if self.state.generation and all(v.state == "executed"
                                         for v in verdicts.values()):
            # Every site already holds this step's outcome: the resumed
            # coordinator is replaying a committed-but-unpersisted step
            # through the idempotent paths; no specimen will move.
            self._tm_replayed.inc()

        rejected = [name for name, v in verdicts.items()
                    if v.state not in ("accepted", "executed", "executing")]
        if rejected:
            propose_span.end(ok=False, rejected=",".join(rejected))
            # Abort this step: cancel the accepted siblings for hygiene.
            for site in self.sites:
                if verdicts[site.name].state == "accepted":
                    cancel = self.kernel.process(
                        self.client.cancel(site.handle,
                                           self._txn_name(step, site)))
                    cancel.defuse()
            name = rejected[0]
            raise ProtocolError(
                f"site {name} rejected step {step}: "
                f"{verdicts[name].error or ''}")
        propose_span.end(ok=True)

        self.state.phase = PHASE_EXECUTE
        results: dict[str, dict[int, float]] = {}
        execute_span = self._tracer.start_span(
            "coordinator.step.execute", parent=ctx, step=step)

        def execute_one(site: SiteBinding):
            result = yield from self._guarded(site, self.client.execute(
                site.handle, self._txn_name(step, site),
                timeout=self.execution_timeout + 10.0,
                ctx=execute_span))
            forces = result.readings["forces"]
            results[site.name] = {int(dof): float(f)
                                  for dof, f in forces.items()}

        procs = [self.kernel.process(execute_one(s),
                                     name=f"execute.{s.name}.{step}")
                 for s in self.sites]
        try:
            yield self.kernel.all_of(procs)
        except BaseException:
            execute_span.end(ok=False)
            raise
        execute_span.end(ok=True)
        return results

    def _step_without_barrier(self, step: int, d_global: np.ndarray,
                              ctx=None):
        """Ablation path: per-site propose→execute chains, no global gate."""
        results: dict[str, dict[int, float]] = {}
        span = self._tracer.start_span(
            "coordinator.step.propose_execute", parent=ctx, step=step)

        def chain_one(site: SiteBinding):
            actions = make_displacement_actions(
                self._site_targets(site, d_global))
            result = yield from self._guarded(
                site, self.client.propose_and_execute(
                    site.handle, self._txn_name(step, site), actions,
                    execution_timeout=self.execution_timeout,
                    timeout=self.execution_timeout + 10.0,
                    ctx=span))
            forces = result.readings["forces"]
            results[site.name] = {int(dof): float(f)
                                  for dof, f in forces.items()}

        procs = [self.kernel.process(chain_one(s),
                                     name=f"chain.{s.name}.{step}")
                 for s in self.sites]
        try:
            yield self.kernel.all_of(procs)
        except BaseException:
            span.end(ok=False)
            raise
        span.end(ok=True)
        return results

    def _attempt_with_policy(self, step: int, d_global: np.ndarray,
                             result: ExperimentResult, ctx=None):
        """One step with fault-policy retries; returns (forces, attempts)."""
        attempt = 0
        while True:
            attempt += 1
            try:
                forces = yield from self._step_at_all_sites(step, d_global,
                                                            ctx)
                return forces, attempt
            except (RpcError, ReproError) as exc:
                site = getattr(exc, "site", "?")
                self.kernel.emit(f"coordinator.{self.run_id}", "step.failed",
                                 step=step, attempt=attempt, error=str(exc))
                if isinstance(exc, ProtocolError) and "rejected" in str(exc):
                    # A policy rejection is not transient; never retry.
                    raise
                if self.failover is not None and self.failover.consider(
                        step=step, site=site, error=exc):
                    # The site was just swapped for its numerical
                    # surrogate (and the step's transaction renamed);
                    # retry immediately instead of asking the policy.
                    self._tm_retries.inc()
                    continue
                decision = self.fault_policy.decide(
                    step=step, attempt=attempt, site=site, error=exc)
                if decision.action != "retry":
                    raise
                self._tm_retries.inc()
                if decision.delay > 0:
                    wait_span = self._tracer.start_span(
                        "coordinator.step.retry_wait", parent=ctx,
                        step=step, attempt=attempt)
                    yield self.kernel.timeout(decision.delay)
                    wait_span.end()

    # -- checkpointing -------------------------------------------------------
    def _write_checkpoint(self, result: ExperimentResult, reason: str):
        """Kernel process: persist state + unflushed record tail.

        Best-effort by design — a checkpoint that cannot reach the
        repository is reported (``checkpoint.failed``) but never kills or
        perturbs the experiment.
        """
        seq = self.state.checkpoint_seq + 1
        self.state.integrator = self.integrator.snapshot()
        state_payload = self.state.to_payload()
        state_payload["checkpoint_seq"] = seq
        tail = result.steps[self._records_flushed:]
        doc = build_checkpoint_doc(
            run_id=self.run_id, seq=seq, wall_time=self.kernel.now,
            reason=reason, state_payload=state_payload,
            record_payloads=[record_to_payload(r) for r in tail])
        span = self._tracer.start_span("coordinator.checkpoint.write",
                                       run_id=self.run_id, seq=seq,
                                       reason=reason)
        started = self.kernel.now
        try:
            yield from self.checkpoint_store.save(doc)
        except (RpcError, ReproError) as exc:
            span.end(ok=False)
            self.kernel.emit(f"coordinator.{self.run_id}", "checkpoint.failed",
                             seq=seq, reason=reason, error=str(exc))
            return
        span.end(ok=True)
        self.state.checkpoint_seq = seq
        self._records_flushed = len(result.steps)
        self._tm_ckpt_writes.inc()
        self._tm_ckpt_time.observe(self.kernel.now - started)

    def _maybe_checkpoint(self, result: ExperimentResult, *, reason: str,
                          force: bool = False):
        if self.checkpoint_store is None or not self._integrator_started:
            return
        committed = self.state.step - 1
        if not force and not self.checkpoint_policy.due(committed):
            return
        yield from self._write_checkpoint(result, reason)

    def _abort_checkpoint(self, result: ExperimentResult):
        """The best-effort final checkpoint while aborting.

        Captures the in-flight step's pending transaction names so the
        resume-time reconciliation can probe exactly what was on the wire.
        """
        if (self.checkpoint_store is None
                or not self.checkpoint_policy.on_abort
                or not self._integrator_started):
            return
        yield from self._write_checkpoint(result, "abort")

    # -- lifecycle -----------------------------------------------------------
    def _record_abort(self, result: ExperimentResult, step: int,
                      reason: str) -> None:
        result.aborted_reason = reason
        result.aborted_at_step = step
        result.wall_finished = self.kernel.now
        self.kernel.emit(f"coordinator.{self.run_id}", "experiment.aborted",
                         step=step, error=reason)

    def _initialize(self, result: ExperimentResult):
        """Step 0: measure forces at rest and start the integrator."""
        d0 = np.zeros(self.model.n_dof)
        init_span = self._tracer.start_span("coordinator.step",
                                            run_id=self.run_id, step=0)
        self.state.phase = PHASE_PROPOSE
        self.state.pending = {site.name: self._txn_name(0, site)
                              for site in self.sites}
        try:
            forces0, _ = yield from self._attempt_with_policy(0, d0, result,
                                                              init_span)
        except (RpcError, ReproError) as exc:
            init_span.end(ok=False)
            result.aborted_reason = f"initialization failed: {exc}"
            result.aborted_at_step = 0
            result.wall_finished = self.kernel.now
            return False
        init_span.end(ok=True)
        r0 = self._assemble_forces(forces0)
        self.integrator.start(
            r0=r0, p0=self.model.external_force(self.motion.accel[0]))
        self._integrator_started = True
        self.state.pending = {}
        self.state.phase = PHASE_IDLE
        self.state.step = 1
        yield from self._maybe_checkpoint(result, reason="policy")
        return True

    def _resume(self, result: ExperimentResult):
        """Re-enter the step machine after a coordinator restart."""
        result.steps.extend(self.prior_records)
        self._records_flushed = len(result.steps)
        self._tm_resumes.inc()
        self.kernel.emit(f"coordinator.{self.run_id}", "experiment.resumed",
                         step=self.state.step,
                         generation=self.state.generation,
                         prior_steps=len(self.prior_records))
        reconciler = Reconciler(client=self.client, sites=self.sites,
                                state=self.state, tracer=self._tracer)
        report = yield from reconciler.run()
        self.last_reconciliation = report
        for action in report.actions:
            self._txn_overrides[(self.state.step, action.site)] = (
                action.transaction)
            if action.action == ACTION_HARVEST:
                self._tm_harvested.inc()
            elif action.action == ACTION_CANCEL:
                self._tm_cancelled.inc()
            elif action.action == ACTION_REPROPOSE:
                self._tm_reproposed.inc()
        self.state.pending = {}
        self.state.phase = PHASE_IDLE
        return True

    def _run_one_step(self, result: ExperimentResult):
        """One full INTEGRATE → PROPOSE → EXECUTE → COMMIT cycle."""
        step = self.state.step
        wall_started = self.kernel.now
        if self.failover is not None:
            # Recovered sites re-enter only at step boundaries, so a step
            # never splits its propose/execute across two servers.
            self.failover.apply_readmissions(step)
        # The step span and its contiguous phase children (integrate →
        # propose → execute → commit, plus retry_wait on faults) are the
        # paper's Figure-5 step-time breakdown: phase durations sum to
        # the step's wall time on the sim clock.  Checkpoint spans live
        # *outside* the step span for the same reason.
        step_span = self._tracer.start_span("coordinator.step",
                                            run_id=self.run_id, step=step)
        self.state.phase = PHASE_INTEGRATE
        integrate_span = self._tracer.start_span(
            "coordinator.step.integrate", parent=step_span, step=step)
        try:
            d_next = self.integrator.propose_next()
            if not np.all(np.isfinite(d_next)):
                raise FloatingPointError("non-finite displacement")
        except (ValueError, FloatingPointError) as exc:
            # Numerical divergence (e.g. an explicit integrator past
            # its stability limit) ends the experiment, it does not
            # crash the coordinator.
            integrate_span.end(ok=False)
            step_span.end(ok=False)
            self._record_abort(result, step, f"integrator diverged: {exc}")
            return False
        integrate_span.end()
        self.state.phase = PHASE_PROPOSE
        self.state.pending = {site.name: self._txn_name(step, site)
                              for site in self.sites}
        try:
            forces, attempts = yield from self._attempt_with_policy(
                step, d_next, result, step_span)
        except (RpcError, ReproError) as exc:
            step_span.end(ok=False)
            self._record_abort(result, step, str(exc))
            return False
        self.state.phase = PHASE_COMMIT
        commit_span = self._tracer.start_span(
            "coordinator.step.commit", parent=step_span, step=step)
        r_next = self._assemble_forces(forces)
        p_next = self.model.external_force(self.motion.accel[step])
        self.integrator.commit(d_next, r_next, p_next)
        degraded = tuple(self.state.degraded_sites)
        record = StepRecord(step=step, model_time=step * self.motion.dt,
                            displacement=d_next.copy(),
                            restoring_force=r_next,
                            site_forces=forces, attempts=attempts,
                            wall_started=wall_started,
                            wall_finished=self.kernel.now,
                            degraded=degraded)
        result.steps.append(record)
        if self.on_step is not None:
            self.on_step(record)
        commit_span.end()
        if degraded:
            step_span.end(ok=True, attempts=attempts,
                          degraded=",".join(degraded))
            self._tm_degraded_steps.inc()
        else:
            step_span.end(ok=True, attempts=attempts)
        self._tm_steps.inc()
        self._tm_step_time.observe(record.wall_finished - wall_started)
        self.state.pending = {}
        self.state.phase = PHASE_IDLE
        self.state.step = step + 1
        yield from self._maybe_checkpoint(result, reason="policy")
        return True

    # -- the experiment ------------------------------------------------------
    def run(self):
        """Kernel process: execute the full record; returns the result.

        Never raises for step failures — aborts are recorded in the result
        (``completed=False``), matching how MOST's premature exit was itself
        a recorded outcome, not a crash.  A resumed coordinator
        (``state.generation > 0``) reconciles the aborted attempt first,
        then continues from the checkpointed step; its result contains the
        prior incarnations' records too, so histories merge seamlessly.
        """
        resumed = self.state.generation > 0
        result = ExperimentResult(run_id=self.run_id,
                                  target_steps=self.state.target_steps,
                                  dt=self.motion.dt,
                                  wall_started=(self.state.wall_started
                                                if resumed
                                                else self.kernel.now))
        if resumed:
            ok = yield from self._resume(result)
        else:
            self.state.wall_started = result.wall_started
            self.kernel.emit(f"coordinator.{self.run_id}",
                             "experiment.started",
                             steps=result.target_steps,
                             sites=len(self.sites))
            ok = yield from self._initialize(result)
        if not ok:
            yield from self._abort_checkpoint(result)
            return result
        while self.state.step <= self.state.target_steps:
            ok = yield from self._run_one_step(result)
            if not ok:
                yield from self._abort_checkpoint(result)
                return result
        result.completed = True
        result.wall_finished = self.kernel.now
        self.kernel.emit(f"coordinator.{self.run_id}", "experiment.completed",
                         steps=result.steps_completed,
                         wall=result.wall_duration)
        yield from self._maybe_checkpoint(result, reason="final", force=True)
        return result
