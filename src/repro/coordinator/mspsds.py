"""The MS-PSDS stepping loop over NTCP.

Per time step the coordinator (paper Figure 5 / §3):

1. computes the next displacement from the central-difference
   pseudo-dynamic integrator (force data feeds the computational model,
   "the correct displacements were calculated and sent to the ... test
   sites");
2. *proposes* one transaction per site, so every site can veto before
   anything moves;
3. *executes* all transactions in parallel and collects measured forces;
4. assembles the global restoring force and commits the step.

Failures surface here as exceptions from the NTCP client; the configured
:class:`~repro.coordinator.fault_policy.FaultPolicy` decides retry vs
abort.  Retries reuse the same transaction names, so NTCP's at-most-once
semantics guarantee no step is ever applied twice to a physical specimen.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.coordinator.fault_policy import FaultPolicy, NaiveFaultPolicy
from repro.coordinator.records import ExperimentResult, StepRecord
from repro.core.client import NTCPClient
from repro.core.messages import ProposalVerdict
from repro.control.actions import make_displacement_actions
from repro.net.rpc import RpcError
from repro.ogsi.handle import GridServiceHandle
from repro.structural.ground_motion import GroundMotion
from repro.structural.integrators import CentralDifferencePSD
from repro.structural.model import StructuralModel
from repro.util.errors import ConfigurationError, ProtocolError, ReproError


class SiteBinding:
    """One substructure site: its NTCP handle and global-DOF mapping.

    ``dof_indices[local] = global`` — the site receives displacements for
    its local DOFs and returns forces on them.
    """

    def __init__(self, name: str, handle: GridServiceHandle, dof_indices=(0,)):
        self.name = name
        self.handle = handle
        self.dof_indices = np.asarray(dof_indices, dtype=int)


class SimulationCoordinator:
    """Drives a distributed hybrid experiment to completion.

    Args:
        run_id: unique name; prefixes every transaction name.
        client: the NTCP client (owns RPC retry behaviour).
        model: nominal linear model of the full structure — mass and
            damping are exact (they are numerical in PSD testing); the
            stiffness is the design estimate used only for integrator setup.
        motion: the ground acceleration record (one step per sample).
        sites: substructure bindings; together they must restrain every DOF.
        fault_policy: retry/abort behaviour on step failures.
        execution_timeout: per-transaction execution budget sent to sites.
        on_step: optional callback invoked with each committed
            :class:`StepRecord` (used to feed NSDS/CHEF streaming).
    """

    def __init__(self, *, run_id: str, client: NTCPClient,
                 model: StructuralModel, motion: GroundMotion,
                 sites: list[SiteBinding],
                 fault_policy: FaultPolicy | None = None,
                 execution_timeout: float = 60.0,
                 negotiation_barrier: bool = True,
                 integrator_factory: Callable | None = None,
                 on_step: Callable[[StepRecord], None] | None = None):
        if not sites:
            raise ConfigurationError("coordinator needs at least one site")
        covered = set()
        for site in sites:
            covered.update(int(i) for i in site.dof_indices)
        if covered != set(range(model.n_dof)):
            raise ConfigurationError(
                f"sites cover DOFs {sorted(covered)}; model has "
                f"{model.n_dof} DOF(s)")
        self.run_id = run_id
        self.client = client
        self.model = model
        self.motion = motion
        self.sites = list(sites)
        self.fault_policy = fault_policy or NaiveFaultPolicy()
        self.execution_timeout = execution_timeout
        #: With the barrier (the paper's design), *all* sites must accept a
        #: step's proposals before any site executes.  Disabling it (an
        #: ablation) lets each site execute as soon as its own proposal is
        #: accepted — one overlapped round trip faster, but a late
        #: rejection leaves other specimens already moved.
        self.negotiation_barrier = negotiation_barrier
        self.on_step = on_step
        self.kernel = client.rpc.kernel
        telemetry = self.kernel.telemetry
        self._tracer = telemetry.tracer
        self._tm_steps = telemetry.counter("coordinator.mspsds.steps",
                                           run_id=run_id)
        self._tm_retries = telemetry.counter("coordinator.mspsds.retries",
                                             run_id=run_id)
        self._tm_step_time = telemetry.histogram("coordinator.mspsds.step_time",
                                                 run_id=run_id)
        #: any object with the start/propose_next/commit stepping API
        #: (CentralDifferencePSD for MOST; AlphaOSPSD for stiff structures
        #: whose frequencies exceed the explicit stability limit).
        factory = integrator_factory or CentralDifferencePSD
        self.integrator = factory(model, motion.dt)

    # -- helpers -----------------------------------------------------------
    def _txn_name(self, step: int, site: SiteBinding) -> str:
        return f"{self.run_id}-step{step:05d}-{site.name}"

    def _site_targets(self, site: SiteBinding,
                      d_global: np.ndarray) -> dict[int, float]:
        return {local: float(d_global[global_dof])
                for local, global_dof in enumerate(site.dof_indices)}

    def _assemble_forces(self, per_site: dict[str, dict[int, float]],
                         ) -> np.ndarray:
        r = np.zeros(self.model.n_dof)
        for site in self.sites:
            forces = per_site[site.name]
            for local, global_dof in enumerate(site.dof_indices):
                r[global_dof] += forces[local]
        return r

    def _step_at_all_sites(self, step: int, d_global: np.ndarray, ctx=None):
        """Propose then execute step ``step`` at every site, in parallel.

        Returns ``{site: {local_dof: force}}``; raises on any failure
        (after cancelling accepted siblings if a site rejected).  ``ctx``
        is the step span context the phase spans nest under.
        """
        if not self.negotiation_barrier:
            results = yield from self._step_without_barrier(step, d_global,
                                                            ctx)
            return results
        verdicts: dict[str, ProposalVerdict] = {}
        propose_span = self._tracer.start_span(
            "coordinator.step.propose", parent=ctx, step=step)

        def propose_one(site: SiteBinding):
            actions = make_displacement_actions(
                self._site_targets(site, d_global))
            verdict = yield from self.client.propose(
                site.handle, self._txn_name(step, site), actions,
                execution_timeout=self.execution_timeout,
                ctx=propose_span)
            verdicts[site.name] = verdict

        procs = [self.kernel.process(propose_one(s),
                                     name=f"propose.{s.name}.{step}")
                 for s in self.sites]
        try:
            yield self.kernel.all_of(procs)
        except BaseException:
            propose_span.end(ok=False)
            raise

        rejected = [name for name, v in verdicts.items()
                    if v.state not in ("accepted", "executed", "executing")]
        if rejected:
            propose_span.end(ok=False, rejected=",".join(rejected))
            # Abort this step: cancel the accepted siblings for hygiene.
            for site in self.sites:
                if verdicts[site.name].state == "accepted":
                    cancel = self.kernel.process(
                        self.client.cancel(site.handle,
                                           self._txn_name(step, site)))
                    cancel.defuse()
            name = rejected[0]
            raise ProtocolError(
                f"site {name} rejected step {step}: "
                f"{verdicts[name].error or ''}")
        propose_span.end(ok=True)

        results: dict[str, dict[int, float]] = {}
        execute_span = self._tracer.start_span(
            "coordinator.step.execute", parent=ctx, step=step)

        def execute_one(site: SiteBinding):
            result = yield from self.client.execute(
                site.handle, self._txn_name(step, site),
                timeout=self.execution_timeout + 10.0,
                ctx=execute_span)
            forces = result.readings["forces"]
            results[site.name] = {int(dof): float(f)
                                  for dof, f in forces.items()}

        procs = [self.kernel.process(execute_one(s),
                                     name=f"execute.{s.name}.{step}")
                 for s in self.sites]
        try:
            yield self.kernel.all_of(procs)
        except BaseException:
            execute_span.end(ok=False)
            raise
        execute_span.end(ok=True)
        return results

    def _step_without_barrier(self, step: int, d_global: np.ndarray,
                              ctx=None):
        """Ablation path: per-site propose→execute chains, no global gate."""
        results: dict[str, dict[int, float]] = {}
        span = self._tracer.start_span(
            "coordinator.step.propose_execute", parent=ctx, step=step)

        def chain_one(site: SiteBinding):
            actions = make_displacement_actions(
                self._site_targets(site, d_global))
            result = yield from self.client.propose_and_execute(
                site.handle, self._txn_name(step, site), actions,
                execution_timeout=self.execution_timeout,
                timeout=self.execution_timeout + 10.0,
                ctx=span)
            forces = result.readings["forces"]
            results[site.name] = {int(dof): float(f)
                                  for dof, f in forces.items()}

        procs = [self.kernel.process(chain_one(s),
                                     name=f"chain.{s.name}.{step}")
                 for s in self.sites]
        try:
            yield self.kernel.all_of(procs)
        except BaseException:
            span.end(ok=False)
            raise
        span.end(ok=True)
        return results

    def _attempt_with_policy(self, step: int, d_global: np.ndarray,
                             result: ExperimentResult, ctx=None):
        """One step with fault-policy retries; returns (forces, attempts)."""
        attempt = 0
        while True:
            attempt += 1
            try:
                forces = yield from self._step_at_all_sites(step, d_global,
                                                            ctx)
                return forces, attempt
            except (RpcError, ReproError) as exc:
                site = getattr(exc, "site", "?")
                self.kernel.emit(f"coordinator.{self.run_id}", "step.failed",
                                 step=step, attempt=attempt, error=str(exc))
                if isinstance(exc, ProtocolError) and "rejected" in str(exc):
                    # A policy rejection is not transient; never retry.
                    raise
                decision = self.fault_policy.decide(
                    step=step, attempt=attempt, site=site, error=exc)
                if decision.action != "retry":
                    raise
                self._tm_retries.inc()
                if decision.delay > 0:
                    wait_span = self._tracer.start_span(
                        "coordinator.step.retry_wait", parent=ctx,
                        step=step, attempt=attempt)
                    yield self.kernel.timeout(decision.delay)
                    wait_span.end()

    # -- the experiment ------------------------------------------------------
    def run(self):
        """Kernel process: execute the full record; returns the result.

        Never raises for step failures — aborts are recorded in the result
        (``completed=False``), matching how MOST's premature exit was itself
        a recorded outcome, not a crash.
        """
        result = ExperimentResult(run_id=self.run_id,
                                  target_steps=self.motion.n_steps - 1,
                                  dt=self.motion.dt,
                                  wall_started=self.kernel.now)
        self.kernel.emit(f"coordinator.{self.run_id}", "experiment.started",
                         steps=result.target_steps, sites=len(self.sites))
        d0 = np.zeros(self.model.n_dof)
        init_span = self._tracer.start_span("coordinator.step",
                                            run_id=self.run_id, step=0)
        try:
            forces0, _ = yield from self._attempt_with_policy(0, d0, result,
                                                              init_span)
        except (RpcError, ReproError) as exc:
            init_span.end(ok=False)
            result.aborted_reason = f"initialization failed: {exc}"
            result.aborted_at_step = 0
            result.wall_finished = self.kernel.now
            return result
        init_span.end(ok=True)
        r0 = self._assemble_forces(forces0)
        self.integrator.start(
            r0=r0, p0=self.model.external_force(self.motion.accel[0]))

        for step in range(1, self.motion.n_steps):
            wall_started = self.kernel.now
            # The step span and its contiguous phase children (integrate →
            # propose → execute → commit, plus retry_wait on faults) are the
            # paper's Figure-5 step-time breakdown: phase durations sum to
            # the step's wall time on the sim clock.
            step_span = self._tracer.start_span("coordinator.step",
                                                run_id=self.run_id, step=step)
            integrate_span = self._tracer.start_span(
                "coordinator.step.integrate", parent=step_span, step=step)
            try:
                d_next = self.integrator.propose_next()
                if not np.all(np.isfinite(d_next)):
                    raise FloatingPointError("non-finite displacement")
            except (ValueError, FloatingPointError) as exc:
                # Numerical divergence (e.g. an explicit integrator past
                # its stability limit) ends the experiment, it does not
                # crash the coordinator.
                integrate_span.end(ok=False)
                step_span.end(ok=False)
                result.aborted_reason = f"integrator diverged: {exc}"
                result.aborted_at_step = step
                result.wall_finished = self.kernel.now
                self.kernel.emit(f"coordinator.{self.run_id}",
                                 "experiment.aborted", step=step,
                                 error=result.aborted_reason)
                return result
            integrate_span.end()
            try:
                forces, attempts = yield from self._attempt_with_policy(
                    step, d_next, result, step_span)
            except (RpcError, ReproError) as exc:
                step_span.end(ok=False)
                result.aborted_reason = str(exc)
                result.aborted_at_step = step
                result.wall_finished = self.kernel.now
                self.kernel.emit(f"coordinator.{self.run_id}",
                                 "experiment.aborted", step=step,
                                 error=str(exc))
                return result
            commit_span = self._tracer.start_span(
                "coordinator.step.commit", parent=step_span, step=step)
            r_next = self._assemble_forces(forces)
            p_next = self.model.external_force(self.motion.accel[step])
            self.integrator.commit(d_next, r_next, p_next)
            record = StepRecord(step=step, model_time=step * self.motion.dt,
                                displacement=d_next.copy(),
                                restoring_force=r_next,
                                site_forces=forces, attempts=attempts,
                                wall_started=wall_started,
                                wall_finished=self.kernel.now)
            result.steps.append(record)
            if self.on_step is not None:
                self.on_step(record)
            commit_span.end()
            step_span.end(ok=True, attempts=attempts)
            self._tm_steps.inc()
            self._tm_step_time.observe(record.wall_finished - wall_started)
        result.completed = True
        result.wall_finished = self.kernel.now
        self.kernel.emit(f"coordinator.{self.run_id}", "experiment.completed",
                         steps=result.steps_completed,
                         wall=result.wall_duration)
        return result
