"""Near-real-time coordination (paper §5, "Ongoing Work").

"MOST and most follow-on experiments have lax performance requirements;
even long delays can be tolerated without affecting results.  We are
working with engineers ... to support distributed experiments with
near-real-time requirements.  This work has two facets: we are working on
improving NTCP performance, while the earthquake engineers are developing
simulation and control software that can better tolerate delays."

:class:`RealTimeCoordinator` implements both facets in their simplest
faithful form:

* **protocol side** — one-round dispatch (``propose_and_execute`` chains,
  no cross-site barrier) issued on a *fixed period*: the integrator ticks
  every ``period`` seconds whether or not every site has answered;
* **engineering side** — delay tolerance via *force prediction*: when a
  site's measurement for the current displacement has not arrived by the
  tick, its restoring force is linearly extrapolated from its last two
  known values, and a site still busy with the previous command simply
  skips one (its actuator is behind; the prediction carries the physics).

The price of speed is fidelity drift, which is exactly the §5 trade: the
faster the period relative to site response time, the more predicted
forces enter the integration.  :class:`RealTimeStats` quantifies it, and
``bench_trt_realtime`` sweeps the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.coordinator.mspsds import SiteBinding
from repro.coordinator.records import ExperimentResult, StepRecord
from repro.core.client import NTCPClient
from repro.control.actions import make_displacement_actions
from repro.net.rpc import RpcError
from repro.structural.ground_motion import GroundMotion
from repro.structural.integrators import CentralDifferencePSD
from repro.structural.model import StructuralModel
from repro.util.errors import ConfigurationError, ReproError


@dataclass
class RealTimeStats:
    """Fidelity accounting for a near-real-time run."""

    steps: int = 0
    predicted_forces: int = 0      # site-steps integrated from prediction
    skipped_dispatches: int = 0    # commands never sent (site busy)
    site_predictions: dict[str, int] = field(default_factory=dict)
    failures: int = 0

    @property
    def prediction_fraction(self) -> float:
        total = self.steps * max(1, len(self.site_predictions))
        return self.predicted_forces / total if total else 0.0


class _SiteChannel:
    """Per-site command pipe: at most one in-flight command."""

    def __init__(self, binding: SiteBinding):
        self.binding = binding
        self.busy = False
        self.last_forces: list[np.ndarray] = []  # history, newest last
        self.pending_step: int | None = None

    def predict(self) -> np.ndarray:
        """Linear extrapolation from the last two measured force vectors."""
        if not self.last_forces:
            return np.zeros(len(self.binding.dof_indices))
        if len(self.last_forces) == 1:
            return self.last_forces[-1].copy()
        return 2 * self.last_forces[-1] - self.last_forces[-2]

    def record(self, forces: np.ndarray) -> None:
        self.last_forces.append(forces)
        if len(self.last_forces) > 2:
            self.last_forces.pop(0)


class RealTimeCoordinator:
    """Fixed-period MS-PSDS stepping with force prediction."""

    def __init__(self, *, run_id: str, client: NTCPClient,
                 model: StructuralModel, motion: GroundMotion,
                 sites: list[SiteBinding], period: float,
                 execution_timeout: float | None = None):
        if period <= 0:
            raise ConfigurationError("period must be positive")
        covered = set()
        for site in sites:
            covered.update(int(i) for i in site.dof_indices)
        if covered != set(range(model.n_dof)):
            raise ConfigurationError("sites do not cover the model's DOFs")
        self.run_id = run_id
        self.client = client
        self.model = model
        self.motion = motion
        self.period = period
        self.execution_timeout = (execution_timeout if execution_timeout
                                  is not None else max(10.0, 50 * period))
        self.kernel = client.rpc.kernel
        self.channels = [_SiteChannel(s) for s in sites]
        self.integrator = CentralDifferencePSD(model, motion.dt)
        self.stats = RealTimeStats(
            site_predictions={s.name: 0 for s in sites})

    # -- dispatch ------------------------------------------------------------
    def _dispatch(self, channel: _SiteChannel, step: int,
                  d_global: np.ndarray) -> None:
        """Fire-and-forget command to one site."""
        binding = channel.binding
        targets = {local: float(d_global[g])
                   for local, g in enumerate(binding.dof_indices)}
        channel.busy = True
        channel.pending_step = step

        def chain():
            try:
                result = yield from self.client.propose_and_execute(
                    binding.handle, f"{self.run_id}-s{step:06d}-{binding.name}",
                    make_displacement_actions(targets),
                    execution_timeout=self.execution_timeout,
                    timeout=self.execution_timeout + 5.0, retries=0)
            except (RpcError, ReproError):
                self.stats.failures += 1
                channel.busy = False
                channel.pending_step = None
                return
            forces = result.readings["forces"]
            channel.record(np.array(
                [forces[local] for local in
                 range(len(binding.dof_indices))], dtype=float))
            channel.busy = False
            channel.pending_step = None

        proc = self.kernel.process(chain(),
                                   name=f"rt.{binding.name}.{step}")
        proc.defuse()

    def _gather_forces(self) -> np.ndarray:
        """Freshest forces (measured or predicted) assembled globally."""
        r = np.zeros(self.model.n_dof)
        for channel in self.channels:
            if channel.busy or not channel.last_forces:
                forces = channel.predict()
                self.stats.predicted_forces += 1
                self.stats.site_predictions[channel.binding.name] += 1
            else:
                forces = channel.last_forces[-1]
            for local, g in enumerate(channel.binding.dof_indices):
                r[g] += forces[local]
        return r

    # -- the run ---------------------------------------------------------------
    def run(self):
        """Kernel process; returns an :class:`ExperimentResult`."""
        result = ExperimentResult(run_id=self.run_id,
                                  target_steps=self.motion.n_steps - 1,
                                  dt=self.motion.dt,
                                  wall_started=self.kernel.now)
        d0 = np.zeros(self.model.n_dof)
        for channel in self.channels:
            self._dispatch(channel, 0, d0)
        # give initialization one full site response before ticking
        yield self.kernel.timeout(self.execution_timeout)
        r0 = self._gather_forces()
        self.integrator.start(
            r0=r0, p0=self.model.external_force(self.motion.accel[0]))

        for step in range(1, self.motion.n_steps):
            tick_started = self.kernel.now
            d_next = self.integrator.propose_next()
            for channel in self.channels:
                if channel.busy:
                    self.stats.skipped_dispatches += 1
                else:
                    self._dispatch(channel, step, d_next)
            yield self.kernel.timeout(self.period)
            r_next = self._gather_forces()
            p_next = self.model.external_force(self.motion.accel[step])
            self.integrator.commit(d_next, r_next, p_next)
            self.stats.steps += 1
            site_forces = {
                c.binding.name: {local: float(
                    (c.last_forces[-1] if c.last_forces else
                     np.zeros(len(c.binding.dof_indices)))[local])
                    for local in range(len(c.binding.dof_indices))}
                for c in self.channels}
            result.steps.append(StepRecord(
                step=step, model_time=step * self.motion.dt,
                displacement=d_next.copy(), restoring_force=r_next,
                site_forces=site_forces, attempts=1,
                wall_started=tick_started, wall_finished=self.kernel.now))
        result.completed = True
        result.wall_finished = self.kernel.now
        return result
