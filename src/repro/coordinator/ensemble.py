"""Ensemble stepping: one coordinator drives N scenario variants at once.

A parameter study ("the same structure under eight scaled ground
motions") traditionally reruns the whole distributed experiment per
variant, paying the NTCP round trip and the sites' compute time N times
per step.  :class:`EnsembleCoordinator` batches instead: the integrator
state widens to ``(n_dof, n_variants)`` (see
:class:`~repro.structural.integrators.EnsembleCentralDifferencePSD`),
each proposal carries a *list* of displacements per DOF — one entry per
variant — and each site evaluates its substructure once over the whole
batch.  One INTEGRATE → PROPOSE → EXECUTE → COMMIT cycle therefore
advances every variant, amortizing both the protocol exchange and the
per-site compute charge across the ensemble.

Column *i* of the batched history is bit-identical to a solo run driven
by variant *i* alone: the dense algebra (``@``, ``lu_solve``) is
column-independent, the external load for each variant is computed with
exactly the solo code path, and the wire format round-trips floats
losslessly.  Checkpoints, resume, telemetry, degradation, and pipelined
stepping all compose — the ensemble only changes the *shape* flowing
through the machine, not the machine itself.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.coordinator.mspsds import SimulationCoordinator
from repro.coordinator.records import ExperimentResult, StepRecord
from repro.structural.ground_motion import GroundMotion
from repro.structural.integrators import EnsembleCentralDifferencePSD
from repro.util.errors import ConfigurationError


class EnsembleCoordinator(SimulationCoordinator):
    """Drives N scenario variants through one distributed experiment.

    Args:
        variants: the ground-motion record per variant.  All records
            must share ``dt`` and ``n_steps`` (the ensemble advances in
            lock-step; scale or substitute accelerograms, don't re-grid
            them).
        integrator_factory: optional ``(model, dt, n_variants) ->``
            batched integrator (default
            :class:`~repro.structural.integrators.EnsembleCentralDifferencePSD`);
            it must carry ``(n_dof, n_variants)`` state arrays.

    Every other argument matches :class:`SimulationCoordinator`.
    """

    def __init__(self, *, variants: Sequence[GroundMotion],
                 integrator_factory=None, **kwargs):
        variants = list(variants)
        if not variants:
            raise ConfigurationError("ensemble needs at least one variant")
        first = variants[0]
        for i, motion in enumerate(variants[1:], start=1):
            if (motion.n_steps != first.n_steps
                    or not np.isclose(motion.dt, first.dt)):
                raise ConfigurationError(
                    f"variant {i} has {motion.n_steps} steps @ {motion.dt}; "
                    f"variant 0 has {first.n_steps} @ {first.dt} — ensemble "
                    "variants must share the time grid")
        self.variants = variants
        self.n_variants = len(variants)
        if "motion" in kwargs:
            raise ConfigurationError(
                "pass ensemble records via variants=, not motion=")
        factory = integrator_factory or EnsembleCentralDifferencePSD
        n_variants = self.n_variants
        super().__init__(
            motion=first,
            integrator_factory=lambda model, dt: factory(model, dt,
                                                         n_variants),
            **kwargs)
        self._tm_variant_steps = self.kernel.telemetry.counter(
            "coordinator.ensemble.variant_steps", run_id=self.run_id)
        self.kernel.telemetry.gauge(
            "coordinator.ensemble.variants",
            run_id=self.run_id).set(self.n_variants)

    # -- hook overrides (shape widening) ----------------------------------
    def _state_shape(self) -> tuple[int, ...]:
        return (self.model.n_dof, self.n_variants)

    def _external_force(self, step: int) -> np.ndarray:
        # One solo-code-path evaluation per variant, stacked as columns:
        # bit-exact with N separate runs by construction.
        return np.stack([self.model.external_force(v.accel[step])
                         for v in self.variants], axis=1)

    def _count_step(self, record: StepRecord) -> None:
        self._tm_variant_steps.inc(self.n_variants)


def variant_displacement_history(result: ExperimentResult,
                                 variant: int) -> np.ndarray:
    """One variant's committed displacement history, ``(steps, n_dof)``.

    Slices column ``variant`` out of every committed record — the array
    a solo run of that variant would have produced, for comparison or
    per-variant post-processing.
    """
    rows = []
    for record in result.steps:
        d = np.asarray(record.displacement, dtype=float)
        if d.ndim < 2:
            raise ConfigurationError(
                f"step {record.step} is not an ensemble record")
        if not 0 <= variant < d.shape[1]:
            raise ConfigurationError(
                f"variant {variant} out of range (ensemble has "
                f"{d.shape[1]})")
        rows.append(d[:, variant])
    return np.array(rows)
