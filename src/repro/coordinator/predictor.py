"""Restoring-force prediction for speculative (pipelined) stepping.

Pipelined stepping overlaps protocol phases: while step *n* executes at
the sites, the coordinator already integrates and proposes step *n+1*.
Doing that requires the restoring forces for step *n* before they are
measured — a **predictor** supplies them.

:class:`SubstructurePredictor` evaluates each site's *nominal*
substructure model with exactly the arithmetic
:class:`~repro.control.sim_plugin.SimulationPlugin` uses, operation for
operation — same zero-fill, same ``np.atleast_1d``, same per-DOF
``float()`` narrowing.  For a numerical site whose plugin wraps the same
substructure the prediction is therefore **bit-identical** to the
measurement, and pipelined histories match sequential ones exactly.  For
a physical site the nominal model is only an estimate; the coordinator
compares the speculated displacement against the truth on every commit
and rolls the speculation back when it diverges beyond the configured
tolerance.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.util.errors import ConfigurationError


class SubstructurePredictor:
    """Predicts per-site restoring forces from nominal substructures.

    ``substructures`` maps site name → anything with ``dof_indices`` and
    ``restoring(d_local) -> forces`` (see
    :class:`~repro.structural.substructure.LinearSubstructure`).  DOF
    numbers in ``targets`` are *local* substructure indices, exactly as
    in the ``set-displacement`` action vocabulary.
    """

    def __init__(self, substructures: dict[str, Any]):
        if not substructures:
            raise ConfigurationError(
                "predictor needs at least one substructure")
        self.substructures = dict(substructures)

    def sites(self) -> tuple[str, ...]:
        return tuple(sorted(self.substructures))

    def predict(self, site: str, targets: dict) -> dict:
        """Predicted ``{local_dof: force}`` for one site's targets.

        Mirrors ``SimulationPlugin.execute``: list-valued targets (an
        ensemble batch) produce list-valued forces, scalars produce
        scalars — with the same float narrowing in both cases.
        """
        substructure = self.substructures.get(site)
        if substructure is None:
            raise ConfigurationError(f"no predictor substructure for "
                                     f"site {site!r}")
        n = len(substructure.dof_indices)
        batched = any(isinstance(v, (list, tuple, np.ndarray))
                      for v in targets.values())
        if batched:
            width = len(next(iter(targets.values())))
            d_local = np.zeros((n, width))
            for dof, value in targets.items():
                d_local[dof, :] = [float(v) for v in value]
        else:
            d_local = np.zeros(n)
            for dof, value in targets.items():
                d_local[dof] = float(value)
        forces = np.atleast_1d(substructure.restoring(d_local))
        if batched:
            return {dof: [float(f) for f in forces[dof]] for dof in targets}
        return {dof: float(forces[dof]) for dof in targets}
