"""The simulation coordinator (paper §3, Figure 5).

"A Simulation Coordinator provides overall management of the experiment.
This component repeatedly issues a set of NTCP proposals based on current
simulation state, collects information about the resulting state of all the
substructures, and, based on that resulting state, computes the next set of
NTCP commands to send.  The coordinator also handles exceptions such as
lost network connections or invalid responses."

* :class:`~repro.coordinator.mspsds.SimulationCoordinator` — the MS-PSDS
  stepping loop over NTCP;
* :class:`~repro.coordinator.mspsds.SiteBinding` — one substructure's
  NTCP handle and DOF mapping;
* :mod:`~repro.coordinator.fault_policy` — how failures are handled:
  :class:`NaiveFaultPolicy` reproduces the public MOST run (the coordinator
  "had not been coded to take advantage of all the fault-tolerance
  features"), :class:`FaultTolerantFaultPolicy` retries steps through
  transient failures;
* :class:`~repro.coordinator.state.ExperimentState` — the serializable
  step-machine state checkpoints persist;
* :class:`~repro.coordinator.reconcile.Reconciler` — the resume-time pass
  that classifies the aborted attempt's in-flight transactions;
* :class:`~repro.coordinator.failover.FailoverManager` — graceful
  degradation: hot-swaps a permanently failed site for a numerical
  surrogate so the run finishes (degraded, clearly labelled) instead of
  aborting at the paper's step 1493;
* :class:`~repro.coordinator.predictor.SubstructurePredictor` — nominal
  force prediction powering speculative pipelined stepping
  (``pipeline_depth=1``);
* :class:`~repro.coordinator.ensemble.EnsembleCoordinator` — one
  coordinator advancing N scenario variants per protocol cycle.
"""

from repro.coordinator.fault_policy import (
    FaultPolicy,
    FaultTolerantFaultPolicy,
    NaiveFaultPolicy,
)
from repro.coordinator.records import ExperimentResult, StepRecord
from repro.coordinator.state import (
    ExperimentState,
    records_from_payloads,
    resume_state_from_checkpoint,
)
from repro.coordinator.reconcile import (
    ReconcileAction,
    ReconciliationReport,
    Reconciler,
)
from repro.coordinator.failover import (
    DegradationPolicy,
    FailoverEvent,
    FailoverManager,
    SurrogateSpec,
)
from repro.coordinator.mspsds import SimulationCoordinator, SiteBinding
from repro.coordinator.predictor import SubstructurePredictor
from repro.coordinator.ensemble import (
    EnsembleCoordinator,
    variant_displacement_history,
)
from repro.coordinator.toolbox import NTCPToolbox
from repro.coordinator.realtime import RealTimeCoordinator, RealTimeStats

__all__ = [
    "RealTimeCoordinator",
    "RealTimeStats",
    "SimulationCoordinator",
    "SiteBinding",
    "SubstructurePredictor",
    "EnsembleCoordinator",
    "variant_displacement_history",
    "NTCPToolbox",
    "FaultPolicy",
    "NaiveFaultPolicy",
    "FaultTolerantFaultPolicy",
    "StepRecord",
    "ExperimentResult",
    "ExperimentState",
    "records_from_payloads",
    "resume_state_from_checkpoint",
    "Reconciler",
    "ReconcileAction",
    "ReconciliationReport",
    "FailoverManager",
    "DegradationPolicy",
    "SurrogateSpec",
    "FailoverEvent",
]
