"""Numerical-surrogate failover: graceful degradation past retry exhaustion.

The paper's central design claim — physical rigs and numerical
simulations are *indistinguishable* through NTCP — has a robustness
corollary it never exploited: a site that dies permanently (the step-1493
failure that ended the public MOST run) can be replaced mid-run by a
:class:`~repro.control.sim_plugin.SimulationPlugin` built from the site's
structural model, and the experiment can finish in **degraded mode**
instead of aborting.  That is Randell's recovery-block pattern applied to
a distributed experiment: the surrogate is the alternate block, the
site's circuit breaker is the acceptance test.

The swap preserves NTCP's at-most-once guarantee by reusing the
resume-time reconciliation discipline (PROTOCOL.md §7):

1. the in-flight transaction at the dead site is **cancelled**
   (fire-and-forget — the site is unreachable, so the cancel usually
   dies on the wire; if the site is half-alive the name is burned
   server-side either way);
2. the step's transaction is **renamed** with a ``-f<n>`` failover suffix
   (never reuse a possibly-burned name), and
3. **re-proposed** against the freshly deployed surrogate server, which
   has never seen any name — the step loop then retries immediately.

Every step committed while a surrogate serves a site is stamped
``degraded`` in its :class:`~repro.coordinator.records.StepRecord`, the
serialized :class:`~repro.coordinator.state.ExperimentState` (and hence
every checkpoint), and the run's telemetry — degraded data is clearly
labelled, never laundered as clean.

Re-admission is optional: while degraded, a probe process polls the real
site through its (half-open) breaker; once the breaker closes again the
site is swapped back at the next step boundary, with the stale surrogate
transaction cancelled for hygiene.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.control.sim_plugin import SimulationPlugin
from repro.core.server import NTCPServer
from repro.net.breaker import CircuitBreaker
from repro.net.rpc import RpcError
from repro.ogsi.container import ServiceContainer
from repro.util.errors import ConfigurationError, ReproError


@dataclass(frozen=True)
class SurrogateSpec:
    """How to build one site's numerical stand-in.

    ``substructure_factory`` returns a *fresh* substructure instance (a
    re-activated surrogate must not inherit state from a previous
    degradation episode); ``policy`` should mirror the real site's
    control policy so the surrogate vetoes the same commands the
    facility would.
    """

    site: str
    substructure_factory: Callable[[], Any]
    compute_time: float = 0.05
    policy: Any = None


@dataclass(frozen=True)
class DegradationPolicy:
    """When to give up on a site and how hard to try to win it back.

    ``recovery_budget`` is the simulated time a site's breaker may stay
    open (measured from its first trip of the episode) before the
    coordinator swaps in the surrogate; ``readmit`` enables the probe
    loop that swaps the real site back once its breaker closes again.
    """

    recovery_budget: float = 300.0
    readmit: bool = True
    probe_interval: float = 120.0

    def __post_init__(self):
        if self.recovery_budget < 0:
            raise ConfigurationError("recovery_budget must be >= 0")
        if self.probe_interval <= 0:
            raise ConfigurationError("probe_interval must be positive")


@dataclass(frozen=True)
class FailoverEvent:
    """One degradation-lifecycle event, for reports and run metadata."""

    kind: str        # "failover" | "readmit"
    site: str
    step: int
    time: float
    transaction: str = ""
    replacement: str = ""


@dataclass
class _ActiveSurrogate:
    """Book-keeping for one site currently served by its surrogate."""

    site: str
    real_handle: Any
    surrogate_handle: Any
    server: NTCPServer
    activated_at: float
    step: int
    pending_cancel: str = ""  # stale txn left at the real site
    spans: list = field(default_factory=list)


class FailoverManager:
    """Owns the degradation lifecycle for one coordinator.

    Construct with the surrogate specs and a service container on the
    coordinator's host (surrogate servers deploy locally — the dead
    site's hardware is gone, but its *model* is pure computation), then
    pass it to :class:`~repro.coordinator.mspsds.SimulationCoordinator`,
    which calls :meth:`bind` and consults :meth:`consider` whenever a
    step attempt fails.
    """

    def __init__(self, *, container: ServiceContainer,
                 specs: dict[str, SurrogateSpec] | list[SurrogateSpec],
                 policy: DegradationPolicy | None = None):
        if not isinstance(specs, dict):
            specs = {spec.site: spec for spec in specs}
        self.container = container
        self.specs = dict(specs)
        self.policy = policy or DegradationPolicy()
        self.kernel = container.kernel
        self.active: dict[str, _ActiveSurrogate] = {}
        self.events: list[FailoverEvent] = []
        self._readmit_pending: set[str] = set()
        self._activations = 0
        self.coordinator = None
        self._tm_swaps = None
        self._tm_readmissions = None

    # -- wiring ---------------------------------------------------------------
    def bind(self, coordinator) -> None:
        """Attach to a coordinator (called from its constructor).

        A resumed coordinator whose checkpoint recorded degraded sites
        re-activates their surrogates immediately, *before* resume-time
        reconciliation runs — the reconciler then probes the fresh
        surrogate, finds the transaction unknown, and re-proposes, which
        is exactly the §7 action for a site that never heard the step.
        """
        self.coordinator = coordinator
        telemetry = self.kernel.telemetry
        self._tm_swaps = telemetry.counter("coordinator.failover.swaps",
                                           run_id=coordinator.run_id)
        self._tm_readmissions = telemetry.counter(
            "coordinator.failover.readmissions", run_id=coordinator.run_id)
        for site in list(coordinator.state.degraded_sites):
            if site in self.specs and site not in self.active:
                self._activate(site, step=coordinator.state.step,
                               in_flight=None)

    def _binding(self, site: str):
        for binding in self.coordinator.sites:
            if binding.name == site:
                return binding
        raise ConfigurationError(f"no site binding named {site!r}")

    def degraded_sites(self) -> tuple[str, ...]:
        return tuple(sorted(self.active))

    @property
    def has_pending_readmissions(self) -> bool:
        """True when a recovered site waits to swap back at the next step
        boundary.  The pipelined step loop checks this before speculating:
        speculation must drain first, so a step never splits its
        propose/execute across the surrogate and the readmitted site."""
        return bool(self._readmit_pending)

    # -- the failover decision -------------------------------------------------
    def consider(self, *, step: int, site: str, error: BaseException) -> bool:
        """Should (and did) the coordinator fail ``site`` over?

        Called from the step loop's failure handler.  Returns ``True``
        after performing the swap — the caller retries the step
        immediately against the surrogate instead of consulting the
        fault policy.
        """
        del error  # the breaker, not the error type, drives the decision
        if site in self.active or site not in self.specs:
            return False
        breaker = self.coordinator.breakers.get(site)
        if breaker is None or breaker.open_since is None:
            return False
        if breaker.open_duration < self.policy.recovery_budget:
            return False
        self._activate(site, step=step,
                       in_flight=self.coordinator._txn_name(
                           step, self._binding(site)))
        return True

    def _activate(self, site: str, *, step: int,
                  in_flight: str | None) -> None:
        spec = self.specs[site]
        binding = self._binding(site)
        coordinator = self.coordinator
        self._activations += 1
        plugin = SimulationPlugin(spec.substructure_factory(),
                                  compute_time=spec.compute_time,
                                  policy=spec.policy)
        server = NTCPServer(f"ntcp-{site}-surrogate{self._activations}",
                            plugin)
        surrogate_handle = self.container.deploy(server)
        replacement = ""
        if in_flight is not None:
            # §7 discipline: cancel the possibly-burned name at the dead
            # site (fire-and-forget — it is unreachable in the common
            # case) and rename before re-proposing at the surrogate.
            cancel = self.kernel.process(
                coordinator.client.cancel(binding.handle, in_flight),
                name=f"failover.cancel.{site}")
            cancel.defuse()
            replacement = f"{in_flight}-f{self._activations}"
            coordinator._txn_overrides[(step, site)] = replacement
            if site in coordinator.state.pending:
                coordinator.state.pending[site] = replacement
        active = _ActiveSurrogate(site=site, real_handle=binding.handle,
                                  surrogate_handle=surrogate_handle,
                                  server=server,
                                  activated_at=self.kernel.now, step=step,
                                  pending_cancel=in_flight or "")
        binding.handle = surrogate_handle
        self.active[site] = active
        degraded = set(coordinator.state.degraded_sites) | {site}
        coordinator.state.degraded_sites = sorted(degraded)
        self.events.append(FailoverEvent(
            kind="failover", site=site, step=step, time=self.kernel.now,
            transaction=in_flight or "", replacement=replacement))
        if self._tm_swaps is not None:
            self._tm_swaps.inc()
        self.kernel.emit(f"coordinator.{coordinator.run_id}",
                         "failover.activated", site=site, step=step,
                         surrogate=server.service_id)
        if self.policy.readmit:
            self.kernel.process(self._probe_loop(site),
                                name=f"failover.probe.{site}")

    # -- re-admission -----------------------------------------------------------
    def _probe_loop(self, site: str):
        """Kernel process: poll the real site until its breaker closes.

        Probes ride the breaker's half-open gate: while the breaker's
        open interval is still running no traffic is sent at all, and a
        failed probe re-opens it — the probe *is* the half-open attempt.
        """
        coordinator = self.coordinator
        while site in self.active and site not in self._readmit_pending:
            yield self.kernel.timeout(self.policy.probe_interval)
            if site not in self.active or site in self._readmit_pending:
                return
            breaker: CircuitBreaker | None = coordinator.breakers.get(site)
            if breaker is not None and not breaker.allow():
                continue
            real_handle = self.active[site].real_handle
            try:
                yield from coordinator.client.list_transactions(real_handle)
            except (RpcError, ReproError):
                if breaker is not None:
                    breaker.record_failure()
                continue
            if breaker is not None:
                breaker.record_success()
                if breaker.state != "closed":
                    continue  # needs more consecutive probe successes
            self._readmit_pending.add(site)
            self.kernel.emit(f"coordinator.{coordinator.run_id}",
                             "failover.probe_succeeded", site=site)
            return

    def apply_readmissions(self, step: int) -> None:
        """Swap recovered sites back at a step boundary (between steps,
        so a step never splits its propose/execute across two servers)."""
        coordinator = self.coordinator
        for site in sorted(self._readmit_pending):
            self._readmit_pending.discard(site)
            active = self.active.pop(site, None)
            if active is None:
                continue
            binding = self._binding(site)
            binding.handle = active.real_handle
            # Hygiene at both ends: the real site may still hold the
            # failover step's stale proposal, and the surrogate holds
            # nothing in flight (swaps happen between steps) — cancel
            # the stale name fire-and-forget.
            if active.pending_cancel:
                cancel = self.kernel.process(
                    coordinator.client.cancel(active.real_handle,
                                              active.pending_cancel),
                    name=f"failover.readmit_cancel.{site}")
                cancel.defuse()
            self.container.destroy(active.server.service_id,
                                   reason="site-readmitted")
            degraded = set(coordinator.state.degraded_sites) - {site}
            coordinator.state.degraded_sites = sorted(degraded)
            self.events.append(FailoverEvent(
                kind="readmit", site=site, step=step, time=self.kernel.now,
                transaction=active.pending_cancel))
            if self._tm_readmissions is not None:
                self._tm_readmissions.inc()
            self.kernel.emit(f"coordinator.{coordinator.run_id}",
                             "failover.readmitted", site=site, step=step)

    # -- reporting ---------------------------------------------------------------
    def report(self) -> dict[str, Any]:
        """JSON-friendly degradation history (repository run metadata)."""
        return {
            "degraded_sites": list(self.degraded_sites()),
            "activations": self._activations,
            "events": [{"kind": e.kind, "site": e.site, "step": e.step,
                        "time": e.time, "transaction": e.transaction,
                        "replacement": e.replacement}
                       for e in self.events],
        }
