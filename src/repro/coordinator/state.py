"""Serializable experiment lifecycle state.

The coordinator's stepping loop is an explicit state machine — each step
passes through ``INTEGRATE → PROPOSE → EXECUTE → COMMIT`` — and the whole
machine is captured by :class:`ExperimentState`: the next step index, the
committed integrator state, the pending transaction names of the in-flight
step, and enough run metadata to validate a resume against the original
configuration.  The state is **RNG-free by construction**: nothing here
samples randomness or reads the wall clock, so restoring it cannot perturb
a run's physics (RPR001 enforces this for the whole coordinator package).

Float payloads round-trip **exactly** via ``float.hex()`` — including
``-0.0`` and denormals — so a resumed run is bit-identical to an
uninterrupted one, not merely close.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.coordinator.records import StepRecord
from repro.util.errors import ConfigurationError

#: Step-machine phases.  ``IDLE`` is the between-steps resting state that
#: checkpoints record; the other four are the in-step progression.
PHASE_IDLE = "idle"
PHASE_INTEGRATE = "integrate"
PHASE_PROPOSE = "propose"
PHASE_EXECUTE = "execute"
PHASE_COMMIT = "commit"
PHASES = (PHASE_IDLE, PHASE_INTEGRATE, PHASE_PROPOSE, PHASE_EXECUTE,
          PHASE_COMMIT)


def encode_floats(values) -> list[str]:
    """Lossless hex encoding of a 1-D float vector."""
    return [float(v).hex() for v in np.asarray(values, dtype=float).ravel()]


def decode_floats(values) -> np.ndarray:
    """Inverse of :func:`encode_floats`; bit-exact."""
    return np.array([float.fromhex(v) for v in values], dtype=float)


def encode_array(values):
    """Lossless hex encoding of a float array of any rank.

    1-D arrays keep the historical flat-list form, so every pre-ensemble
    payload stays byte-identical; higher-rank arrays (an ensemble's
    ``(n_dof, n_variants)`` state) carry their shape explicitly.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim <= 1:
        return encode_floats(arr)
    return {"shape": [int(s) for s in arr.shape],
            "data": [float(v).hex() for v in arr.ravel()]}


def decode_array(payload) -> np.ndarray:
    """Inverse of :func:`encode_array`; bit-exact, shape-preserving."""
    if isinstance(payload, dict):
        flat = np.array([float.fromhex(v) for v in payload["data"]],
                        dtype=float)
        return flat.reshape([int(s) for s in payload["shape"]])
    return decode_floats(payload)


def encode_force(value):
    """One site-force reading: scalar, or a per-variant list for ensembles."""
    if isinstance(value, (list, tuple, np.ndarray)):
        return [float(v).hex() for v in value]
    return float(value).hex()


def decode_force(payload):
    """Inverse of :func:`encode_force`."""
    if isinstance(payload, list):
        return [float.fromhex(v) for v in payload]
    return float.fromhex(payload)


def encode_integrator(snapshot: dict | None) -> dict | None:
    """Integrator snapshot (ndarray-valued) → JSON-safe payload."""
    if snapshot is None:
        return None
    return {
        "kind": str(snapshot["kind"]),
        "step_index": int(snapshot["step_index"]),
        "arrays": {name: encode_array(vec)
                   for name, vec in snapshot["arrays"].items()},
    }


def decode_integrator(payload: dict | None) -> dict | None:
    """JSON payload → snapshot dict accepted by ``integrator.restore``."""
    if payload is None:
        return None
    return {
        "kind": payload["kind"],
        "step_index": int(payload["step_index"]),
        "arrays": {name: decode_array(vec)
                   for name, vec in payload["arrays"].items()},
    }


def record_to_payload(record: StepRecord) -> dict:
    """One committed step → JSON-safe payload with exact floats.

    ``degraded`` is written only for degraded steps, so healthy-run
    payloads are byte-identical to pre-failover checkpoints.
    """
    payload = {
        "step": record.step,
        "model_time": record.model_time,
        "displacement": encode_array(record.displacement),
        "restoring_force": encode_array(record.restoring_force),
        "site_forces": {site: {str(dof): encode_force(f)
                               for dof, f in forces.items()}
                        for site, forces in record.site_forces.items()},
        "attempts": record.attempts,
        "wall_started": record.wall_started,
        "wall_finished": record.wall_finished,
    }
    if record.degraded:
        payload["degraded"] = list(record.degraded)
    return payload


def record_from_payload(payload: dict) -> StepRecord:
    """Inverse of :func:`record_to_payload`."""
    return StepRecord(
        step=int(payload["step"]),
        model_time=float(payload["model_time"]),
        displacement=decode_array(payload["displacement"]),
        restoring_force=decode_array(payload["restoring_force"]),
        site_forces={site: {int(dof): decode_force(f)
                            for dof, f in forces.items()}
                     for site, forces in payload["site_forces"].items()},
        attempts=int(payload["attempts"]),
        wall_started=float(payload["wall_started"]),
        wall_finished=float(payload["wall_finished"]),
        degraded=tuple(str(s) for s in payload.get("degraded", ())))


def records_from_payloads(payloads) -> list[StepRecord]:
    """Decode a checkpoint's merged record history, ordered by step."""
    records = [record_from_payload(p) for p in payloads]
    records.sort(key=lambda r: r.step)
    return records


@dataclass
class ExperimentState:
    """Everything the coordinator needs to resume a run bit-exact.

    ``step`` is the next *uncommitted* step; ``pending`` maps site name →
    transaction name for that step's in-flight attempt (empty between
    steps); ``integrator`` holds the committed integrator snapshot
    (ndarray-valued, as produced by ``integrator.snapshot()``);
    ``generation`` counts coordinator incarnations — 0 for the original
    run, incremented on every resume — and suffixes replacement
    transaction names so cancelled (burned) names are never reused.
    """

    run_id: str
    target_steps: int
    dt: float
    step: int = 0
    phase: str = PHASE_IDLE
    generation: int = 0
    pending: dict[str, str] = field(default_factory=dict)
    integrator: dict | None = None
    checkpoint_seq: int = 0
    wall_started: float = 0.0
    #: sites currently served by a numerical surrogate (failover active);
    #: empty for healthy runs — and then omitted from the payload, so
    #: pre-failover checkpoints stay byte-identical.
    degraded_sites: list[str] = field(default_factory=list)
    #: site name → transaction name of a *speculative* (pipelined) step
    #: issued ahead of the verified step.  Non-empty exactly while such
    #: names may be burned at the sites: from speculative issue until the
    #: speculation is adopted as the next verified step or its renamed
    #: replacement goes on the wire.  A resume drains these with the §7
    #: cancel + rename discipline.  Empty for sequential runs — and then
    #: omitted from the payload, so pre-pipeline checkpoints stay
    #: byte-identical.
    speculative: dict[str, str] = field(default_factory=dict)
    #: the step index the ``speculative`` names belong to.  It is *not*
    #: always ``step + 1``: after a rollback the burned names linger
    #: through the next commit, at which point they belong to the new
    #: ``step`` itself — a resume must rename at exactly this index or
    #: the reconciler's base-name fallback could harvest an executed
    #: mispredicted speculation as if it were the verified step.
    speculative_step: int = 0

    def to_payload(self) -> dict:
        """JSON-safe payload (``repro.checkpoint/v1`` ``state`` object)."""
        payload = {
            "run_id": self.run_id,
            "target_steps": self.target_steps,
            "dt": self.dt,
            "step": self.step,
            "phase": self.phase,
            "generation": self.generation,
            "pending": dict(self.pending),
            "integrator": encode_integrator(self.integrator),
            "checkpoint_seq": self.checkpoint_seq,
            "wall_started": self.wall_started,
        }
        if self.degraded_sites:
            payload["degraded_sites"] = sorted(self.degraded_sites)
        if self.speculative:
            payload["speculative"] = dict(self.speculative)
            payload["speculative_step"] = self.speculative_step
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ExperimentState":
        """Inverse of :meth:`to_payload`."""
        if payload.get("phase") not in PHASES:
            raise ConfigurationError(
                f"unknown experiment phase {payload.get('phase')!r}")
        return cls(
            run_id=str(payload["run_id"]),
            target_steps=int(payload["target_steps"]),
            dt=float(payload["dt"]),
            step=int(payload["step"]),
            phase=str(payload["phase"]),
            generation=int(payload["generation"]),
            pending={str(k): str(v)
                     for k, v in payload.get("pending", {}).items()},
            integrator=decode_integrator(payload.get("integrator")),
            checkpoint_seq=int(payload.get("checkpoint_seq", 0)),
            wall_started=float(payload.get("wall_started", 0.0)),
            degraded_sites=[str(s)
                            for s in payload.get("degraded_sites", [])],
            speculative={str(k): str(v)
                         for k, v in payload.get("speculative", {}).items()},
            speculative_step=int(payload.get("speculative_step", 0)))


def resume_state_from_checkpoint(doc: dict) -> ExperimentState:
    """Prepare the state inside a checkpoint document for a new incarnation.

    Bumps ``generation`` (replacement transaction names get a fresh
    ``-r<generation>`` suffix) and resets the phase to ``IDLE`` — the
    resumed coordinator re-enters the step machine from the top of the
    recorded ``step``.
    """
    state = ExperimentState.from_payload(doc["state"])
    state.generation += 1
    state.phase = PHASE_IDLE
    state.checkpoint_seq = int(doc["seq"])
    return state
