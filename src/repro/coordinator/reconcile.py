"""Resume-time reconciliation of the aborted attempt's transactions.

When a coordinator dies mid-step, each site's NTCP server is left holding
that step's transaction in whatever state it reached: maybe never heard of
it, maybe accepted and waiting, maybe executed with results the dead
coordinator never collected.  Before a resumed coordinator re-enters the
stepping loop it probes every site with ``getTransaction`` /
``getResults`` and classifies (PROTOCOL.md §7):

* ``executed`` / ``executing`` — the specimen already moved (or is
  moving).  **Harvest**: keep the original transaction name; the step
  loop's idempotent propose/execute then returns the stored outcome
  without touching the specimen — at-most-once holds across the restart.
* ``proposed`` / ``accepted`` — in doubt (the proposal may expire before
  the resumed attempt executes).  **Cancel** it and switch to a
  generation-suffixed replacement name: cancelled names are burned
  server-side (re-proposing one reports ``cancelled`` forever).
* ``cancelled`` / ``failed`` / ``rejected`` — the name is burned.
  **Rename** to the generation-suffixed replacement.
* unknown (the server never saw the propose) — **re-propose** under the
  original name.
* site unreachable — **keep** the original name and let the step loop's
  fault policy deal with the site; every outcome above remains reachable
  once it answers.

The pass never mutates specimens: it only reads transaction state, issues
cancels, and picks names.  RNG-free by construction (RPR001).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import NTCPClient
from repro.net.rpc import RemoteException, RpcError
from repro.util.errors import ReproError

#: Classification outcomes (the ``action`` field of a ReconcileAction).
ACTION_HARVEST = "harvest"
ACTION_CANCEL = "cancel"
ACTION_RENAME = "rename"
ACTION_REPROPOSE = "repropose"
ACTION_KEEP = "keep"


@dataclass(frozen=True)
class ReconcileAction:
    """One site's classification for the in-flight step."""

    site: str
    transaction: str       #: the transaction name the next attempt will use
    observed: str          #: server-side state seen (or "unknown"/"unreachable")
    action: str
    detail: str = ""


@dataclass
class ReconciliationReport:
    """Everything the reconciliation pass decided."""

    run_id: str
    step: int
    generation: int
    actions: list[ReconcileAction] = field(default_factory=list)

    def count(self, action: str) -> int:
        return sum(1 for a in self.actions if a.action == action)

    @property
    def harvested(self) -> int:
        return self.count(ACTION_HARVEST)

    @property
    def cancelled(self) -> int:
        return self.count(ACTION_CANCEL)

    @property
    def reproposed(self) -> int:
        return self.count(ACTION_REPROPOSE)

    def overrides(self) -> dict[str, str]:
        """``{site: transaction_name}`` for the in-flight step's retry."""
        return {a.site: a.transaction for a in self.actions}

    def rows(self) -> list[str]:
        """Human-readable classification table (CLI / example output)."""
        return [f"{a.site:<8} {a.observed:<12} -> {a.action:<10} "
                f"{a.transaction}" for a in self.actions]


class Reconciler:
    """Probes every site and classifies the aborted step's transactions."""

    def __init__(self, *, client: NTCPClient, sites, state, tracer):
        self.client = client
        self.sites = list(sites)
        self.state = state
        self._tracer = tracer

    def _probe_name(self, site) -> str:
        pending = self.state.pending.get(site.name)
        if pending:
            return pending
        # No abort-time checkpoint captured the in-flight names; fall back
        # to the deterministic base naming scheme.
        return f"{self.state.run_id}-step{self.state.step:05d}-{site.name}"

    def _replacement(self, name: str) -> str:
        return f"{name}-r{self.state.generation}"

    def run(self):
        """Kernel process: classify every site; returns the report."""
        state = self.state
        report = ReconciliationReport(run_id=state.run_id, step=state.step,
                                      generation=state.generation)
        span = self._tracer.start_span("coordinator.resume.reconcile",
                                       run_id=state.run_id, step=state.step,
                                       generation=state.generation)
        for site in self.sites:
            action = yield from self._classify_site(site)
            report.actions.append(action)
        span.end(harvested=report.harvested, cancelled=report.cancelled,
                 reproposed=report.reproposed)
        return report

    def _classify_site(self, site):
        name = self._probe_name(site)
        try:
            sde = yield from self.client.get_transaction(site.handle, name)
        except RemoteException as exc:
            if exc.remote_type == "ProtocolError":
                # The server never saw the propose: the name is fresh.
                return ReconcileAction(site=site.name, transaction=name,
                                       observed="unknown",
                                       action=ACTION_REPROPOSE)
            return ReconcileAction(site=site.name, transaction=name,
                                   observed="error", action=ACTION_KEEP,
                                   detail=str(exc))
        except (RpcError, ReproError) as exc:
            # Site still down: keep the name; the fault policy owns retry.
            return ReconcileAction(site=site.name, transaction=name,
                                   observed="unreachable",
                                   action=ACTION_KEEP, detail=str(exc))
        observed = str(sde.get("state", "unknown"))
        if observed in ("executed", "executing"):
            detail = ""
            if observed == "executed":
                # Harvest eagerly so the results are known collectable;
                # the step loop will fetch them again idempotently.
                try:
                    outcome = yield from self.client.get_results(site.handle,
                                                                 name)
                    detail = f"results collected ({len(outcome.readings)} " \
                             "reading(s))"
                except (RpcError, ReproError) as exc:
                    detail = f"results pending: {exc}"
            return ReconcileAction(site=site.name, transaction=name,
                                   observed=observed, action=ACTION_HARVEST,
                                   detail=detail)
        if observed in ("proposed", "accepted"):
            replacement = self._replacement(name)
            try:
                yield from self.client.cancel(site.handle, name)
            except (RpcError, ReproError) as exc:
                # Raced with expiry or a state change; the name is in
                # doubt either way — still switch to the replacement.
                return ReconcileAction(site=site.name,
                                       transaction=replacement,
                                       observed=observed,
                                       action=ACTION_CANCEL,
                                       detail=f"cancel failed: {exc}")
            return ReconcileAction(site=site.name, transaction=replacement,
                                   observed=observed, action=ACTION_CANCEL)
        # cancelled / failed / rejected: the name is burned server-side.
        return ReconcileAction(site=site.name,
                               transaction=self._replacement(name),
                               observed=observed, action=ACTION_RENAME)
