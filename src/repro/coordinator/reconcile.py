"""Resume-time reconciliation of the aborted attempt's transactions.

When a coordinator dies mid-step, each site's NTCP server is left holding
that step's transaction in whatever state it reached: maybe never heard of
it, maybe accepted and waiting, maybe executed with results the dead
coordinator never collected.  Before a resumed coordinator re-enters the
stepping loop it probes every site with ``getTransaction`` /
``getResults`` and classifies (PROTOCOL.md §7):

* ``executed`` / ``executing`` — the specimen already moved (or is
  moving).  **Harvest**: keep the original transaction name; the step
  loop's idempotent propose/execute then returns the stored outcome
  without touching the specimen — at-most-once holds across the restart.
* ``proposed`` / ``accepted`` — in doubt (the proposal may expire before
  the resumed attempt executes).  **Cancel** it and switch to a
  generation-suffixed replacement name: cancelled names are burned
  server-side (re-proposing one reports ``cancelled`` forever).
* ``cancelled`` / ``failed`` / ``rejected`` — the name is burned.
  **Rename** to the generation-suffixed replacement.
* unknown (the server never saw the propose) — **re-propose** under the
  original name.
* site unreachable — **keep** the original name and let the step loop's
  fault policy deal with the site; every outcome above remains reachable
  once it answers.

The pass never mutates specimens: it only reads transaction state, issues
cancels, and picks names.  RNG-free by construction (RPR001).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import NTCPClient
from repro.net.rpc import RemoteException, RpcError
from repro.util.errors import ReproError

#: Classification outcomes (the ``action`` field of a ReconcileAction).
ACTION_HARVEST = "harvest"
ACTION_CANCEL = "cancel"
ACTION_RENAME = "rename"
ACTION_REPROPOSE = "repropose"
ACTION_KEEP = "keep"


@dataclass(frozen=True)
class ReconcileAction:
    """One site's classification for the in-flight step."""

    site: str
    transaction: str       #: the transaction name the next attempt will use
    observed: str          #: server-side state seen (or "unknown"/"unreachable")
    action: str
    detail: str = ""


@dataclass
class ReconciliationReport:
    """Everything the reconciliation pass decided."""

    run_id: str
    step: int
    generation: int
    actions: list[ReconcileAction] = field(default_factory=list)
    #: drained speculative (pipelined) transactions — these belong to
    #: step ``step + 1``, issued ahead of the verified step by the dead
    #: incarnation; each is cancelled and renamed, never harvested (a
    #: speculation is only ever adopted by the incarnation that issued it).
    speculative: list[ReconcileAction] = field(default_factory=list)

    def count(self, action: str) -> int:
        return sum(1 for a in self.actions if a.action == action)

    @property
    def harvested(self) -> int:
        return self.count(ACTION_HARVEST)

    @property
    def cancelled(self) -> int:
        return self.count(ACTION_CANCEL)

    @property
    def reproposed(self) -> int:
        return self.count(ACTION_REPROPOSE)

    def overrides(self) -> dict[str, str]:
        """``{site: transaction_name}`` for the in-flight step's retry."""
        return {a.site: a.transaction for a in self.actions}

    def rows(self) -> list[str]:
        """Human-readable classification table (CLI / example output)."""
        return [f"{a.site:<8} {a.observed:<12} -> {a.action:<10} "
                f"{a.transaction}" for a in self.actions]


class Reconciler:
    """Probes every site and classifies the aborted step's transactions."""

    def __init__(self, *, client: NTCPClient, sites, state, tracer):
        self.client = client
        self.sites = list(sites)
        self.state = state
        self._tracer = tracer

    def _probe_name(self, site) -> str:
        pending = self.state.pending.get(site.name)
        if pending:
            return pending
        # No abort-time checkpoint captured the in-flight names; fall back
        # to the deterministic base naming scheme.
        return f"{self.state.run_id}-step{self.state.step:05d}-{site.name}"

    def _replacement(self, name: str) -> str:
        return f"{name}-r{self.state.generation}"

    def run(self):
        """Kernel process: classify every site; returns the report."""
        state = self.state
        report = ReconciliationReport(run_id=state.run_id, step=state.step,
                                      generation=state.generation)
        span = self._tracer.start_span("coordinator.resume.reconcile",
                                       run_id=state.run_id, step=state.step,
                                       generation=state.generation)
        for site in self.sites:
            action = yield from self._classify_site(site)
            report.actions.append(action)
        if state.speculative:
            drained = yield from self._drain_speculative()
            report.speculative.extend(drained)
        span.end(harvested=report.harvested, cancelled=report.cancelled,
                 reproposed=report.reproposed,
                 speculative=len(report.speculative))
        return report

    def _drain_speculative(self):
        """Kernel process: retire the dead incarnation's speculative step.

        A speculative transaction may be burned at its site in any state
        (cancelled, executed with never-collected results, or unknown).
        It is never adopted across a restart — the measured forces that
        would verify it died with the old coordinator — so the §7 move is
        uniform: best-effort **cancel**, then **rename** to the
        generation-suffixed replacement the re-speculated (or sequential)
        attempt will use.
        """
        actions = []
        bindings = {site.name: site for site in self.sites}
        for site_name in sorted(self.state.speculative):
            name = self.state.speculative[site_name]
            replacement = self._replacement(name)
            action = ACTION_CANCEL
            detail = ""
            binding = bindings.get(site_name)
            if binding is None:
                action = ACTION_RENAME
                detail = "site no longer bound; renamed only"
            else:
                try:
                    yield from self.client.cancel(binding.handle, name)
                except (RpcError, ReproError) as exc:
                    # Unreachable, already executed, or already cancelled:
                    # the name is in doubt either way — rename regardless.
                    action = ACTION_RENAME
                    detail = f"cancel failed: {exc}"
            actions.append(ReconcileAction(
                site=site_name, transaction=replacement,
                observed="speculative", action=action, detail=detail))
        return actions

    def _classify_site(self, site):
        name = self._probe_name(site)
        try:
            sde = yield from self.client.get_transaction(site.handle, name)
        except RemoteException as exc:
            if exc.remote_type == "ProtocolError":
                # The server never saw the propose: the name is fresh.
                return ReconcileAction(site=site.name, transaction=name,
                                       observed="unknown",
                                       action=ACTION_REPROPOSE)
            return ReconcileAction(site=site.name, transaction=name,
                                   observed="error", action=ACTION_KEEP,
                                   detail=str(exc))
        except (RpcError, ReproError) as exc:
            # Site still down: keep the name; the fault policy owns retry.
            return ReconcileAction(site=site.name, transaction=name,
                                   observed="unreachable",
                                   action=ACTION_KEEP, detail=str(exc))
        observed = str(sde.get("state", "unknown"))
        if observed in ("executed", "executing"):
            detail = ""
            if observed == "executed":
                # Harvest eagerly so the results are known collectable;
                # the step loop will fetch them again idempotently.
                try:
                    outcome = yield from self.client.get_results(site.handle,
                                                                 name)
                    detail = f"results collected ({len(outcome.readings)} " \
                             "reading(s))"
                except (RpcError, ReproError) as exc:
                    detail = f"results pending: {exc}"
            return ReconcileAction(site=site.name, transaction=name,
                                   observed=observed, action=ACTION_HARVEST,
                                   detail=detail)
        if observed in ("proposed", "accepted"):
            replacement = self._replacement(name)
            try:
                yield from self.client.cancel(site.handle, name)
            except (RpcError, ReproError) as exc:
                # Raced with expiry or a state change; the name is in
                # doubt either way — still switch to the replacement.
                return ReconcileAction(site=site.name,
                                       transaction=replacement,
                                       observed=observed,
                                       action=ACTION_CANCEL,
                                       detail=f"cancel failed: {exc}")
            return ReconcileAction(site=site.name, transaction=replacement,
                                   observed=observed, action=ACTION_CANCEL)
        # cancelled / failed / rejected: the name is burned server-side.
        return ReconcileAction(site=site.name,
                               transaction=self._replacement(name),
                               observed=observed, action=ACTION_RENAME)
