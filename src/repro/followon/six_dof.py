"""University of Minnesota six-DOF quasi-static loading (paper §5).

"At the University of Minnesota, an experiment is planned that will use
the NEESgrid framework to operate a six-degree-of-freedom controller, to
apply realistic deformations and loading quasi-statically to large-scale
structures.  This experiment will also use video and still images as data,
using the NEESgrid framework to trigger still image capture."

:class:`SixDofPlugin` accepts ``set-pose`` actions carrying all six
components (three translations [m], three rotations [rad]) and
``capture-still`` actions that trigger a camera frame *as data* — the
image record is returned in the transaction readings and can be archived
like any sensor block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.messages import Action, Proposal
from repro.core.plugin import ControlPlugin
from repro.core.policy import SitePolicy
from repro.util.errors import PolicyViolation

AXES = ("x", "y", "z", "rx", "ry", "rz")


@dataclass
class SixDofLimits:
    """Per-axis travel limits of the crosshead."""

    translation: float = 0.25   # m
    rotation: float = 0.12      # rad

    def check(self, pose: np.ndarray) -> None:
        for i, axis in enumerate(AXES):
            limit = self.translation if i < 3 else self.rotation
            if abs(pose[i]) > limit:
                raise PolicyViolation(
                    f"axis {axis} target {pose[i]:+.4f} exceeds "
                    f"±{limit:g}", parameter=axis, limit=limit,
                    requested=float(pose[i]))


class SixDofController:
    """The crosshead: six coupled actuators under displacement control.

    The specimen is a large-scale structure idealized by a 6×6 stiffness
    matrix (diagonal by default, with optional coupling); quasi-static
    loading means rate-limited motion with full settle at each pose.
    """

    def __init__(self, stiffness: np.ndarray | None = None, *,
                 limits: SixDofLimits | None = None,
                 translation_rate: float = 0.002,
                 rotation_rate: float = 0.001, seed: int = 0):
        if stiffness is None:
            stiffness = np.diag([4e7, 4e7, 9e7, 6e6, 6e6, 4e6])
        self.stiffness = np.asarray(stiffness, dtype=float)
        if self.stiffness.shape != (6, 6):
            raise ValueError("six-DOF stiffness must be a 6x6 matrix, got "
                             f"shape {self.stiffness.shape}")
        self.limits = limits if limits is not None else SixDofLimits()
        self.translation_rate = translation_rate
        self.rotation_rate = rotation_rate
        self.pose = np.zeros(6)
        self.rng = np.random.default_rng(seed)
        self.poses_applied = 0

    def move_time(self, target: np.ndarray) -> float:
        """Quasi-static travel time: the slowest axis gates the move."""
        delta = np.abs(target - self.pose)
        t_trans = float(np.max(delta[:3])) / self.translation_rate
        t_rot = float(np.max(delta[3:])) / self.rotation_rate
        return max(t_trans, t_rot, 1.0)

    def apply(self, target: np.ndarray) -> dict:
        """Settle at the target pose; returns measured loads per axis."""
        self.pose = target.copy()
        self.poses_applied += 1
        loads = self.stiffness @ self.pose
        noise = self.rng.normal(0.0, 50.0, size=6)
        return {axis: float(loads[i] + noise[i])
                for i, axis in enumerate(AXES)}


class StillCamera:
    """Framework-triggered still image capture: images are data records."""

    def __init__(self) -> None:
        self.captures = 0

    def capture(self, time: float, pose: np.ndarray) -> dict:
        self.captures += 1
        return {
            "image_id": f"still-{self.captures:05d}",
            "time": time,
            "pose": pose.tolist(),
            # a stand-in payload: deterministic "pixels" derived from pose
            "thumbnail": [round(float(v), 6) for v in np.tanh(pose * 10)],
        }


class SixDofPlugin(ControlPlugin):
    """NTCP plugin for the 6-DOF controller + still camera."""

    plugin_type = "six-dof"

    def __init__(self, controller: SixDofController,
                 camera: StillCamera | None = None, *,
                 policy: SitePolicy | None = None):
        super().__init__(policy=policy)
        self.controller = controller
        self.camera = camera if camera is not None else StillCamera()
        self.images: list[dict] = []

    def review(self, proposal: Proposal) -> None:
        self.policy.check(proposal.actions)
        for action in proposal.actions:
            if action.kind == "set-pose":
                pose = np.array([float(action.params.get(a, 0.0))
                                 for a in AXES])
                self.controller.limits.check(pose)
            elif action.kind != "capture-still":
                raise PolicyViolation(
                    f"action kind {action.kind!r} not understood by the "
                    "six-DOF site", parameter="kind")

    def execute(self, proposal: Proposal):
        readings: dict = {"poses": [], "loads": [], "images": [],
                          "forces": {}}
        for action in proposal.actions:
            if action.kind == "set-pose":
                target = np.array([float(action.params.get(a, 0.0))
                                   for a in AXES])
                yield self.kernel.timeout(self.controller.move_time(target))
                loads = self.controller.apply(target)
                readings["poses"].append(target.tolist())
                readings["loads"].append(loads)
            else:  # capture-still
                yield self.kernel.timeout(0.5)  # shutter + readout
                image = self.camera.capture(self.kernel.now,
                                            self.controller.pose)
                self.images.append(image)
                readings["images"].append(image)
        return readings


def run_six_dof_loading(*, n_poses: int = 8, amplitude: float = 0.05,
                        capture_every: int = 2):
    """A quasi-static loading protocol with periodic still capture.

    Applies a crescent of combined translation+rotation poses, capturing a
    still every ``capture_every`` poses; returns ``(records, env)``.
    """
    from repro.testing import make_site

    controller = SixDofController()
    plugin = SixDofPlugin(controller)
    env = make_site(plugin, timeout=1e5)
    records: list[dict] = []

    def protocol():
        for i in range(n_poses):
            scale = amplitude * (i + 1) / n_poses
            actions = [Action("set-pose", {
                "x": scale, "y": 0.4 * scale, "rz": 0.4 * scale})]
            if (i + 1) % capture_every == 0:
                actions.append(Action("capture-still"))
            result = yield from env.client.propose_and_execute(
                env.handle, f"pose-{i:03d}", actions,
                execution_timeout=1e5, timeout=1e5)
            records.append(result.readings)

    env.run(protocol())
    return records, env
