"""UC Davis centrifuge robot arm (paper §5).

"Engineers at UC Davis are working on an experiment that uses the NEESgrid
framework to characterize how the properties of soil change during shaking
or ground improvement.  This experiment includes remote operation of a
robot arm that will be attached to their centrifuge and of piezo-electric
bender element sources and receivers embedded within the centrifuge model.
The robot arm has exchangeable tools: a stereo video camera tool for
telepresence, an ultrasound tool for imaging, a cone penetrometer, a needle
probe for high resolution imaging, and a gripper tool for installation of
piles and manipulation/loading."

This is the §6 generality claim made concrete: the same NTCP machinery, a
*different action vocabulary*.  :class:`RobotArmPlugin` understands
``select-tool``, ``move-arm``, ``cone-push`` and ``bender-pulse`` actions;
the soil model's shear-wave velocity profile (which the bender array
measures) degrades as shaking accumulates — the property change the
experiment exists to characterize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.messages import Action, Proposal
from repro.core.plugin import ControlPlugin
from repro.core.policy import SitePolicy
from repro.util.errors import PolicyViolation

#: tools the paper lists for the exchangeable-tool robot arm
TOOLS = ("stereo-camera", "ultrasound", "cone-penetrometer",
         "needle-probe", "gripper")


@dataclass
class SoilColumnModel:
    """The in-flight soil model the bender elements interrogate.

    A layered profile of shear-wave velocities.  Shaking (or remolding by
    the penetrometer) degrades velocity; ground improvement increases it —
    "how the properties of soil change during shaking or ground
    improvement".
    """

    depths: np.ndarray = field(
        default_factory=lambda: np.linspace(0.05, 0.5, 10))
    vs: np.ndarray = field(
        default_factory=lambda: 120.0 + 200.0 * np.linspace(0.05, 0.5, 10))
    cone_resistance: float = 2.0e6  # Pa, nominal tip resistance

    def travel_time(self, source_depth: float, receiver_depth: float) -> float:
        """Shear-wave travel time between two embedded elements."""
        lo, hi = sorted((source_depth, receiver_depth))
        mask = (self.depths >= lo) & (self.depths <= hi)
        if not np.any(mask):
            idx = int(np.argmin(np.abs(self.depths - 0.5 * (lo + hi))))
            return abs(hi - lo) / float(self.vs[idx])
        segment = abs(hi - lo) / max(1, int(np.sum(mask)))
        return float(np.sum(segment / self.vs[mask]))

    def apply_shaking(self, intensity: float) -> None:
        """Cyclic degradation: velocities drop with shaking intensity."""
        self.vs = self.vs * (1.0 - 0.1 * min(1.0, intensity))

    def improve(self, factor: float = 1.1) -> None:
        """Ground improvement (e.g. compaction piles via the gripper)."""
        self.vs = self.vs * factor


class RobotArm:
    """The arm itself: position, mounted tool, motion timing."""

    def __init__(self, *, reach: float = 0.6, speed: float = 0.05,
                 tool_change_time: float = 20.0):
        self.reach = reach
        self.speed = speed
        self.tool_change_time = tool_change_time
        self.position = np.zeros(3)
        self.tool: str | None = None
        self.tool_changes = 0
        self.moves = 0

    def check_target(self, target: np.ndarray) -> None:
        if np.linalg.norm(target) > self.reach:
            raise PolicyViolation(
                f"target {target.tolist()} beyond arm reach {self.reach} m",
                parameter="position", limit=self.reach,
                requested=float(np.linalg.norm(target)))

    def travel_time(self, target: np.ndarray) -> float:
        return float(np.linalg.norm(target - self.position) / self.speed)


class RobotArmPlugin(ControlPlugin):
    """NTCP plugin exposing the robot arm + bender array.

    Action vocabulary (all flow through ordinary NTCP proposals, so every
    motion gets facility review first):

    * ``select-tool {"tool": name}`` — swap the end effector;
    * ``move-arm {"x", "y", "z"}`` — move the tool point;
    * ``cone-push {"depth"}`` — penetrometer sounding (requires the
      cone-penetrometer tool); returns tip resistance;
    * ``bender-pulse {"source_depth", "receiver_depths"}`` — fire a bender
      source, returns travel times and derived shear-wave velocities;
    * ``install-pile {"x", "y"}`` — gripper-based ground improvement.
    """

    plugin_type = "robot-arm"

    def __init__(self, arm: RobotArm, soil: SoilColumnModel, *,
                 policy: SitePolicy | None = None):
        super().__init__(policy=policy)
        self.arm = arm
        self.soil = soil
        self.soundings: list[dict] = []

    # -- negotiation ---------------------------------------------------------
    def review(self, proposal: Proposal) -> None:
        self.policy.check(proposal.actions)
        tool = self.arm.tool
        for action in proposal.actions:
            if action.kind == "select-tool":
                tool = str(action.params.get("tool"))
                if tool not in TOOLS:
                    raise PolicyViolation(f"unknown tool {tool!r}",
                                          parameter="tool")
            elif action.kind == "move-arm":
                target = np.array([action.params.get(k, 0.0)
                                   for k in ("x", "y", "z")], dtype=float)
                self.arm.check_target(target)
            elif action.kind == "cone-push":
                if tool != "cone-penetrometer":
                    raise PolicyViolation(
                        "cone-push requires the cone-penetrometer tool "
                        f"(mounted: {tool})", parameter="tool")
            elif action.kind == "install-pile":
                if tool != "gripper":
                    raise PolicyViolation(
                        "install-pile requires the gripper tool "
                        f"(mounted: {tool})", parameter="tool")
            elif action.kind == "bender-pulse":
                pass  # embedded elements, no arm precondition
            else:
                raise PolicyViolation(
                    f"action kind {action.kind!r} not understood by the "
                    "robot-arm site", parameter="kind")

    # -- execution ----------------------------------------------------------
    def execute(self, proposal: Proposal):
        readings: dict = {"events": [], "forces": {}}
        for action in proposal.actions:
            handler = getattr(self, "_do_" + action.kind.replace("-", "_"))
            result = yield from handler(action)
            readings["events"].append({"action": action.kind, **result})
        return readings

    def _do_select_tool(self, action: Action):
        yield self.kernel.timeout(self.arm.tool_change_time)
        self.arm.tool = str(action.params["tool"])
        self.arm.tool_changes += 1
        return {"tool": self.arm.tool}

    def _do_move_arm(self, action: Action):
        target = np.array([action.params.get(k, 0.0)
                           for k in ("x", "y", "z")], dtype=float)
        travel = self.arm.travel_time(target)
        if travel > 0:
            yield self.kernel.timeout(travel)
        self.arm.position = target
        self.arm.moves += 1
        return {"position": target.tolist(), "travel_time": travel}

    def _do_cone_push(self, action: Action):
        depth = float(action.params["depth"])
        yield self.kernel.timeout(depth / 0.002)  # 2 mm/s standard rate
        # resistance grows with depth and current soil stiffness
        idx = int(np.argmin(np.abs(self.soil.depths - depth)))
        resistance = (self.soil.cone_resistance
                      * (self.soil.vs[idx] / 200.0) ** 2 * (0.5 + depth))
        sounding = {"depth": depth, "tip_resistance": float(resistance)}
        self.soundings.append(sounding)
        return sounding

    def _do_bender_pulse(self, action: Action):
        source = float(action.params["source_depth"])
        receivers = [float(d) for d in action.params["receiver_depths"]]
        yield self.kernel.timeout(0.5)  # pulse + acquisition
        times = {f"{d:.3f}": self.soil.travel_time(source, d)
                 for d in receivers}
        velocities = {k: abs(float(k) - source) / t if t > 0 else 0.0
                      for k, t in times.items()}
        return {"source_depth": source, "travel_times": times,
                "shear_wave_velocities": velocities}

    def _do_install_pile(self, action: Action):
        yield self.kernel.timeout(60.0)
        self.soil.improve(1.08)
        return {"pile_at": [action.params.get("x", 0.0),
                            action.params.get("y", 0.0)],
                "improvement_factor": 1.08}


def run_robot_survey(*, shake_intensity: float = 0.8, n_piles: int = 2,
                     seed: int = 0):
    """Characterize the soil before/after shaking and after improvement.

    Returns ``(survey, env)`` where ``survey`` holds the three shear-wave
    velocity profiles and penetrometer soundings.  Demonstrates the whole
    §5 description through plain NTCP proposals.
    """
    from repro.testing import make_site

    del seed  # deterministic already; kept for API symmetry
    soil = SoilColumnModel()
    arm = RobotArm()
    plugin = RobotArmPlugin(arm, soil)
    env = make_site(plugin, timeout=3600.0)
    depths = [0.1, 0.2, 0.3, 0.4]
    survey: dict = {"phases": {}}
    counter = [0]

    def measure(tag):
        counter[0] += 1
        result = yield from env.client.propose_and_execute(
            env.handle, f"survey-{tag}-{counter[0]}",
            [Action("bender-pulse", {"source_depth": 0.05,
                                     "receiver_depths": depths})],
            execution_timeout=600.0)
        survey["phases"][tag] = \
            result.readings["events"][0]["shear_wave_velocities"]

    def sounding(tag):
        counter[0] += 1
        result = yield from env.client.propose_and_execute(
            env.handle, f"cpt-{tag}-{counter[0]}",
            [Action("select-tool", {"tool": "cone-penetrometer"}),
             Action("move-arm", {"x": 0.1, "y": 0.0, "z": 0.0}),
             Action("cone-push", {"depth": 0.3})],
            execution_timeout=3600.0)
        survey["phases"][f"cpt-{tag}"] = result.readings["events"][-1]

    def campaign():
        yield from measure("initial")
        yield from sounding("initial")
        soil.apply_shaking(shake_intensity)   # the centrifuge shakes
        yield from measure("after-shaking")
        # ground improvement: install piles with the gripper
        counter[0] += 1
        yield from env.client.propose_and_execute(
            env.handle, f"piles-{counter[0]}",
            [Action("select-tool", {"tool": "gripper"})]
            + [Action("install-pile", {"x": 0.05 * i, "y": 0.0})
               for i in range(n_piles)],
            execution_timeout=3600.0)
        yield from measure("after-improvement")
        yield from sounding("final")

    env.run(campaign())
    return survey, env
