"""Soil-structure interaction experiment (paper §5, RPI/UIUC/Lehigh/NCSA).

"Earthquake engineers at RPI, UIUC and Lehigh University plan to use the
NEESgrid framework to study soil-structure interaction in an experiment
involving two structural sites (UIUC and Lehigh), one geotechnical site
(RPI), and a computational simulation node at NCSA.  The experiment will
focus on an idealized model of the Collector-Distributor 36 of the Santa
Monica Freeway that was damaged in the 1994 Northridge earthquake."

Idealization: a 3-DOF model — DOF 0 is the foundation/soil (tested on the
RPI centrifuge), DOFs 1 and 2 are two bridge piers (tested at UIUC and
Lehigh) — coupled by the deck, which NCSA simulates as a stiffness matrix
across all three DOFs.  The new framework element is the
:class:`CentrifugePlugin`: a geotechnical centrifuge tests a 1/N scale
model at N g, so prototype displacements map to model scale divided by N
and model forces map to prototype scale multiplied by N² (standard
centrifuge similitude) — the plugin owns that conversion, invisibly to the
coordinator, exactly the heterogeneity NTCP was designed to hide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.control.actions import displacement_targets
from repro.control.shore_western import ShoreWesternController, ShoreWesternPlugin
from repro.control.sim_plugin import SimulationPlugin
from repro.coordinator import (
    FaultTolerantFaultPolicy,
    SimulationCoordinator,
    SiteBinding,
)
from repro.core import NTCPClient, NTCPServer
from repro.core.messages import Proposal
from repro.core.plugin import ControlPlugin
from repro.core.policy import SitePolicy
from repro.net import Network, RpcClient
from repro.ogsi import ServiceContainer
from repro.sim import Kernel
from repro.structural import (
    BilinearSpring,
    LinearSubstructure,
    PhysicalSpecimen,
    StructuralModel,
    kanai_tajimi_record,
)
from repro.structural.specimen import Actuator, Sensor


class CentrifugePlugin(ControlPlugin):
    """NTCP plugin for a geotechnical centrifuge site.

    The coordinator speaks prototype-scale units; the plugin converts to
    model scale (÷N for displacement), drives the in-flight model package,
    and converts measured forces back to prototype scale (×N²).  Proposal
    review checks the *model-scale* stroke, since that is the physical
    limit of the in-flight actuator.
    """

    plugin_type = "centrifuge"

    def __init__(self, specimen: PhysicalSpecimen, *, scale: float = 50.0,
                 spin_up_check: bool = True,
                 policy: SitePolicy | None = None):
        super().__init__(policy=policy)
        self.specimen = specimen
        self.scale = scale
        self.at_speed = not spin_up_check
        self.moves = 0

    def spin_up(self) -> None:
        """Bring the centrifuge to N g (required before any motion)."""
        self.at_speed = True

    def review(self, proposal: Proposal) -> None:
        from repro.util.errors import PolicyViolation

        self.policy.check(proposal.actions)
        if not self.at_speed:
            raise PolicyViolation(
                "centrifuge is not at speed; refusing motion commands")
        for dof, proto_disp in displacement_targets(proposal.actions).items():
            self.specimen.check(proto_disp / self.scale)

    def execute(self, proposal: Proposal):
        readings = {"displacements": {}, "forces": {}, "settle_time": 0.0}
        for dof, proto_disp in displacement_targets(proposal.actions).items():
            model_disp = proto_disp / self.scale
            m = self.specimen.apply(model_disp)
            yield self.kernel.timeout(m.settle_time)
            readings["displacements"][dof] = m.achieved * self.scale
            readings["forces"][dof] = m.force * self.scale ** 2
            readings["settle_time"] += m.settle_time
            self.moves += 1
        return readings


@dataclass
class SoilStructureConfig:
    """Constants for the CD-36 idealization."""

    # prototype-scale masses [kg]: foundation block, two pier tributary
    masses: tuple = (2.0e5, 8.0e4, 8.0e4)
    k_soil: float = 4.0e7        # N/m — soil/foundation (RPI, prototype)
    k_pier: float = 2.5e7        # N/m — each pier (UIUC, Lehigh)
    k_deck: float = 1.5e7        # N/m — deck coupling (NCSA simulation)
    pier_yield: float = 6.0e5    # N
    damping_ratio: float = 0.05
    centrifuge_scale: float = 50.0
    n_steps: int = 200
    dt: float = 0.02
    pga: float = 4.0             # m/s^2 — Northridge-class shaking
    motion_seed: int = 1994      # Northridge
    settle_min: float = 2.0
    compute_time: float = 0.3


@dataclass
class SoilStructureRig:
    """The assembled four-site experiment."""

    config: SoilStructureConfig
    kernel: Kernel
    network: Network
    coordinator: SimulationCoordinator
    centrifuge: CentrifugePlugin
    piers: dict[str, PhysicalSpecimen]
    deck: LinearSubstructure
    servers: dict[str, NTCPServer] = field(default_factory=dict)


def deck_coupling_matrix(k_deck: float) -> np.ndarray:
    """The NCSA-simulated deck: couples foundation and both piers.

    Spring k_deck between DOF0-DOF1 and DOF1-DOF2 (foundation → pier A →
    pier B along the collector-distributor), assembled as a standard
    2-spring chain stiffness matrix.
    """
    k = k_deck
    return np.array([[k, -k, 0.0],
                     [-k, 2 * k, -k],
                     [0.0, -k, k]])


def build_soil_structure(config: SoilStructureConfig | None = None
                         ) -> SoilStructureRig:
    config = config or SoilStructureConfig()
    kernel = Kernel()
    network = Network(kernel, seed=36)  # CD-36
    network.add_host("coord")
    for host, latency in (("rpi", 0.018), ("uiuc", 0.012),
                          ("lehigh", 0.020), ("ncsa", 0.012)):
        network.add_host(host)
        network.connect("coord", host, latency=latency)

    # RPI: centrifuge with the soil/foundation model package.
    # Model-scale stiffness: prototype k scales by 1/N (k_model = k_proto/N).
    n = config.centrifuge_scale
    soil_model = PhysicalSpecimen(
        "soil-package",
        BilinearSpring(k=config.k_soil / n, fy=config.k_soil / n * 0.004,
                       alpha=0.3),
        actuator=Actuator(min_settle=config.settle_min, max_rate=0.005,
                          max_stroke=0.01, tracking_std=1e-6),
        lvdt=Sensor(noise_std=1e-6), load_cell=Sensor(noise_std=2.0),
        seed=41)
    centrifuge = CentrifugePlugin(soil_model, scale=n)
    rpi_container = ServiceContainer(network, "rpi")
    rpi_server = NTCPServer("ntcp-rpi", centrifuge)
    rpi_handle = rpi_container.deploy(rpi_server)

    # UIUC and Lehigh: pier columns on servo-hydraulics.
    piers: dict[str, PhysicalSpecimen] = {}
    handles = {"rpi": rpi_handle}
    servers = {"rpi": rpi_server}
    for i, host in enumerate(("uiuc", "lehigh")):
        spec = PhysicalSpecimen(
            f"{host}-pier",
            BilinearSpring(k=config.k_pier, fy=config.pier_yield, alpha=0.1),
            actuator=Actuator(min_settle=config.settle_min,
                              max_stroke=0.15, tracking_std=2e-5),
            lvdt=Sensor(noise_std=1e-5), load_cell=Sensor(noise_std=100.0),
            seed=42 + i)
        piers[host] = spec
        container = ServiceContainer(network, host)
        server = NTCPServer(f"ntcp-{host}", ShoreWesternPlugin(
            ShoreWesternController({0: spec})))
        handles[host] = container.deploy(server)
        servers[host] = server

    # NCSA: the simulated deck coupling all three DOFs.
    deck = LinearSubstructure("deck", deck_coupling_matrix(config.k_deck),
                              dof_indices=[0, 1, 2])
    ncsa_container = ServiceContainer(network, "ncsa")
    ncsa_server = NTCPServer("ntcp-ncsa", SimulationPlugin(
        deck, compute_time=config.compute_time))
    handles["ncsa"] = ncsa_container.deploy(ncsa_server)
    servers["ncsa"] = ncsa_server

    model = StructuralModel(
        mass=np.diag(config.masses),
        stiffness=(np.diag([config.k_soil, config.k_pier, config.k_pier])
                   + deck_coupling_matrix(config.k_deck))
    ).with_rayleigh_damping(config.damping_ratio)
    motion = kanai_tajimi_record(duration=config.n_steps * config.dt,
                                 dt=config.dt, pga=config.pga,
                                 seed=config.motion_seed)
    client = NTCPClient(RpcClient(network, "coord", default_timeout=30.0,
                                  default_retries=3),
                        timeout=30.0, retries=3)
    coordinator = SimulationCoordinator(
        run_id="cd36", client=client, model=model, motion=motion,
        sites=[SiteBinding("rpi", handles["rpi"], [0]),
               SiteBinding("uiuc", handles["uiuc"], [1]),
               SiteBinding("lehigh", handles["lehigh"], [2]),
               SiteBinding("ncsa", handles["ncsa"], [0, 1, 2])],
        fault_policy=FaultTolerantFaultPolicy(max_attempts=5, backoff=5.0),
        execution_timeout=120.0)
    return SoilStructureRig(config=config, kernel=kernel, network=network,
                            coordinator=coordinator, centrifuge=centrifuge,
                            piers=piers, deck=deck, servers=servers)


def run_soil_structure_experiment(config: SoilStructureConfig | None = None):
    """Spin up the centrifuge and run the coupled test; returns
    ``(result, rig)``."""
    rig = build_soil_structure(config)
    rig.centrifuge.spin_up()
    result = rig.kernel.run(until=rig.kernel.process(rig.coordinator.run()))
    return result, rig
