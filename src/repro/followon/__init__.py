"""The paper's §5 "Ongoing Work" experiments, built on the same framework.

Section 5 lists four planned follow-on uses of NEESgrid; each is
implemented here as a runnable experiment, demonstrating the paper's claim
that the framework generalizes beyond MOST:

* :mod:`~repro.followon.soil_structure` — the RPI/UIUC/Lehigh/NCSA
  soil-structure interaction test (Collector-Distributor 36 of the Santa
  Monica Freeway), with a geotechnical centrifuge site whose commands and
  measurements obey centrifuge similitude scaling;
* :mod:`~repro.followon.field_test` — the UCLA four-story building forced
  vibration field test: wireless sensor arrays over lossy 802.11 links,
  a mobile command center archiving locally, and satellite telemetry back
  to the repository;
* :mod:`~repro.followon.centrifuge_robot` — the UC Davis centrifuge robot
  arm with exchangeable tools and piezoelectric bender elements, driven
  through NTCP with a *non-displacement* action vocabulary (the §6 claim
  that "NTCP ... can be used to control and observe a wide range of
  devices");
* :mod:`~repro.followon.six_dof` — the Minnesota six-degree-of-freedom
  controller applying quasi-static load poses, with framework-triggered
  still-image capture as data.
"""

from repro.followon.soil_structure import (
    CentrifugePlugin,
    SoilStructureConfig,
    run_soil_structure_experiment,
)
from repro.followon.field_test import (
    FieldTestConfig,
    run_field_test,
)
from repro.followon.centrifuge_robot import (
    RobotArm,
    RobotArmPlugin,
    run_robot_survey,
)
from repro.followon.six_dof import (
    SixDofController,
    SixDofPlugin,
    run_six_dof_loading,
)

__all__ = [
    "SoilStructureConfig",
    "CentrifugePlugin",
    "run_soil_structure_experiment",
    "FieldTestConfig",
    "run_field_test",
    "RobotArm",
    "RobotArmPlugin",
    "run_robot_survey",
    "SixDofController",
    "SixDofPlugin",
    "run_six_dof_loading",
]
