"""UCLA field test (paper §5).

"A UCLA team of earthquake engineers plan to perform field testing of a
four-story office building in Los Angeles.  They intend to apply
earthquake-type and harmonic force histories to the building, gathering
acceleration, strain, and displacement data using wireless sensor arrays
(802.11 wireless telemetry) to evaluate response and behavior.  Data and
video streams will be recorded and archived at a mobile command center
before transmission to the laboratory using satellite telemetry."

Structure: a 4-story shear frame excited by a shaker applying the
configured force history (no hybrid coupling — this is forced-vibration
monitoring).  Wireless sensor nodes on each floor sample the response and
push datagrams over lossy 802.11 links to the mobile command center, which
archives everything locally (store-and-forward) and ingests the archive to
the remote laboratory repository over a high-latency satellite link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.daq import StagingStore
from repro.daq.filestore import RepositoryFileStore
from repro.net import Network, RpcClient
from repro.nsds import NSDSReceiver
from repro.ogsi import GridServiceHandle, ServiceContainer
from repro.repository import (
    GridFTPTransport,
    IngestionTool,
    NFMSService,
    NMDSService,
)
from repro.sim import Kernel
from repro.structural import NewmarkBeta, ShearFrame
from repro.structural.specimen import Sensor


@dataclass
class FieldTestConfig:
    """The four-story office building and its instrumentation."""

    story_masses: tuple = (1.2e5, 1.2e5, 1.2e5, 1.0e5)   # kg
    story_stiffnesses: tuple = (2.4e8, 2.2e8, 2.0e8, 1.8e8)  # N/m
    damping_ratio: float = 0.03
    duration: float = 120.0
    dt: float = 0.02
    # excitation: harmonic sweep then an earthquake-type burst
    harmonic_force: float = 5.0e4     # N at the roof
    harmonic_freq: float = 1.2        # Hz, near the fundamental
    quake_force: float = 2.0e5        # N peak
    sample_interval: float = 0.1      # wireless nodes sample at 10 Hz
    wifi_loss: float = 0.12           # 802.11 in the field is lossy
    wifi_latency: float = 0.004
    satellite_latency: float = 0.28   # geostationary hop
    satellite_bandwidth: float = 5e5  # bytes/s
    block_size: int = 100
    seed: int = 90024                 # a Los Angeles zip code


@dataclass
class FieldTestReport:
    """Everything the §5 description promises, measured."""

    floors_sampled: int
    samples_sent: int
    samples_received: int
    wifi_loss_fraction: float
    files_archived_locally: int
    files_uploaded_via_satellite: int
    upload_duration: float
    peak_roof_drift: float
    fundamental_frequency_hz: float
    extras: dict = field(default_factory=dict)


def force_history(config: FieldTestConfig) -> np.ndarray:
    """Roof force: harmonic sweep (first half) then earthquake-type burst."""
    n = int(round(config.duration / config.dt))
    t = np.arange(n) * config.dt
    half = n // 2
    force = np.zeros(n)
    force[:half] = config.harmonic_force * np.sin(
        2 * np.pi * config.harmonic_freq * t[:half])
    rng = np.random.default_rng(config.seed)
    burst = rng.standard_normal(n - half)
    envelope = np.exp(-0.15 * (t[half:] - t[half]))
    burst = burst * envelope
    if np.max(np.abs(burst)) > 0:
        burst *= config.quake_force / np.max(np.abs(burst))
    force[half:] = burst
    return force


def run_field_test(config: FieldTestConfig | None = None) -> FieldTestReport:
    """Execute the full UCLA scenario; returns the measured report."""
    config = config or FieldTestConfig()
    kernel = Kernel()
    network = Network(kernel, seed=config.seed)
    for host in ("building", "command-center", "laboratory"):
        network.add_host(host)
    network.connect("building", "command-center",
                    latency=config.wifi_latency, loss=config.wifi_loss,
                    fifo=False)  # 802.11: lossy, reordering
    network.connect("command-center", "laboratory",
                    latency=config.satellite_latency)

    # ---- structural response (computed up front; the field test measures
    # a real building, our substitute is the reference simulation) ---------
    frame = ShearFrame(masses=list(config.story_masses),
                       stiffnesses=list(config.story_stiffnesses),
                       zeta=config.damping_ratio)
    force = force_history(config)
    # Roof force -> equivalent "ground motion" via the load vector trick:
    # integrate with external force applied at the roof DOF only.
    n_dof = frame.n_dof
    loads = np.zeros((len(force), n_dof))
    loads[:, -1] = force  # the shaker acts at the roof
    results = NewmarkBeta(frame, config.dt).integrate_forced(loads)
    displacement = np.vstack([r.displacement for r in results])
    acceleration = np.vstack([r.acceleration for r in results])

    # ---- wireless sensor array: one node per floor ---------------------------
    receiver = NSDSReceiver(network, "command-center")
    sensors = {f"floor-{i}": Sensor(noise_std=1e-5) for i in range(n_dof)}
    rng = np.random.default_rng(config.seed + 1)
    sent = [0]

    def sensor_array():
        """Sample each floor and radio the readings to the command center."""
        seq = {name: 0 for name in sensors}
        step_stride = max(1, int(round(config.sample_interval / config.dt)))
        for idx in range(0, len(results), step_stride):
            yield kernel.timeout(config.sample_interval)
            for floor, name in enumerate(sensors):
                seq[name] += 1
                sent[0] += 1
                network.send("building", "command-center", receiver.port, {
                    "channel": name,
                    "sequence": seq[name],
                    "time": kernel.now,
                    "value": sensors[name].read(
                        displacement[idx, floor], rng),
                })

    kernel.process(sensor_array(), name="wireless-array")

    # ---- mobile command center: local archive + satellite ingestion ----------
    local_archive = StagingStore("command-center-archive")
    lab_container = ServiceContainer(network, "laboratory")
    nmds, nfms = NMDSService(), NFMSService()
    lab_container.deploy(nmds)
    lab_container.deploy(nfms)
    nfms.install_transport("gridftp")
    lab_store = RepositoryFileStore()
    satellite = GridFTPTransport(network,
                                 bandwidth=config.satellite_bandwidth,
                                 parallel_streams=1)
    tool = IngestionTool(
        site="command-center", staging=local_archive,
        repo_host="laboratory", repo_store=lab_store, transport=satellite,
        rpc=RpcClient(network, "command-center", default_timeout=60.0,
                      default_retries=2),
        nfms=GridServiceHandle("laboratory", "ogsi", "nfms"),
        nmds=GridServiceHandle("laboratory", "ogsi", "nmds"),
        experiment="ucla-field-test", sweep_interval=30.0)

    def archiver():
        """Block received samples into archive files (store-and-forward)."""
        buffer: list = []
        blocks = [0]

        def on_sample(sample):
            buffer.append((sample.time, {sample.channel: sample.value}))
            if len(buffer) >= config.block_size:
                blocks[0] += 1
                local_archive.deposit(f"field-block-{blocks[0]:04d}",
                                      list(buffer), created=kernel.now)
                buffer.clear()

        receiver.callback = on_sample
        yield kernel.timeout(config.duration + 5.0)
        if buffer:
            blocks[0] += 1
            local_archive.deposit(f"field-block-{blocks[0]:04d}",
                                  list(buffer), created=kernel.now)

    archive_done = kernel.process(archiver(), name="archiver")
    tool.start()
    kernel.run(until=archive_done)
    # let the satellite uploads drain
    tool_deadline = kernel.now + 600.0
    kernel.run(until=tool_deadline)
    tool.stop()
    kernel.run(until=kernel.now + 120.0)

    received = sum(receiver.received_count(c) for c in sensors)
    upload_durations = [
        rec.detail["duration"]
        for rec in kernel.log.records("ingest.command-center",
                                      "upload.completed")]
    # fundamental frequency from the roof acceleration spectrum
    roof_acc = acceleration[:, -1]
    spectrum = np.abs(np.fft.rfft(roof_acc * np.hanning(len(roof_acc))))
    freqs = np.fft.rfftfreq(len(roof_acc), config.dt)
    fundamental = float(freqs[1 + int(np.argmax(spectrum[1:]))])

    return FieldTestReport(
        floors_sampled=n_dof,
        samples_sent=sent[0],
        samples_received=received,
        wifi_loss_fraction=1.0 - received / max(1, sent[0]),
        files_archived_locally=len(local_archive),
        files_uploaded_via_satellite=len(tool.uploaded),
        upload_duration=float(np.sum(upload_durations)),
        peak_roof_drift=float(np.max(np.abs(displacement[:, -1]))),
        fundamental_frequency_hz=fundamental,
        extras={"archive": local_archive, "lab_store": lab_store,
                "tool": tool, "receiver": receiver,
                "frame": frame, "displacement": displacement})
