"""Exhaustive bounded verification of the NTCP coordinator protocol.

The package holds four layers:

* :mod:`repro.verify.model` — a deterministic small-step abstraction of
  the coordinator + NTCP servers whose only nondeterminism is the fault
  schedule, asserting the PROTOCOL.md §§7–9 invariants (at-most-once
  execution, monotone commits, no orphaned names, degraded-labeling
  soundness, command freshness) on every transition;
* :mod:`repro.verify.explorer` — exhaustive enumeration of every fault
  schedule within a bounded configuration, deduplicating canonical
  protocol states;
* :mod:`repro.verify.conformance` — replay of sampled traces through a
  *live* :class:`~repro.coordinator.mspsds.SimulationCoordinator`
  deployment with the same fault injected at the same message point;
  any divergence between the live observables and the model's expected
  tables fails the run, so the model cannot rot;
* :mod:`repro.verify.report` — ``repro.verify/v1`` JSON documents,
  schema-validated on emission like the benchmark reports.

Run it with ``python -m repro.verify`` (or ``make verify``).
"""

from repro.verify.conformance import (
    Divergence,
    ReplayOutcome,
    replay_trace,
    run_conformance,
)
from repro.verify.explorer import (
    ExplorationResult,
    enumerate_schedules,
    explore,
)
from repro.verify.model import (
    FAULT_KINDS,
    FaultEvent,
    ModelMachine,
    ProtocolRules,
    TraceResult,
    VerifyConfig,
    Violation,
)
from repro.verify.report import (
    VERIFY_SCHEMA_ID,
    build_report,
    ensure_valid,
    validate_verify_payload,
)

__all__ = [
    "FAULT_KINDS",
    "VERIFY_SCHEMA_ID",
    "Divergence",
    "ExplorationResult",
    "FaultEvent",
    "ModelMachine",
    "ProtocolRules",
    "ReplayOutcome",
    "TraceResult",
    "VerifyConfig",
    "Violation",
    "build_report",
    "ensure_valid",
    "enumerate_schedules",
    "explore",
    "replay_trace",
    "run_conformance",
    "validate_verify_payload",
]
