"""``repro.verify/v1`` report documents: build + schema validation.

The verifier emits one JSON document per run summarizing every bounded
exploration (states explored, traces run, violations), the mutation
regression (which seeded protocol breaks the checker caught), and the
conformance replay (traces replayed through the live coordinator,
divergences).  Like the benchmark documents (``repro.bench/v1``), the
schema is hand-rolled and validated on emission, so a malformed report
fails the run instead of rotting on disk.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.schema import SchemaError, _check_number, _require
from repro.verify.explorer import ExplorationResult

__all__ = [
    "VERIFY_SCHEMA_ID",
    "build_report",
    "validate_verify_payload",
]

VERIFY_SCHEMA_ID = "repro.verify/v1"

_EXPLORATION_KEYS = ("sites", "n_steps", "pipeline_depth", "max_faults",
                     "traces", "states_explored", "violations")
_VIOLATION_KEYS = ("invariant", "step", "site", "detail", "schedule")
_MUTATION_KEYS = ("rule", "caught", "violations")
_CONFORMANCE_KEYS = ("traces_replayed", "divergences")


def _exploration_record(result: ExplorationResult) -> dict[str, Any]:
    cfg = result.config
    return {
        "sites": list(cfg.sites),
        "n_steps": cfg.n_steps,
        "pipeline_depth": cfg.pipeline_depth,
        "max_faults": cfg.max_faults,
        "traces": len(result.traces),
        "states_explored": result.states_explored,
        "violations": [
            {
                "invariant": violation.invariant,
                "step": violation.step,
                "site": violation.site,
                "detail": violation.detail,
                "schedule": [
                    {"step": ev.step, "kind": ev.kind, "site": ev.site}
                    for ev in schedule
                ],
            }
            for schedule, violation in result.violations
        ],
    }


def build_report(explorations: list[ExplorationResult],
                 mutations: list[dict[str, Any]] | None = None,
                 conformance: dict[str, Any] | None = None,
                 ) -> dict[str, Any]:
    """Assemble a ``repro.verify/v1`` document from a verifier run.

    ``mutations`` entries carry ``{"rule", "caught", "violations"}`` from
    the mutation regression; ``conformance`` carries
    ``{"traces_replayed", "divergences"}`` from the live replay.  The
    document's top-level ``ok`` is True only when every exploration is
    violation-free, every mutation was caught, and no replay diverged.
    """
    records = [_exploration_record(result) for result in explorations]
    ok = all(not record["violations"] for record in records)
    if mutations is not None:
        ok = ok and all(mutation["caught"] for mutation in mutations)
    if conformance is not None:
        ok = ok and not conformance["divergences"]
    report: dict[str, Any] = {
        "schema": VERIFY_SCHEMA_ID,
        "explorations": records,
        "ok": ok,
    }
    if mutations is not None:
        report["mutations"] = mutations
    if conformance is not None:
        report["conformance"] = conformance
    return report


def _validate_violation(record: Any, path: str) -> None:
    _require(isinstance(record, dict), path, "violation must be an object")
    for key in _VIOLATION_KEYS:
        _require(key in record, f"{path}.{key}", "missing")
    _require(isinstance(record["invariant"], str) and record["invariant"],
             f"{path}.invariant", "must be a non-empty string")
    _require(isinstance(record["step"], int), f"{path}.step",
             "must be an integer")
    _require(record["site"] is None or isinstance(record["site"], str),
             f"{path}.site", "must be a string or null")
    _require(isinstance(record["detail"], str), f"{path}.detail",
             "must be a string")
    _require(isinstance(record["schedule"], list), f"{path}.schedule",
             "must be a list")
    for i, event in enumerate(record["schedule"]):
        event_path = f"{path}.schedule[{i}]"
        _require(isinstance(event, dict), event_path,
                 "fault event must be an object")
        for key in ("step", "kind", "site"):
            _require(key in event, f"{event_path}.{key}", "missing")


def _validate_exploration(record: Any, path: str) -> None:
    _require(isinstance(record, dict), path,
             "exploration record must be an object")
    for key in _EXPLORATION_KEYS:
        _require(key in record, f"{path}.{key}", "missing")
    sites = record["sites"]
    _require(isinstance(sites, list) and sites
             and all(isinstance(site, str) for site in sites),
             f"{path}.sites", "must be a non-empty list of strings")
    for key in ("n_steps", "max_faults", "traces", "states_explored"):
        _check_number(record[key], f"{path}.{key}")
        _require(isinstance(record[key], int) and record[key] >= 0,
                 f"{path}.{key}", "must be a non-negative integer")
    _require(record["n_steps"] >= 1, f"{path}.n_steps", "must be >= 1")
    _require(record["traces"] >= 1, f"{path}.traces", "must be >= 1")
    _require(isinstance(record["pipeline_depth"], int)
             and record["pipeline_depth"] in (0, 1),
             f"{path}.pipeline_depth", "must be 0 or 1")
    _require(isinstance(record["violations"], list), f"{path}.violations",
             "must be a list")
    for i, violation in enumerate(record["violations"]):
        _validate_violation(violation, f"{path}.violations[{i}]")


def validate_verify_payload(payload: Any) -> None:
    """Validate a full ``repro.verify/v1`` document.

    Raises :class:`~repro.telemetry.schema.SchemaError` with a JSON path
    to the offending field on any mismatch.

    Shape::

        {"schema": "repro.verify/v1", "ok": bool,
         "explorations": [{"sites": [...], "n_steps": int,
                           "pipeline_depth": 0 | 1, "max_faults": int,
                           "traces": int, "states_explored": int,
                           "violations": [...]}],
         "mutations": [{"rule": str, "caught": bool,
                        "violations": [str, ...]}]?,
         "conformance": {"traces_replayed": int, "divergences": [...]}?}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == VERIFY_SCHEMA_ID, "$.schema",
             f"expected {VERIFY_SCHEMA_ID!r}, got {payload.get('schema')!r}")
    _require(isinstance(payload.get("ok"), bool), "$.ok",
             "must be a boolean")
    explorations = payload.get("explorations")
    _require(isinstance(explorations, list) and explorations,
             "$.explorations", "must be a non-empty list")
    for i, record in enumerate(explorations):
        _validate_exploration(record, f"$.explorations[{i}]")
    if "mutations" in payload:
        mutations = payload["mutations"]
        _require(isinstance(mutations, list), "$.mutations",
                 "must be a list")
        for i, record in enumerate(mutations):
            path = f"$.mutations[{i}]"
            _require(isinstance(record, dict), path,
                     "mutation record must be an object")
            for key in _MUTATION_KEYS:
                _require(key in record, f"{path}.{key}", "missing")
            _require(isinstance(record["rule"], str) and record["rule"],
                     f"{path}.rule", "must be a non-empty string")
            _require(isinstance(record["caught"], bool), f"{path}.caught",
                     "must be a boolean")
            _require(isinstance(record["violations"], list),
                     f"{path}.violations", "must be a list")
    if "conformance" in payload:
        conformance = payload["conformance"]
        path = "$.conformance"
        _require(isinstance(conformance, dict), path,
                 "conformance must be an object")
        for key in _CONFORMANCE_KEYS:
            _require(key in conformance, f"{path}.{key}", "missing")
        _require(isinstance(conformance["traces_replayed"], int)
                 and conformance["traces_replayed"] >= 0,
                 f"{path}.traces_replayed",
                 "must be a non-negative integer")
        _require(isinstance(conformance["divergences"], list),
                 f"{path}.divergences", "must be a list")
    # Cross-field consistency: ok must reflect the violation lists.
    derived_ok = all(not record["violations"] for record in explorations)
    if "mutations" in payload:
        derived_ok = derived_ok and all(record["caught"]
                                        for record in payload["mutations"])
    if "conformance" in payload:
        derived_ok = derived_ok and not payload["conformance"]["divergences"]
    _require(payload["ok"] == derived_ok, "$.ok",
             "must equal the conjunction of clean explorations, caught "
             "mutations, and divergence-free conformance")


def ensure_valid(payload: dict[str, Any]) -> dict[str, Any]:
    """Validate ``payload`` and return it (emission-time guard)."""
    validate_verify_payload(payload)
    return payload


# Re-exported so callers need not import the telemetry module to catch
# validation failures.
VerifyReportError = SchemaError
