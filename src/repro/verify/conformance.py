"""Conformance replay: the abstract model vs the live coordinator.

The model checker is only as good as its transition relation, so every
``make verify`` run replays a sampled subset of explored traces through a
*real* deployment — :class:`~repro.coordinator.mspsds.SimulationCoordinator`
driving genuine NTCP servers over the simulated network, with the same
fault injected at the same message point — and compares the live
observables 1:1 against the model's :attr:`TraceResult.expected` tables:
per-site transaction counters (real and surrogate), completion, the
committed-step ledger, resume generation, degraded labels, the §7
reconciliation classification, and the §9 pipeline counters.  Any
divergence fails the verification run: either the implementation drifted
from PROTOCOL.md or the model did, and both are bugs.

Fault arming follows the chaos campaign's traffic-watching idiom — a
drop-filter watcher recognises the step's transaction-name marker inside
the RPC request and installs the fault at that exact message point — so
replays land the fault deterministically regardless of pacing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control import SimulationPlugin
from repro.coordinator import (
    DegradationPolicy,
    FailoverManager,
    FaultTolerantFaultPolicy,
    NaiveFaultPolicy,
    SimulationCoordinator,
    SiteBinding,
    SubstructurePredictor,
    SurrogateSpec,
    records_from_payloads,
    resume_state_from_checkpoint,
)
from repro.core import NTCPClient, NTCPServer
from repro.core.policy import SitePolicy
from repro.net import CircuitBreaker, FaultInjector, Network, RpcClient
from repro.net.rpc import RpcRequest, RpcResponse
from repro.ogsi import ServiceContainer
from repro.repository.checkpoint import (
    CheckpointPolicy,
    InMemoryCheckpointStore,
)
from repro.sim import Kernel
from repro.structural import (
    LinearSubstructure,
    StructuralModel,
    el_centro_like,
)
from repro.util.errors import ConfigurationError
from repro.verify.explorer import ExplorationResult
from repro.verify.model import FaultEvent, TraceResult, VerifyConfig

__all__ = ["Divergence", "ReplayOutcome", "replay_trace", "run_conformance"]

#: the counters the model commits to (subset of the server's STAT_KEYS).
COUNTER_KEYS = ("proposed", "executed", "cancelled",
                "duplicate_proposals", "duplicate_executes")

#: pipeline telemetry counters compared for pipelined replays.
PIPELINE_KEYS = ("speculated", "hits", "mispredicts", "drains")

_RUN_ID = "verify"
_SITE_STIFFNESS = 30.0
_COMPUTE_TIME = 0.05
_LATENCY = 0.01
_DT = 0.02
#: server-side execute budget; the execute RPC timeout is this + 10, so
#: one retransmission straddles the model's transient outage window.
_EXECUTION_TIMEOUT = 120.0


@dataclass(frozen=True)
class Divergence:
    """One observable where the live replay disagrees with the model."""

    path: str
    model: object
    live: object

    def describe(self) -> str:
        """Human-readable one-liner for reports and failures."""
        return f"{self.path}: model={self.model!r} live={self.live!r}"


@dataclass
class ReplayOutcome:
    """The result of replaying one sampled trace against a live rig."""

    kind: str
    schedule: tuple[FaultEvent, ...]
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every observable matched the model."""
        return not self.divergences


class _Rig:
    """One live deployment sized to a :class:`VerifyConfig`."""

    def __init__(self, config: VerifyConfig, *, with_failover: bool = False):
        self.config = config
        self.kernel = Kernel()
        self.network = Network(self.kernel, seed=0)
        self.faults = FaultInjector(self.network)
        self.network.add_host("coord")
        self.servers: dict[str, NTCPServer] = {}
        handles = {}
        for site in config.sites:
            self.network.add_host(site)
            self.network.connect("coord", site, latency=_LATENCY)
            container = ServiceContainer(self.network, site)
            plugin = SimulationPlugin(
                LinearSubstructure(site, [[_SITE_STIFFNESS]], [0]),
                compute_time=_COMPUTE_TIME)
            server = NTCPServer(f"ntcp-{site}", plugin)
            handles[site] = container.deploy(server)
            self.servers[site] = server
        self.model = StructuralModel(
            mass=[[2.0]], stiffness=[[100.0]]).with_rayleigh_damping(0.05)
        # n_steps committed steps need n_steps + 1 motion samples (the
        # extra one is the step-0 rest measurement).
        self.motion = el_centro_like(
            duration=(config.n_steps + 1) * _DT, dt=_DT).scaled_to_pga(1.0)
        rpc = RpcClient(self.network, "coord",
                        default_timeout=config.rpc_timeout,
                        default_retries=config.rpc_retries)
        self.client = NTCPClient(rpc, timeout=config.rpc_timeout,
                                 retries=config.rpc_retries)
        self.sites = [SiteBinding(site, handles[site], [0])
                      for site in config.sites]
        self.breakers = None
        self.failover = None
        if with_failover:
            self.breakers = {site: CircuitBreaker(self.kernel, site)
                             for site in config.sites}
            container = ServiceContainer(self.network, "coord",
                                         port="ogsi-failover")
            specs = [SurrogateSpec(
                site=site,
                substructure_factory=(
                    lambda site=site: LinearSubstructure(
                        f"{site}-surrogate", [[_SITE_STIFFNESS]], [0])),
                compute_time=_COMPUTE_TIME, policy=SitePolicy())
                for site in config.sites]
            self.failover = FailoverManager(container=container, specs=specs,
                                            policy=DegradationPolicy())

    def predictor(self) -> SubstructurePredictor:
        """A bit-exact predictor (same linear substructures as the sites)."""
        return SubstructurePredictor({
            site: LinearSubstructure(f"{site}-predictor",
                                     [[_SITE_STIFFNESS]], [0])
            for site in self.config.sites})

    def make_coordinator(self, *, fault_policy, store=None,
                         checkpoint_policy=None, state=None,
                         prior_records=()) -> SimulationCoordinator:
        """A coordinator over this rig's sites, per the config's mode."""
        predictor = (self.predictor() if self.config.pipeline_depth
                     else None)
        return SimulationCoordinator(
            run_id=_RUN_ID, client=self.client, model=self.model,
            motion=self.motion, sites=self.sites, fault_policy=fault_policy,
            execution_timeout=_EXECUTION_TIMEOUT,
            checkpoint_store=store, checkpoint_policy=checkpoint_policy,
            state=state, prior_records=prior_records,
            breakers=self.breakers, failover=self.failover,
            pipeline_depth=self.config.pipeline_depth, predictor=predictor)

    def run(self, coordinator: SimulationCoordinator):
        """Drive one coordinator run to quiescence."""
        return self.kernel.run(until=self.kernel.process(coordinator.run()))


def _ft_policy(config: VerifyConfig) -> FaultTolerantFaultPolicy:
    """The fault-tolerant policy the model's timing arithmetic mirrors."""
    return FaultTolerantFaultPolicy(
        max_attempts=config.max_attempts, backoff=config.backoff,
        backoff_factor=config.backoff_factor,
        max_backoff=config.max_backoff)


def _is_verb_request(msg, site: str, verb: str, marker: str) -> bool:
    """True when ``msg`` is the NTCP ``verb`` request for the marked
    transaction toward ``site`` (the chaos campaigns' watching idiom)."""
    if msg.dst != site:
        return False
    payload = msg.payload
    if not isinstance(payload, RpcRequest) or payload.method != "invoke":
        return False
    if payload.params.get("operation") != verb:
        return False
    return marker in str(payload.params.get("params"))


def _arm_reply_drop(rig: _Rig, event: FaultEvent, verb: str, *,
                    down_link: bool = False) -> None:
    """Drop the reply to the first ``verb`` request for the event's step.

    The watcher captures the request id when the marked request goes on
    the wire (the request itself is delivered), then drops the matching
    reply once — the RPC layer retransmits and the server's idempotent
    verb absorbs the duplicate.  With ``down_link`` the reply drop also
    takes the coordinator—site link down for good (the crash scenarios:
    the first incarnation's fault policy aborts on the dead exchange).
    """
    marker = f"step{event.step:05d}-{event.site}"
    captured: list[str] = []
    dropped = [False]

    def watch(msg) -> bool:
        if not captured and _is_verb_request(msg, event.site, verb, marker):
            captured.append(msg.payload.request_id)
            return False
        if (captured and not dropped[0] and msg.src == event.site
                and isinstance(msg.payload, RpcResponse)
                and msg.payload.request_id == captured[0]):
            dropped[0] = True
            if down_link:
                rig.faults.schedule_outage("coord", event.site,
                                           start=rig.kernel.now)
            return True
        return False

    rig.network.add_drop_filter(watch)


def _arm_request_duplicate(rig: _Rig, event: FaultEvent, verb: str) -> None:
    """Deliver an extra copy of the first marked ``verb`` request."""
    marker = f"step{event.step:05d}-{event.site}"
    rig.faults.duplicate_matching(
        lambda msg: _is_verb_request(msg, event.site, verb, marker),
        count=1)


def _arm_outage_on_propose(rig: _Rig, event: FaultEvent,
                           duration: float) -> None:
    """Down the link when the step's propose goes on the wire.

    The arming request is already scheduled, so it arrives and the site
    holds the orphaned acceptance; everything after — replies, cancels,
    retransmissions — dies until the outage lifts (never, for the fatal
    variant).
    """
    marker = f"step{event.step:05d}-{event.site}"
    armed = [False]

    def watch(msg) -> bool:
        if not armed[0] and _is_verb_request(msg, event.site, "propose",
                                             marker):
            armed[0] = True
            rig.faults.schedule_outage("coord", event.site,
                                       start=rig.kernel.now,
                                       duration=duration)
        return False

    rig.network.add_drop_filter(watch)


def _arm(rig: _Rig, event: FaultEvent) -> None:
    """Install one model fault kind at its live message point."""
    if event.kind == "drop_propose_reply":
        _arm_reply_drop(rig, event, "propose")
    elif event.kind == "drop_execute_reply":
        _arm_reply_drop(rig, event, "execute")
    elif event.kind == "dup_propose_request":
        _arm_request_duplicate(rig, event, "propose")
    elif event.kind == "dup_execute_request":
        _arm_request_duplicate(rig, event, "execute")
    elif event.kind == "fatal_outage_propose":
        _arm_outage_on_propose(rig, event, float("inf"))
    elif event.kind == "spec_outage_propose":
        _arm_outage_on_propose(rig, event, rig.config.outage_duration)
    else:
        raise ConfigurationError(
            f"fault kind {event.kind!r} has no live arming")


def _observe(rig: _Rig, result, coordinator) -> dict:
    """The live observables, shaped exactly like the model's expected."""
    per_site = {}
    active = rig.failover.active if rig.failover is not None else {}
    for site in rig.config.sites:
        metrics = rig.servers[site].metrics()
        counters = {key: metrics[key] for key in COUNTER_KEYS}
        surrogate = None
        if site in active:
            surrogate_metrics = active[site].server.metrics()
            surrogate = {key: surrogate_metrics[key] for key in COUNTER_KEYS}
        per_site[site] = {"real": counters, "surrogate": surrogate}
    reconcile = {}
    if coordinator.last_reconciliation is not None:
        reconcile = {action.site: action.action
                     for action in coordinator.last_reconciliation.actions}
    pipeline = None
    if rig.config.pipeline_depth:
        telemetry = rig.kernel.telemetry
        pipeline = {key: telemetry.counter(f"coordinator.pipeline.{key}",
                                           run_id=_RUN_ID).value
                    for key in PIPELINE_KEYS}
    return {
        "completed": result.completed,
        "committed_steps": [record.step for record in result.steps],
        "generation": coordinator.state.generation,
        "degraded": {str(record.step): sorted(record.degraded)
                     for record in result.steps if record.degraded},
        "sites": per_site,
        "reconcile": reconcile,
        "pipeline": pipeline,
    }


def _replay_single(config: VerifyConfig,
                   event: FaultEvent | None) -> dict:
    """One-incarnation replay (wire faults, outages, or the clean run)."""
    with_failover = (event is not None
                     and event.kind == "fatal_outage_propose")
    rig = _Rig(config, with_failover=with_failover)
    if event is not None:
        _arm(rig, event)
    coordinator = rig.make_coordinator(fault_policy=_ft_policy(config))
    result = rig.run(coordinator)
    return _observe(rig, result, coordinator)


def _replay_crash(config: VerifyConfig, event: FaultEvent) -> dict:
    """Two-incarnation replay for the coordinator-crash kinds.

    Incarnation 1 runs the abort-on-first-failure policy into the armed
    fault (the verb's replies die and the link goes down), leaving an
    abort-time checkpoint; the link is then restored and incarnation 2
    resumes from the checkpoint, reconciling per the §7 table.
    """
    verb = "propose" if event.kind == "crash_propose" else "execute"
    rig = _Rig(config)
    _arm_reply_drop(rig, event, verb, down_link=True)
    store = InMemoryCheckpointStore()
    policy = CheckpointPolicy(every_n_steps=0)
    first = rig.make_coordinator(fault_policy=NaiveFaultPolicy(),
                                 store=store, checkpoint_policy=policy)
    aborted = rig.run(first)
    if aborted.completed:
        raise ConfigurationError(
            f"crash replay at step {event.step} did not abort")

    rig.network.set_link_state("coord", event.site, up=True)
    doc, payloads = _run_store(store.load_history(_RUN_ID))
    state = resume_state_from_checkpoint(doc)
    second = rig.make_coordinator(
        fault_policy=NaiveFaultPolicy(), store=store,
        checkpoint_policy=policy, state=state,
        prior_records=records_from_payloads(payloads))
    result = rig.run(second)
    return _observe(rig, result, second)


def _run_store(gen):
    """Drive an in-memory store primitive (completes without yielding)."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise ConfigurationError("in-memory store call unexpectedly yielded")


def _diff(path: str, model_value, live_value,
          out: list[Divergence]) -> None:
    """Structural comparison; model ``None`` means *not committed to*."""
    if model_value is None:
        return
    if isinstance(model_value, dict):
        if not isinstance(live_value, dict):
            out.append(Divergence(path, model_value, live_value))
            return
        for key in sorted(set(model_value) | set(live_value)):
            _diff(f"{path}.{key}", model_value.get(key),
                  live_value.get(key) if live_value else None, out)
        return
    if model_value != live_value:
        out.append(Divergence(path, model_value, live_value))


def compare_trace(trace: TraceResult, live: dict) -> list[Divergence]:
    """Every observable where ``live`` departs from the model's tables."""
    divergences: list[Divergence] = []
    _diff("$", trace.expected, live, divergences)
    return divergences


def replay_trace(config: VerifyConfig, trace: TraceResult) -> ReplayOutcome:
    """Replay one explored trace through a live rig and compare.

    Only clean and single-fault traces are replayable — the sampler
    (`ExplorationResult.traces_by_kind`) picks exactly those.
    """
    if len(trace.schedule) > 1:
        raise ConfigurationError(
            "conformance replays sample clean/single-fault traces only")
    event = trace.schedule[0] if trace.schedule else None
    kind = event.kind if event is not None else "clean"
    if kind in ("crash_propose", "crash_execute"):
        live = _replay_crash(config, event)
    else:
        live = _replay_single(config, event)
    return ReplayOutcome(kind=kind, schedule=trace.schedule,
                         divergences=compare_trace(trace, live))


def run_conformance(exploration: ExplorationResult) -> dict:
    """Replay the exploration's sampled traces; returns the report block.

    The returned dict is the ``conformance`` section of a
    ``repro.verify/v1`` document: ``traces_replayed``, ``divergences``
    (flattened, each naming its trace kind and observable path), and a
    per-kind ``replays`` breakdown.
    """
    sampled = exploration.traces_by_kind()
    replays = []
    divergences = []
    for kind in sorted(sampled):
        outcome = replay_trace(exploration.config, sampled[kind])
        replays.append({
            "kind": outcome.kind,
            "schedule": [{"step": ev.step, "kind": ev.kind, "site": ev.site}
                         for ev in outcome.schedule],
            "ok": outcome.ok,
        })
        for divergence in outcome.divergences:
            divergences.append({"kind": outcome.kind,
                                "path": divergence.path,
                                "model": repr(divergence.model),
                                "live": repr(divergence.live)})
    return {"traces_replayed": len(replays), "divergences": divergences,
            "replays": replays}
