"""Abstract small-step model of the coordinator protocol.

The model re-states PROTOCOL.md sections 2, 6, 7, 8 and 9 as executable
transition rules over an *abstract* state — per-site transaction tables,
the coordinator's name ledger, the committed-step ledger, breaker /
failover standing and the speculation epoch — and checks, on every
transition, the invariants those sections only state in prose:

* **at-most-once** — no transaction name ever executes twice, and no
  reachable site ever physically runs the same step under two names;
* **monotone commits** — committed step numbers are contiguous and
  strictly increasing;
* **no orphaned names** — at quiescence every transaction is terminal,
  or burned coordinator-side and inert, or held by an unreachable site;
  and the coordinator never issues `execute` for a burned name;
* **degraded-step labeling soundness** — a committed step is labeled
  degraded for exactly the sites whose force came from a surrogate;
* **command freshness** — every committed execution ran the committed
  integrator command for its step, never a stale or speculative one;
* **completion** — every fault schedule drawn from the rideable
  vocabulary ends in a completed run.

Nondeterminism lives entirely in the *fault schedule*: the coordinator
and servers are deterministic between fault points, exactly like the
real kernel-driven deployment, so exhaustively enumerating bounded
schedules (`repro.verify.explorer`) explores the full bounded state
space.  Each completed run yields the observables the conformance layer
(`repro.verify.conformance`) compares against a live deployment.

:class:`ProtocolRules` exposes the transition rules the checker exists
to guard as explicit flags, so a test (or ``--mutate`` on the CLI) can
break one — e.g. resume reconciliation re-executing an already-executed
transaction — and prove the checker catches it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "FAULT_KINDS",
    "PIPELINED_KINDS",
    "SEQUENTIAL_KINDS",
    "STRUCTURAL_KINDS",
    "FaultEvent",
    "ModelMachine",
    "ProtocolRules",
    "TraceResult",
    "VerifyConfig",
    "Violation",
]

#: every fault kind the model understands, keyed to one message point.
FAULT_KINDS = (
    "drop_propose_reply",    # site's propose reply lost once; RPC retransmits
    "drop_execute_reply",    # site's execute reply lost once; RPC retransmits
    "dup_propose_request",   # propose request duplicated on the wire
    "dup_execute_request",   # execute request duplicated on the wire
    "crash_propose",         # coordinator dies mid-propose; checkpoint resume
    "crash_execute",         # coordinator dies mid-execute; checkpoint resume
    "fatal_outage_propose",  # site lost for good; breaker opens, surrogate swap
    "spec_outage_propose",   # outage lands on a speculative propose (pipelined)
)

#: kinds legal in sequential (pipeline_depth == 0) schedules.
SEQUENTIAL_KINDS = (
    "drop_propose_reply", "drop_execute_reply",
    "dup_propose_request", "dup_execute_request",
    "crash_propose", "crash_execute", "fatal_outage_propose",
)

#: kinds legal in pipelined (pipeline_depth == 1) schedules.  Crash and
#: failover under a live speculation collapse into the §9 "rollback
#: first" / drain paths pinned by tests/test_pipeline_speculation.py;
#: the model's pipelined subspace covers the wire-fault endings.
PIPELINED_KINDS = (
    "drop_propose_reply", "drop_execute_reply",
    "dup_propose_request", "dup_execute_request",
    "spec_outage_propose",
)

#: kinds that change the run's *structure* (resume, failover, rollback);
#: bounded to at most one per schedule.
STRUCTURAL_KINDS = ("crash_propose", "crash_execute",
                    "fatal_outage_propose", "spec_outage_propose")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` hits ``site`` at step ``step``."""

    step: int
    kind: str
    site: str


@dataclass(frozen=True)
class ProtocolRules:
    """The transition rules the checker guards, as mutation hooks.

    All flags default to the protocol as specified; flipping one
    deliberately breaks that rule so tests can prove the checker
    *catches* the break (the "seeded mutation" regression).
    """

    #: §3: a duplicate ``execute`` returns the stored outcome instead of
    #: re-running the plugin.
    dedupe_execute: bool = True
    #: §7: a cancelled name is burned; the replacement is renamed
    #: ``-r<generation>`` instead of reusing the burned name.
    rename_after_cancel: bool = True
    #: §7: an already-executed transaction is harvested on resume, never
    #: cancelled and re-run under a fresh name.
    harvest_executed: bool = True
    #: §9: a rolled-back speculation's re-proposal is renamed
    #: ``-s<epoch>`` instead of reusing the burned speculative name.
    rollback_renames: bool = True
    #: §8: every step committed from a surrogate is stamped degraded.
    label_degraded: bool = True

    def broken(self) -> tuple[str, ...]:
        """Names of the rules this instance deliberately violates."""
        return tuple(name for name in (
            "dedupe_execute", "rename_after_cancel", "harvest_executed",
            "rollback_renames", "label_degraded") if not getattr(self, name))

    def mutate(self, rule: str) -> "ProtocolRules":
        """A copy with ``rule`` flipped off (raises on unknown names)."""
        if rule not in self.__dataclass_fields__:
            raise ValueError(f"unknown protocol rule {rule!r}")
        return replace(self, **{rule: False})


@dataclass(frozen=True)
class VerifyConfig:
    """One bounded verification configuration.

    The timing constants mirror the deployment the conformance layer
    replays against (`repro.most.assembly.build_most` plus the chaos
    campaign's fault-tolerant policy); the model's outage arithmetic
    uses them to predict retry-round counts deterministically.
    """

    sites: tuple[str, ...] = ("uiuc", "cu")
    n_steps: int = 4
    pipeline_depth: int = 0
    max_faults: int = 2
    rules: ProtocolRules = field(default_factory=ProtocolRules)
    #: RPC ladder for a propose (client timeout x (retries + 1)).
    rpc_timeout: float = 10.0
    rpc_retries: int = 3
    #: transient outage duration the fault-tolerant policy rides out.
    outage_duration: float = 90.0
    #: fault-tolerant policy backoff (chaos campaign settings).
    backoff: float = 30.0
    backoff_factor: float = 1.5
    max_backoff: float = 600.0
    max_attempts: int = 12

    def fault_kinds(self) -> tuple[str, ...]:
        """The kinds legal under this configuration's stepping mode."""
        return PIPELINED_KINDS if self.pipeline_depth else SEQUENTIAL_KINDS

    def propose_window(self) -> float:
        """Seconds one propose exchange survives an unreachable site."""
        return self.rpc_timeout * (self.rpc_retries + 1)


@dataclass(frozen=True)
class Violation:
    """One invariant violation found along a trace."""

    invariant: str
    step: int
    site: str
    detail: str


@dataclass
class TraceResult:
    """Outcome of running one fault schedule through the model."""

    schedule: tuple[FaultEvent, ...]
    completed: bool
    committed: int
    violations: list[Violation]
    #: canonical machine states visited along this trace.
    states: list[tuple]
    #: observables the model commits to exactly; compared 1:1 against a
    #: live replay by `repro.verify.conformance`.
    expected: dict
    #: §7 classification per site for crash schedules (else empty).
    reconcile: dict[str, str]

    @property
    def ok(self) -> bool:
        """True when the trace violated no invariant."""
        return not self.violations


_TERMINAL = ("executed", "cancelled", "failed", "rejected")


class _Txn:
    """Server-side transaction record: state, run count, command."""

    __slots__ = ("name", "step", "state", "executions", "command")

    def __init__(self, name: str, step: int, command: tuple):
        self.name = name
        self.step = step
        self.state = "accepted"   # review always accepts in the model
        self.executions = 0
        self.command = command


class _Server:
    """One NTCP server's abstract table and metric counters."""

    __slots__ = ("name", "txns", "counters")

    def __init__(self, name: str):
        self.name = name
        self.txns: dict[str, _Txn] = {}
        self.counters = {"proposed": 0, "executed": 0, "cancelled": 0,
                         "duplicate_proposals": 0, "duplicate_executes": 0}

    def propose(self, name: str, step: int, command: tuple) -> str:
        """§3 propose: idempotent by name; returns the verdict state."""
        txn = self.txns.get(name)
        if txn is not None:
            self.counters["duplicate_proposals"] += 1
            return txn.state
        self.txns[name] = _Txn(name, step, command)
        self.counters["proposed"] += 1
        return "accepted"

    def execute(self, name: str, rules: ProtocolRules) -> _Txn:
        """§3 execute: at-most-once per name (unless the rule is broken)."""
        txn = self.txns[name]
        if txn.state == "accepted":
            txn.state = "executed"
            txn.executions += 1
            self.counters["executed"] += 1
        elif txn.state == "executed":
            if rules.dedupe_execute:
                self.counters["duplicate_executes"] += 1
            else:
                # Broken rule: the duplicate re-runs the plugin.
                txn.executions += 1
                self.counters["executed"] += 1
        return txn

    def cancel(self, name: str) -> bool:
        """§3 cancel: legal from proposed/accepted, else absorbed error."""
        txn = self.txns.get(name)
        if txn is None or txn.state in ("executed", "failed", "rejected"):
            return False
        if txn.state != "cancelled":
            txn.state = "cancelled"
            self.counters["cancelled"] += 1
        return True

    def canon(self) -> tuple:
        """Hashable canonical form for state-space dedup."""
        return (self.name, tuple(sorted(
            (t.name, t.state, t.executions) for t in self.txns.values())))


class ModelMachine:
    """Deterministic abstract execution of one fault schedule.

    Mirrors `repro.coordinator.mspsds.SimulationCoordinator`: step 0 is
    the rest measurement, steps ``1..n_steps`` commit through the
    INTEGRATE / PROPOSE / EXECUTE / COMMIT machine, faults branch the
    behaviour exactly where the real fault injector would.
    """

    def __init__(self, config: VerifyConfig,
                 schedule: tuple[FaultEvent, ...]):
        self.cfg = config
        self.rules = config.rules
        self.schedule = {ev.step: ev for ev in schedule}
        self._schedule_tuple = tuple(schedule)
        self.real = {s: _Server(s) for s in config.sites}
        self.surrogates: dict[str, _Server] = {}
        self.failed_over: set[str] = set()
        self.burned: set[str] = set()
        self.overrides: dict[tuple[int, str], str] = {}
        self.committed: list[int] = []
        self.committed_names: dict[tuple[int, str], str] = {}
        self.step_labels: dict[int, tuple[str, ...]] = {}
        self.generation = 0
        self.epoch = 0
        self.violations: list[Violation] = []
        self.states: list[tuple] = []
        self.reconcile: dict[str, str] = {}
        self.pipeline = {"speculated": 0, "hits": 0, "mispredicts": 0,
                         "drains": 0}
        #: (site, counter) pairs whose exact value the model does not
        #: commit to (timing-dependent retry fans) — excluded from the
        #: conformance comparison.
        self.uncommitted: set[tuple[str, str]] = set()
        self._aborted = False

    # -- bookkeeping ---------------------------------------------------------
    def _violate(self, invariant: str, step: int, site: str,
                 detail: str) -> None:
        self.violations.append(Violation(invariant, step, site, detail))

    def _snap(self, phase: str, step: int) -> None:
        """Record the canonical machine state after one phase."""
        self.states.append((
            step, phase, self.generation, self.epoch,
            tuple(sorted(self.failed_over)),
            tuple(self.committed),
            tuple(srv.canon() for srv in self.real.values()),
            tuple(srv.canon() for srv in
                  sorted(self.surrogates.values(), key=lambda s: s.name)),
        ))

    def _name(self, step: int, site: str) -> str:
        base = f"model-step{step:05d}-{site}"
        return self.overrides.get((step, site), base)

    def _server_for(self, site: str) -> _Server:
        if site in self.failed_over:
            return self.surrogates[site]
        return self.real[site]

    def _command(self, step: int) -> tuple:
        """The committed integrator command token for ``step``."""
        return ("cmd", step)

    # -- protocol rounds -----------------------------------------------------
    def _propose_round(self, step: int, names: dict[str, str],
                       command: tuple, fault: FaultEvent | None = None,
                       ) -> dict[str, str]:
        """One all-sites propose barrier; returns per-site verdicts."""
        verdicts = {}
        for site in self.cfg.sites:
            name = names[site]
            srv = self._server_for(site)
            txn = srv.txns.get(name)
            if txn is not None and txn.state in ("cancelled", "failed",
                                                 "rejected"):
                # Burned or dead name re-proposed: terminal verdict, the
                # step can never proceed through it.
                self._violate(
                    "name-reuse", step, site,
                    f"proposal re-used terminal name {name!r} "
                    f"(state {txn.state})")
            verdicts[site] = srv.propose(name, step, command)
            if fault is not None and fault.site == site and fault.kind in (
                    "drop_propose_reply", "dup_propose_request"):
                # Lost reply => RPC retransmission; duplicated request =>
                # cloned delivery.  Either way the server sees the name
                # again and answers idempotently.
                srv.propose(name, step, command)
        return verdicts

    def _execute_round(self, step: int, names: dict[str, str],
                       fault: FaultEvent | None = None) -> None:
        """One all-sites execute barrier with at-most-once checks."""
        for site in self.cfg.sites:
            name = names[site]
            if name in self.burned:
                self._violate("orphaned-names", step, site,
                              f"coordinator executed burned name {name!r}")
            srv = self._server_for(site)
            txn = srv.execute(name, self.rules)
            if fault is not None and fault.site == site and fault.kind in (
                    "drop_execute_reply", "dup_execute_request"):
                txn = srv.execute(name, self.rules)
            if txn.executions > 1:
                self._violate(
                    "at-most-once", step, site,
                    f"transaction {name!r} ran {txn.executions} times")
            self._check_step_executions(step, site)

    def _check_step_executions(self, step: int, site: str) -> None:
        """No *reachable* site may physically run one step twice."""
        if site in self.failed_over:
            return
        total = sum(t.executions for t in self.real[site].txns.values()
                    if t.step == step)
        if total > 1:
            self._violate(
                "at-most-once", step, site,
                f"site {site} physically ran step {step} {total} times "
                f"under distinct names")

    def _commit(self, step: int, names: dict[str, str],
                spec_hit: bool = False) -> None:
        """COMMIT: ledger the step, check freshness + labeling + order."""
        for site in self.cfg.sites:
            name = names[site]
            srv = self._server_for(site)
            txn = srv.txns.get(name)
            if txn is None or txn.state != "executed":
                self._violate("monotone-commits", step, site,
                              f"commit without execution for {name!r}")
                continue
            want = self._command(step)
            # An adopted speculation's command is equal by definition of
            # a hit (bit-exact predictor); anything else must match the
            # committed integrator command.
            if txn.command != want and not (spec_hit
                                            and txn.command[0] == "spec"
                                            and txn.command[1] == step):
                self._violate(
                    "command-freshness", step, site,
                    f"committed stale command {txn.command!r} for "
                    f"step {step} (wanted {want!r})")
            if (step, site) in self.committed_names:
                self._violate("monotone-commits", step, site,
                              f"step {step} committed twice at {site}")
            self.committed_names[(step, site)] = name
        truth = tuple(sorted(self.failed_over))
        self.step_labels[step] = truth if self.rules.label_degraded else ()
        if truth and not self.rules.label_degraded:
            self._violate(
                "degraded-labeling", step, truth[0],
                f"step {step} committed from surrogate(s) {truth} "
                f"without a degraded label")
        if step > 0:
            last = self.committed[-1] if self.committed else 0
            if step != last + 1:
                self._violate("monotone-commits", step, "-",
                              f"commit order {last} -> {step}")
            self.committed.append(step)

    # -- fault timelines -----------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        return min(self.cfg.backoff * self.cfg.backoff_factor ** (attempt - 1),
                   self.cfg.max_backoff)

    def _transient_retry_rounds(self) -> int:
        """How many policy retries a transient outage costs.

        Mirrors ``_attempt_with_policy`` arithmetic: the faulted round
        fails after the propose window; each retry re-proposes after the
        policy backoff and succeeds once an RPC retransmission lands
        after the outage lifts.  Returns the number of *failed* retry
        rounds before the successful one (>= 0).
        """
        window = self.cfg.propose_window()
        t = window  # first failure surfaces after the full RPC ladder
        failed = 0
        for attempt in range(1, self.cfg.max_attempts):
            t += self._backoff(attempt)
            # Retransmissions go out every rpc_timeout across the window;
            # the round succeeds if any lands once the link is back up.
            last_send = t + self.cfg.rpc_timeout * self.cfg.rpc_retries
            if last_send >= self.cfg.outage_duration:
                return failed
            failed += 1
            t += window
        return failed

    # -- step machines -------------------------------------------------------
    def _plain_step(self, step: int, fault: FaultEvent | None) -> None:
        """One clean (or wire-faulted) INTEGRATE...COMMIT cycle."""
        names = {s: self._name(step, s) for s in self.cfg.sites}
        self._snap("propose", step)
        self._propose_round(step, names, self._command(step), fault)
        self._snap("execute", step)
        self._execute_round(step, names, fault)
        self._commit(step, names)
        self._snap("commit", step)

    def _crash_step(self, step: int, site: str, point: str) -> None:
        """Coordinator crash at ``point`` of ``step`` + checkpoint resume.

        The first incarnation runs the abort-on-first-failure policy: a
        transient outage at ``site`` kills it after the RPC ladder, the
        abort checkpoint carries the pending names, and the resumed
        incarnation reconciles per the §7 table before re-entering the
        step loop.
        """
        names = {s: self._name(step, s) for s in self.cfg.sites}
        self._snap("propose", step)
        # The arming request reaches the site before the outage bites, so
        # every site holds the proposal (accepted); the faulted site's
        # reply is lost and the naive policy aborts.
        self._propose_round(step, names, self._command(step))
        if point == "execute":
            # All executes ran (the faulted site's plugin finished; only
            # its reply died in the outage).
            self._snap("execute", step)
            self._execute_round(step, names)
        self._aborted = True  # incarnation 1 is gone
        self._snap("abort", step)

        # -- resume: §7 reconciliation over the checkpointed pending set.
        self.generation += 1
        for s in self.cfg.sites:
            srv = self._server_for(s)
            txn = srv.txns.get(names[s])
            state = txn.state if txn is not None else None
            if state in ("proposed", "accepted"):
                srv.cancel(names[s])
                self.burned.add(names[s])
                self.reconcile[s] = "cancel"
                if self.rules.rename_after_cancel:
                    self.overrides[(step, s)] = (
                        f"{names[s]}-r{self.generation}")
                else:
                    self.overrides[(step, s)] = names[s]
            elif state == "executed":
                if self.rules.harvest_executed:
                    self.reconcile[s] = "harvest"
                else:
                    # Broken rule: cancel an executed transaction (the
                    # error is absorbed) and re-run under a fresh name.
                    srv.cancel(names[s])
                    self.burned.add(names[s])
                    self.overrides[(step, s)] = (
                        f"{names[s]}-r{self.generation}")
                    self.reconcile[s] = "cancel"
            else:
                self.reconcile[s] = "repropose"
        self._aborted = False
        self._snap("reconcile", step)

        # -- incarnation 2 re-runs the step through the idempotent paths.
        names2 = {s: self._name(step, s) for s in self.cfg.sites}
        self._propose_round(step, names2, self._command(step))
        self._snap("execute", step)
        self._execute_round(step, names2)
        self._commit(step, names2)
        self._snap("commit", step)

    def _fatal_outage_step(self, step: int, site: str) -> None:
        """Permanent site loss at ``step``'s propose: §8 surrogate swap.

        The doomed site holds the arming proposal (accepted, orphaned);
        healthy sites absorb a timing-dependent fan of duplicate
        proposals across the retry rounds — their exact count is not
        committed — and the step commits degraded from the surrogate.
        """
        names = {s: self._name(step, s) for s in self.cfg.sites}
        self._snap("propose", step)
        self._propose_round(step, names, self._command(step))
        for s in self.cfg.sites:
            if s != site:
                self.uncommitted.add((s, "duplicate_proposals"))
        # Breaker opens, the recovery budget lapses, failover activates:
        # fire-and-forget cancel is lost in the outage, the name burns
        # coordinator-side, the surrogate proposes under -f1.
        self.failed_over.add(site)
        self.burned.add(names[site])
        self.surrogates[site] = _Server(f"{site}-surrogate1")
        self.overrides[(step, site)] = f"{names[site]}-f1"
        self._snap("failover", step)
        names2 = {s: self._name(step, s) for s in self.cfg.sites}
        self._propose_round(step, names2, self._command(step))
        self._snap("execute", step)
        self._execute_round(step, names2)
        self._commit(step, names2)
        self._snap("commit", step)

    # -- pipelined machine ---------------------------------------------------
    def _spec_doom(self, issue_step: int) -> FaultEvent | None:
        """The §9 outage (if any) that will kill ``issue_step``'s round.

        The live machine commits two steps per wall-clock beat once the
        pipeline is warm (the adopted speculation's round is already
        complete when its iteration starts, so consecutive commits
        collapse onto one timestamp), which pins which round an outage
        armed on step ``m``'s first propose actually catches in flight:
        the round of the *odd* step ``E`` (``E = m`` for odd ``m``,
        ``m - 1`` for even ``m``) loses its faulted-site propose reply
        and never executes, while spec ``E + 1`` is stranded and rolled
        back.  A doomed round still gets *adopted* — adoption happens at
        commit time, before its propose ladder has died.
        """
        for event in (self.schedule.get(issue_step),
                      self.schedule.get(issue_step + 1)):
            if event is None or event.kind != "spec_outage_propose":
                continue
            # issue_step == E: odd-m outages arm on E's own propose;
            # even-m outages arm one beat later, on spec(E+1)'s.
            if event.step - issue_step in (0, 1) and issue_step % 2 == 1:
                return event
        return None

    def _run_pipelined(self) -> None:
        """The depth-1 overlapped machine (§9) over the schedule.

        A wire fault scheduled on step ``m`` hits the round that first
        carries ``m``'s messages — the speculative round for ``m >= 2``,
        the initial pending round for ``m == 1`` — matching how the
        replay arms faults on the first occurrence of the step marker.
        A ``spec_outage_propose`` on step ``m`` disrupts the round of
        the odd step ``E`` (see :meth:`_spec_doom`).
        """
        n = 1
        spec_names: dict[str, str] | None = None
        doomed: FaultEvent | None = None
        while n <= self.cfg.n_steps:
            fault = self.schedule.get(n)
            if spec_names is None:
                # Clean boundary: issue step n sequentially.
                names = {s: self._name(n, s) for s in self.cfg.sites}
                self._snap("propose", n)
                self._propose_round(n, names, self._command(n), fault)
                if doomed is None:
                    doomed = self._spec_doom(n)
            else:
                # Step n is the adopted speculation: already proposed
                # (its execute never starts if the round is doomed).
                names = spec_names
                self._snap("propose", n)
            if doomed is not None:
                self._spec_outage(n, names, doomed,
                                  pending_is_hit=spec_names is not None)
                n += 1
                spec_names = None
                doomed = None
                continue
            spec_fault = self.schedule.get(n + 1)
            next_spec: dict[str, str] | None = None
            next_doomed: FaultEvent | None = None
            if n < self.cfg.n_steps:
                # Issue step n+1 speculatively (propose + execute on the
                # wire under the predicted command; bit-exact predictor
                # means adoption is certain absent faults).  A round the
                # upcoming outage will kill proposes (the requests are
                # on the wire before the link dies) but never executes.
                self.pipeline["speculated"] += 1
                next_spec = {s: self._name(n + 1, s) for s in self.cfg.sites}
                next_doomed = self._spec_doom(n + 1)
                self._propose_round(
                    n + 1, next_spec, ("spec", n + 1, self.epoch),
                    None if next_doomed is not None else spec_fault)
            self._snap("execute", n)
            if spec_names is None:
                self._execute_round(n, names, fault)
            # an adopted speculation's execute already ran in its round
            if next_spec is not None and next_doomed is None:
                self._execute_round(n + 1, next_spec, spec_fault)
            self._commit(n, names, spec_hit=names is spec_names)
            self._snap("commit", n)
            if next_spec is not None:
                # Adoption precedes the ladder's death: a doomed round
                # still counts a hit (pinned by the live replay).
                self.pipeline["hits"] += 1
            spec_names = next_spec
            doomed = next_doomed
            n += 1

    def _spec_outage(self, step: int, names: dict[str, str],
                     event: FaultEvent, *,
                     pending_is_hit: bool = False) -> None:
        """§9 fault-under-speculation: rollback, fallback, rename.

        ``step`` is the odd step ``E`` whose in-flight round the outage
        caught (its proposes arrived everywhere; its faulted-site reply
        died; it never executed).  The disruption plays out as the live
        machine does:

        * spec ``E + 1`` (if within bounds) was issued at the arming
          instant and its proposes beat the link-down event within the
          same batch, so they arrive everywhere — at the faulted site
          the acceptance becomes a burned, inert orphan (its cancel
          dies in the outage).
        * rollback (§9): fire-and-forget cancels land at the healthy
          sites only (the faulted link is down), the names are burned,
          and the step is renamed ``-s<epoch>``;
        * the fault policy re-runs step ``E``: each failed retry round
          re-proposes at the healthy sites; the succeeding round's
          faulted-site propose lands via an RPC retransmission after
          the outage lifts (every proposal already exists -> duplicate
          proposals everywhere, never a duplicate execute) and the
          round executes fresh.
        """
        site = event.site
        command = (("spec", step, self.epoch) if pending_is_hit
                   else self._command(step))
        if step < self.cfg.n_steps:
            self.pipeline["speculated"] += 1
            spec_names = {s: self._name(step + 1, s) for s in self.cfg.sites}
            # The spec round's proposes beat the link-down event within
            # the arming batch, so they arrive everywhere — for even-m
            # outages the faulted-site propose *is* the arming message.
            self._propose_round(step + 1, spec_names,
                                ("spec", step + 1, self.epoch))
            self._snap("spec-fault", step)
            self.epoch += 1
            self.pipeline["drains"] += 1
            for s in self.cfg.sites:
                if s != site:
                    self._server_for(s).cancel(spec_names[s])
                self.burned.add(spec_names[s])
                if self.rules.rollback_renames:
                    self.overrides[(step + 1, s)] = (
                        f"{spec_names[s]}-s{self.epoch}")
                else:
                    self.overrides[(step + 1, s)] = spec_names[s]
            self._snap("rollback", step)

        failed_rounds = self._transient_retry_rounds()
        for s in self.cfg.sites:
            srv = self._server_for(s)
            for _ in range(failed_rounds if s != site else 0):
                srv.propose(names[s], step, command)
        self._propose_round(step, names, command)
        self._snap("execute", step)
        self._execute_round(step, names)
        self._commit(step, names, spec_hit=pending_is_hit)
        self._snap("commit", step)

    # -- final checks + observables ------------------------------------------
    def _final_checks(self) -> None:
        """Quiescence invariants: orphans, completion, ledger totality."""
        if len(self.committed) != self.cfg.n_steps:
            self._violate(
                "completion", len(self.committed) + 1, "-",
                f"run committed {len(self.committed)}/{self.cfg.n_steps} "
                f"steps under a rideable fault schedule")
        for site, srv in self.real.items():
            reachable = site not in self.failed_over
            for txn in srv.txns.values():
                if txn.state in _TERMINAL:
                    continue
                if txn.name in self.burned or not reachable:
                    continue  # burned-and-inert or unreachable: allowed
                if self.committed_names.get((txn.step, site)) == txn.name:
                    continue
                self._violate(
                    "orphaned-names", txn.step, site,
                    f"live non-terminal transaction {txn.name!r} "
                    f"({txn.state}) at reachable site")
        for step in [0, *range(1, self.cfg.n_steps + 1)]:
            if step > len(self.committed):
                break
            for site in self.cfg.sites:
                if (step, site) not in self.committed_names:
                    self._violate(
                        "monotone-commits", step, site,
                        f"committed step {step} has no ledgered "
                        f"execution at {site}")

    def _expected(self) -> dict:
        """The observables the model commits to for a live replay."""
        per_site = {}
        for site in self.cfg.sites:
            counters = dict(self.real[site].counters)
            if site in self.surrogates:
                surrogate = dict(self.surrogates[site].counters)
            else:
                surrogate = None
            for key in list(counters):
                if (site, key) in self.uncommitted:
                    counters[key] = None
            per_site[site] = {"real": counters, "surrogate": surrogate}
        return {
            "completed": len(self.committed) == self.cfg.n_steps,
            "committed_steps": list(self.committed),
            "generation": self.generation,
            "degraded": {str(step): list(labels)
                         for step, labels in self.step_labels.items()
                         if labels},
            "sites": per_site,
            "reconcile": dict(self.reconcile),
            "pipeline": dict(self.pipeline) if self.cfg.pipeline_depth
                        else None,
        }

    def run(self) -> TraceResult:
        """Execute the schedule; returns the trace's full outcome."""
        self._snap("init", 0)
        # Step 0: rest measurement through the same machine (no faults
        # scheduled at step 0 — there is no checkpoint to resume from).
        names0 = {s: self._name(0, s) for s in self.cfg.sites}
        self._propose_round(0, names0, self._command(0))
        self._execute_round(0, names0)
        self._commit(0, names0)
        self._snap("commit", 0)
        if self.cfg.pipeline_depth:
            self._run_pipelined()
        else:
            for step in range(1, self.cfg.n_steps + 1):
                ev = self.schedule.get(step)
                if ev is not None and ev.kind in ("crash_propose",
                                                  "crash_execute"):
                    self._crash_step(step, ev.site,
                                     ev.kind.split("_", 1)[1])
                elif ev is not None and ev.kind == "fatal_outage_propose":
                    self._fatal_outage_step(step, ev.site)
                else:
                    self._plain_step(step, ev)
        self._final_checks()
        return TraceResult(
            schedule=self._schedule_tuple,
            completed=len(self.committed) == self.cfg.n_steps,
            committed=len(self.committed),
            violations=list(self.violations),
            states=list(self.states),
            expected=self._expected(),
            reconcile=dict(self.reconcile),
        )
