"""CLI: ``python -m repro.verify`` — the bounded protocol verifier.

Explores every fault schedule within the bounded configuration at both
pipeline depths, runs the mutation regression (each deliberately broken
protocol rule must be caught), replays a sampled trace per fault kind
through a live coordinator deployment (any divergence fails), and emits
a schema-validated ``repro.verify/v1`` report.

Exit status: 0 when every exploration is clean, every mutation caught
and every replay conformant; 1 otherwise; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.verify.explorer import ExplorationResult, explore
from repro.verify.conformance import run_conformance
from repro.verify.model import ProtocolRules, VerifyConfig
from repro.verify.report import build_report, ensure_valid

#: every rule the mutation regression seeds a break into.
MUTATION_RULES = ("dedupe_execute", "rename_after_cancel",
                  "harvest_executed", "rollback_renames", "label_degraded")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Exhaustive bounded NTCP protocol verification: "
                    "state-space exploration, mutation regression and "
                    "live conformance replay.")
    parser.add_argument("--sites", default="uiuc,cu",
                        help="comma-separated site names (default: uiuc,cu)")
    parser.add_argument("--steps", type=int, default=4,
                        help="committed steps per trace (default: 4)")
    parser.add_argument("--max-faults", type=int, default=2,
                        help="fault events per schedule (default: 2)")
    parser.add_argument("--depth", choices=("0", "1", "all"), default="all",
                        help="pipeline depth(s) to explore (default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI bound: 2 steps, 1 fault per "
                             "schedule, both depths")
    parser.add_argument("--no-mutations", action="store_true",
                        help="skip the seeded mutation regression")
    parser.add_argument("--no-conformance", action="store_true",
                        help="skip the live conformance replay")
    parser.add_argument("--mutate", metavar="RULE", choices=MUTATION_RULES,
                        help="explore with one protocol rule deliberately "
                             "broken and report what the checker caught")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--output", metavar="PATH",
                        help="also write the JSON report to PATH")
    return parser


def _configs(args: argparse.Namespace,
             rules: ProtocolRules) -> list[VerifyConfig]:
    sites = tuple(s for s in args.sites.split(",") if s)
    n_steps = 2 if args.smoke else args.steps
    max_faults = 1 if args.smoke else args.max_faults
    depths = (0, 1) if args.depth == "all" else (int(args.depth),)
    return [VerifyConfig(sites=sites, n_steps=n_steps, max_faults=max_faults,
                         pipeline_depth=depth, rules=rules)
            for depth in depths]


def _run_mutations(args: argparse.Namespace) -> list[dict]:
    mutations = []
    for rule in MUTATION_RULES:
        caught: set[str] = set()
        for config in _configs(args, ProtocolRules().mutate(rule)):
            result = explore(config)
            caught.update(v.invariant for _, v in result.violations)
        mutations.append({"rule": rule, "caught": bool(caught),
                          "violations": sorted(caught)})
    return mutations


def _merge_conformance(blocks: list[dict]) -> dict:
    merged = {"traces_replayed": 0, "divergences": [], "replays": []}
    for block in blocks:
        merged["traces_replayed"] += block["traces_replayed"]
        merged["divergences"].extend(block["divergences"])
        merged["replays"].extend(block["replays"])
    return merged


def _render_text(report: dict) -> str:
    lines = []
    for record in report["explorations"]:
        lines.append(
            f"explored sites={','.join(record['sites'])} "
            f"steps={record['n_steps']} depth={record['pipeline_depth']} "
            f"max_faults={record['max_faults']}: "
            f"{record['traces']} traces, "
            f"{record['states_explored']} states, "
            f"{len(record['violations'])} violations")
        for violation in record["violations"]:
            lines.append(f"  VIOLATION [{violation['invariant']}] "
                         f"step {violation['step']} site "
                         f"{violation['site']}: {violation['detail']}")
    for mutation in report.get("mutations", ()):
        status = ("caught -> " + ",".join(mutation["violations"])
                  if mutation["caught"] else "NOT CAUGHT")
        lines.append(f"mutation {mutation['rule']}: {status}")
    conformance = report.get("conformance")
    if conformance is not None:
        lines.append(f"conformance: {conformance['traces_replayed']} traces "
                     f"replayed, {len(conformance['divergences'])} "
                     f"divergences")
        for divergence in conformance["divergences"]:
            lines.append(f"  DIVERGENCE [{divergence['kind']}] "
                         f"{divergence['path']}: "
                         f"model={divergence['model']} "
                         f"live={divergence['live']}")
    lines.append("verify: OK" if report["ok"] else "verify: FAILED")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)

    if args.mutate:
        caught: set[str] = set()
        for config in _configs(args, ProtocolRules().mutate(args.mutate)):
            result = explore(config)
            caught.update(v.invariant for _, v in result.violations)
        print(f"mutation {args.mutate}: "
              + (f"caught -> {','.join(sorted(caught))}" if caught
                 else "NOT CAUGHT"))
        return 0 if caught else 1

    explorations: list[ExplorationResult] = []
    conformance_blocks: list[dict] = []
    for config in _configs(args, ProtocolRules()):
        result = explore(config)
        explorations.append(result)
        if not args.no_conformance:
            conformance_blocks.append(run_conformance(result))

    mutations = None if args.no_mutations else _run_mutations(args)
    conformance = (None if args.no_conformance
                   else _merge_conformance(conformance_blocks))
    report = ensure_valid(build_report(explorations, mutations=mutations,
                                       conformance=conformance))

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_render_text(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
