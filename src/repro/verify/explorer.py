"""Exhaustive bounded exploration of the protocol state space.

The model (`repro.verify.model`) is deterministic between fault points,
so the bounded state space is exactly the set of machine states reachable
under every fault schedule within the bounds: at most one fault event per
step, at most ``max_faults`` events per schedule, and at most one
*structural* event (crash / fatal outage / speculation outage) per
schedule — resume, failover and rollback each restructure the rest of
the run, so their pairwise products explode without adding reachable
protocol states.

`explore` enumerates every such schedule, runs each through the
:class:`~repro.verify.model.ModelMachine`, deduplicates the canonical
states encountered, and collects every invariant violation with the
schedule that produced it.  The result carries the full per-trace
outcomes so the conformance layer can sample traces for live replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product

from repro.verify.model import (
    STRUCTURAL_KINDS,
    FaultEvent,
    ModelMachine,
    TraceResult,
    VerifyConfig,
    Violation,
)

__all__ = ["ExplorationResult", "enumerate_schedules", "explore"]


@dataclass
class ExplorationResult:
    """Everything one bounded exploration produced."""

    config: VerifyConfig
    traces: list[TraceResult]
    states_explored: int
    violations: list[tuple[tuple[FaultEvent, ...], Violation]]

    @property
    def ok(self) -> bool:
        """True when no trace violated an invariant."""
        return not self.violations

    def traces_by_kind(self) -> dict[str, TraceResult]:
        """The first single-fault trace for each kind (plus ``clean``).

        Deterministic (enumeration order), so the conformance sample is
        stable run-to-run.
        """
        picked: dict[str, TraceResult] = {}
        for trace in self.traces:
            if not trace.schedule:
                picked.setdefault("clean", trace)
            elif len(trace.schedule) == 1:
                picked.setdefault(trace.schedule[0].kind, trace)
        return picked


def enumerate_schedules(config: VerifyConfig,
                        ) -> list[tuple[FaultEvent, ...]]:
    """Every fault schedule within the configuration's bounds.

    Schedules are tuples of :class:`FaultEvent` ordered by step; steps
    range over ``1..n_steps`` (step 0 is initialization — there is no
    checkpoint to resume from, so faulting it proves nothing the step-1
    events don't).  ``spec_outage_propose`` additionally requires step
    >= 2 (step 1 is never speculative) and a fault-free predecessor
    step (its outage spans both rounds).
    """
    kinds = config.fault_kinds()
    events_per_step: dict[int, list[FaultEvent]] = {}
    for step in range(1, config.n_steps + 1):
        events = []
        for kind, site in product(kinds, config.sites):
            if kind == "spec_outage_propose" and step < 2:
                continue
            events.append(FaultEvent(step=step, kind=kind, site=site))
        events_per_step[step] = events

    schedules: list[tuple[FaultEvent, ...]] = [()]
    steps = sorted(events_per_step)
    for count in range(1, config.max_faults + 1):
        for step_combo in combinations(steps, count):
            for combo in product(*(events_per_step[s] for s in step_combo)):
                structural = [ev for ev in combo
                              if ev.kind in STRUCTURAL_KINDS]
                if len(structural) > 1:
                    continue
                if any(ev.kind == "spec_outage_propose"
                       and any(other.step == ev.step - 1 for other in combo)
                       for ev in combo):
                    continue
                schedules.append(tuple(combo))
    return schedules


def explore(config: VerifyConfig) -> ExplorationResult:
    """Run every bounded schedule through the model; dedup states."""
    seen: set[tuple] = set()
    traces: list[TraceResult] = []
    violations: list[tuple[tuple[FaultEvent, ...], Violation]] = []
    for schedule in enumerate_schedules(config):
        trace = ModelMachine(config, schedule).run()
        traces.append(trace)
        seen.update(trace.states)
        for violation in trace.violations:
            violations.append((schedule, violation))
    return ExplorationResult(config=config, traces=traces,
                             states_explored=len(seen),
                             violations=violations)
