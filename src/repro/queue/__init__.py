"""Durable experiment ingress: journaled queue, fencing, crash recovery.

The robustness layer the MOST-era grid never had: experiment submissions
are write-ahead journaled through the data repository
(``repro.queue/v1``), scheduler incarnations own the fleet through
monotone fencing epochs, and a fleet-scheduler crash is survived by
replaying the journal and redelivering claimed-but-unterminated work
through the §7 checkpoint/resume machinery — at-least-once delivery,
exactly-once execution, bit-exact histories.

Entry points:

* :class:`ExperimentQueue` + a journal store — submit / claim / terminal
  over the write-ahead log;
* :class:`DurableFleetScheduler` — one crash-recoverable scheduler
  incarnation over a fleet grid;
* :func:`run_durable_campaign` — submissions in, crashes on cue,
  :class:`CampaignResult` out;
* :class:`FencingAuthority` and the fenced wrappers — the zombie-write
  refusal fabric shared with :mod:`repro.fleet.pool`.
"""

from repro.queue.fencing import (
    FencedCheckpointStore,
    FencedNTCPClient,
    FencingAuthority,
    FencingError,
)
from repro.queue.ingress import ExperimentQueue, QueueSubmission
from repro.queue.journal import (
    ENTRY_KINDS,
    QUEUE_SCHEMA_ID,
    TERMINAL_STATUSES,
    FileJournalStore,
    InMemoryJournalStore,
    JournalStoreBase,
    QueueSchemaError,
    RepositoryJournalStore,
    build_entry,
    validate_queue_entry,
)
from repro.queue.observe import QUEUE_SDE, QueueStatusService
from repro.queue.scheduler import (
    CampaignResult,
    DurableFleetScheduler,
    QueueOutcome,
    attach_durable_repository,
    run_durable_campaign,
)

__all__ = [
    "QUEUE_SCHEMA_ID",
    "ENTRY_KINDS",
    "TERMINAL_STATUSES",
    "QueueSchemaError",
    "validate_queue_entry",
    "build_entry",
    "JournalStoreBase",
    "InMemoryJournalStore",
    "FileJournalStore",
    "RepositoryJournalStore",
    "FencingAuthority",
    "FencingError",
    "FencedCheckpointStore",
    "FencedNTCPClient",
    "ExperimentQueue",
    "QueueSubmission",
    "QUEUE_SDE",
    "QueueStatusService",
    "DurableFleetScheduler",
    "QueueOutcome",
    "CampaignResult",
    "attach_durable_repository",
    "run_durable_campaign",
]
