"""The durable experiment ingress queue over the write-ahead journal.

:class:`ExperimentQueue` is the in-memory *view* a scheduler incarnation
holds over the persistent journal: it replays entries into submission /
claim / terminal state, appends new entries for every state change, and
enforces the two delivery guarantees the tentpole promises:

* **at-least-once redelivery** — a submission with a claim but no
  terminal entry is *outstanding*; every fresh incarnation re-claims it
  (with an incremented attempt count) until some incarnation lands a
  terminal entry;
* **exactly-once execution** — dedupe on the caller-supplied submission
  id makes resubmission idempotent, fencing epochs make stale claims and
  terminals impossible to land, and disjoint-site redelivery (the claim
  records carry granted site names, and recovery leases *avoid* them)
  keeps NTCP transaction names collision-free, so ``duplicate_executes``
  stays zero across any number of crashes.

Replay applies the journal's own fencing discipline: entries appear in
sequence order, and a claim or terminal whose epoch is older than the
newest epoch entry *preceding it in the log* is void — it was a zombie
write that raced the in-memory validator — and is counted, never applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.queue.fencing import FencingAuthority
from repro.queue.journal import JournalStoreBase
from repro.util.errors import ConfigurationError

__all__ = ["ExperimentQueue", "QueueSubmission"]


@dataclass(frozen=True)
class QueueSubmission:
    """One caller-submitted experiment, keyed by ``submission_id``.

    The submission id is the **caller's** idempotency key: submitting the
    same id twice is one logical submission (the second submit returns
    the journaled first).  ``run_id`` defaults to the submission id.
    """

    submission_id: str
    tenant: str
    run_id: str = ""
    n_steps: int = 25
    n_sites: int = 1
    motion_scale: float = 1.0
    checkpoint_every: int = 0

    def body(self) -> dict[str, Any]:
        """The journal ``submit`` body for this submission."""
        return {"submission_id": self.submission_id, "tenant": self.tenant,
                "run_id": self.run_id or self.submission_id,
                "n_steps": self.n_steps, "n_sites": self.n_sites,
                "motion_scale": float(self.motion_scale),
                "checkpoint_every": self.checkpoint_every}

    @classmethod
    def from_body(cls, body: dict[str, Any]) -> "QueueSubmission":
        """Rebuild a submission from a journaled ``submit`` body."""
        return cls(submission_id=body["submission_id"],
                   tenant=body["tenant"], run_id=body["run_id"],
                   n_steps=int(body["n_steps"]),
                   n_sites=int(body["n_sites"]),
                   motion_scale=float(body["motion_scale"]),
                   checkpoint_every=int(body["checkpoint_every"]))


class ExperimentQueue:
    """Journal-backed ingress queue: submit, claim, terminal, replay.

    All mutating operations are kernel processes (``yield from`` them) —
    they append to the journal store, which may be a multi-hop repository
    write.  ``claim`` and ``mark_terminal`` validate the caller's fencing
    epoch against the shared :class:`~repro.queue.fencing.FencingAuthority`
    before appending, so a zombie scheduler is refused at the queue door.
    """

    def __init__(self, kernel: Any, store: JournalStoreBase,
                 authority: FencingAuthority):
        self.kernel = kernel
        self.store = store
        self.authority = authority
        #: submission_id -> submit body, in journal order
        self._submissions: dict[str, dict] = {}
        #: submission_id -> list of applied claim bodies
        self._claims: dict[str, list[dict]] = {}
        #: submission_id -> applied terminal body
        self._terminals: dict[str, dict] = {}
        #: stale-epoch entries voided during replay (zombie writes that
        #: raced the in-memory validator; never applied)
        self.voided: list[dict] = []
        self._replayed = False
        telemetry = kernel.telemetry
        self._g_depth = telemetry.gauge("queue.ingress.depth")
        self._c_submitted = telemetry.counter("queue.ingress.submitted")
        self._c_deduped = telemetry.counter("queue.ingress.deduped")
        self._c_claims = telemetry.counter("queue.ingress.claims")
        self._c_redeliveries = telemetry.counter(
            "queue.ingress.redeliveries")
        self._c_terminals = telemetry.counter("queue.ingress.terminals")

    # -- replay --------------------------------------------------------------
    def recover(self):
        """Kernel process: rebuild queue state from the full journal.

        Resets in-memory state, replays every entry in sequence order,
        fast-forwards the fencing authority to the highest journaled
        epoch, and voids any claim/terminal that a newer epoch entry
        precedes in the log.  Returns ``{"entries", "voided"}``.
        """
        entries = yield from self.store.replay()
        self._submissions = {}
        self._claims = {}
        self._terminals = {}
        self.voided = []
        running_epoch = 0
        for entry in entries:
            kind = entry["kind"]
            body = entry["body"]
            if kind == "submit":
                self._submissions.setdefault(body["submission_id"], body)
            elif kind == "epoch":
                running_epoch = max(running_epoch, int(body["epoch"]))
                self.authority.observe(int(body["epoch"]),
                                       body["scheduler_id"])
            elif int(body["epoch"]) < running_epoch:
                self.voided.append(entry)
            elif kind == "claim":
                self._claims.setdefault(body["submission_id"],
                                        []).append(body)
            else:  # terminal
                self._terminals.setdefault(body["submission_id"], body)
        self._g_depth.set(self.depth())
        self.kernel.emit("queue", "journal.replayed", entries=len(entries),
                         voided=len(self.voided),
                         outstanding=self.depth())
        self._replayed = True
        return {"entries": len(entries), "voided": len(self.voided)}

    # -- ingress -------------------------------------------------------------
    def submit(self, submission: QueueSubmission):
        """Kernel process: journal one submission; idempotent by id.

        A resubmitted id returns the originally journaled body without
        appending — the caller's retry after a lost acknowledgment is
        absorbed, which is what makes the queue's delivery *exactly-once*
        from the submitter's point of view.
        """
        body = submission.body()
        sid = body["submission_id"]
        existing = self._submissions.get(sid)
        if existing is not None:
            self._c_deduped.inc()
            self.kernel.emit("queue", "submit.deduped", submission_id=sid)
            return dict(existing)
        yield from self.store.append("submit", body, time=self.kernel.now)
        self._submissions[sid] = body
        self._c_submitted.inc()
        self._g_depth.set(self.depth())
        self.kernel.emit("queue", "submit.accepted", submission_id=sid,
                         tenant=body["tenant"], run_id=body["run_id"])
        return dict(body)

    def register_scheduler(self, scheduler_id: str):
        """Kernel process: grant and journal a new fencing epoch."""
        epoch = self.authority.register(scheduler_id)
        yield from self.store.append(
            "epoch", {"epoch": epoch, "scheduler_id": scheduler_id},
            time=self.kernel.now)
        return epoch

    def claim(self, submission_id: str, epoch: int, sites):
        """Kernel process: journal one claim; returns the attempt number.

        ``sites`` are the lease's granted site names — recorded so a
        later redelivery can lease *around* them (disjoint-site recovery,
        the zero-duplicate-executes guarantee).  Attempt 2 and above is a
        redelivery.
        """
        if submission_id not in self._submissions:
            raise ConfigurationError(
                f"cannot claim unknown submission {submission_id!r}")
        self.authority.validate(epoch, "queue.claim")
        attempt = len(self._claims.get(submission_id, ())) + 1
        body = {"submission_id": submission_id, "epoch": epoch,
                "attempt": attempt, "sites": list(sites)}
        yield from self.store.append("claim", body, time=self.kernel.now)
        self._claims.setdefault(submission_id, []).append(body)
        self._c_claims.inc()
        if attempt > 1:
            self._c_redeliveries.inc()
        self.kernel.emit("queue", "claim.journaled",
                         submission_id=submission_id, epoch=epoch,
                         attempt=attempt, sites=list(sites))
        return attempt

    def mark_terminal(self, submission_id: str, epoch: int, *,
                      status: str, steps: int):
        """Kernel process: journal a terminal state for one submission."""
        if submission_id not in self._submissions:
            raise ConfigurationError(
                f"cannot terminate unknown submission {submission_id!r}")
        self.authority.validate(epoch, "queue.terminal")
        body = {"submission_id": submission_id, "epoch": epoch,
                "status": status, "steps": int(steps)}
        yield from self.store.append("terminal", body, time=self.kernel.now)
        self._terminals.setdefault(submission_id, body)
        self._c_terminals.inc()
        self._g_depth.set(self.depth())
        self.kernel.emit("queue", "terminal.journaled",
                         submission_id=submission_id, epoch=epoch,
                         status=status, steps=steps)
        return body

    # -- queries -------------------------------------------------------------
    def outstanding(self) -> list[QueueSubmission]:
        """Submissions without a terminal entry, in submit order."""
        return [QueueSubmission.from_body(body)
                for sid, body in self._submissions.items()
                if sid not in self._terminals]

    def depth(self) -> int:
        """Number of outstanding submissions."""
        return sum(1 for sid in self._submissions
                   if sid not in self._terminals)

    def attempts(self, submission_id: str) -> int:
        """Applied claim count for one submission."""
        return len(self._claims.get(submission_id, ()))

    def redeliveries(self) -> int:
        """Total claims beyond each submission's first."""
        return sum(max(0, len(claims) - 1)
                   for claims in self._claims.values())

    def claimed_sites(self, submission_id: str) -> frozenset:
        """Every site any applied claim of this submission ever held.

        The redelivery avoid-set: the dead incarnations may have executed
        NTCP transactions on these sites under this run's names, so a
        recovery lease must not include them.
        """
        names: set[str] = set()
        for claim in self._claims.get(submission_id, ()):
            names.update(claim["sites"])
        return frozenset(names)

    def terminal(self, submission_id: str) -> dict | None:
        """The applied terminal body for one submission, or ``None``."""
        body = self._terminals.get(submission_id)
        return dict(body) if body is not None else None

    def stats(self) -> dict[str, Any]:
        """The queue's headline numbers (published as SDE ``queue.status``)."""
        completed = sum(1 for t in self._terminals.values()
                        if t["status"] == "completed")
        return {"time": self.kernel.now,
                "submitted": len(self._submissions),
                "outstanding": self.depth(),
                "claims": sum(len(c) for c in self._claims.values()),
                "redeliveries": self.redeliveries(),
                "completed": completed,
                "failed": len(self._terminals) - completed,
                "voided": len(self.voided),
                "epoch": self.authority.current_epoch,
                "refusals": len(self.authority.refusals)}
