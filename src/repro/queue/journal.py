"""The experiment queue's write-ahead journal (``repro.queue/v1``).

Every durable fact about the ingress queue is one appended journal entry:
a caller *submitted* an experiment (keyed by its own submission id, the
dedupe key), a scheduler incarnation *registered* a fencing epoch, an
incarnation *claimed* a submission onto leased sites, a claimed run
reached a *terminal* state.  Queue state is never stored — it is always
reconstructed by replaying the journal in sequence order, which is what
makes a fleet-scheduler crash survivable: the successor replays, sees
claimed-but-unterminated submissions, and redelivers them.

Entries are versioned, hand-rolled-schema documents exactly like the
checkpoint (``repro.checkpoint/v1``) and telemetry schemas: ~100 lines of
standard-library checks with JSON-path error messages, run on every
append *and* every replay.

Three stores share one generator-shaped API (``append`` / ``replay``):

* :class:`InMemoryJournalStore` — unit tests and fast benchmarks;
* :class:`RepositoryJournalStore` — the real path: each entry is staged,
  moved to the repository host over a transport, and registered with NFMS
  under ``queue/<name>/<seq>.json`` (the Allcock et al. discipline again:
  durable coordination state belongs in the data repository);
* :class:`FileJournalStore` — a JSONL file on the local disk, for the
  ``repro queue`` CLI where no simulated repository exists.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.daq.filestore import StagingStore
from repro.net.retry import RetryPolicy
from repro.net.rpc import RpcClient
from repro.ogsi.handle import GridServiceHandle
from repro.repository.transport import Transport
from repro.util.errors import ConfigurationError, ProtocolError, ReproError

QUEUE_SCHEMA_ID = "repro.queue/v1"

#: journal entry vocabulary, in lifecycle order
ENTRY_KINDS = ("submit", "epoch", "claim", "terminal")
#: terminal statuses a claim can reach
TERMINAL_STATUSES = ("completed", "failed")


class QueueSchemaError(ReproError):
    """A queue journal entry does not match ``repro.queue/v1``."""


def _fail(path: str, message: str) -> None:
    raise QueueSchemaError(f"{path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        _fail(path, message)


def _check_str(value: Any, path: str) -> None:
    _require(isinstance(value, str) and value, path,
             "must be a non-empty string")


def _check_int(value: Any, path: str, minimum: int = 0) -> None:
    _require(isinstance(value, int) and not isinstance(value, bool),
             path, f"expected an integer, got {type(value).__name__}")
    _require(value >= minimum, path, f"must be >= {minimum}, got {value}")


def _check_number(value: Any, path: str) -> None:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             path, f"expected a number, got {type(value).__name__}")


def _check_submit_body(body: dict, path: str) -> None:
    _check_str(body.get("submission_id"), f"{path}.submission_id")
    _check_str(body.get("tenant"), f"{path}.tenant")
    _check_str(body.get("run_id"), f"{path}.run_id")
    _check_int(body.get("n_steps"), f"{path}.n_steps", minimum=1)
    _check_int(body.get("n_sites"), f"{path}.n_sites", minimum=1)
    _check_number(body.get("motion_scale"), f"{path}.motion_scale")
    _require(body["motion_scale"] > 0, f"{path}.motion_scale",
             "must be positive")
    _check_int(body.get("checkpoint_every"), f"{path}.checkpoint_every")


def _check_epoch_body(body: dict, path: str) -> None:
    _check_int(body.get("epoch"), f"{path}.epoch", minimum=1)
    _check_str(body.get("scheduler_id"), f"{path}.scheduler_id")


def _check_claim_body(body: dict, path: str) -> None:
    _check_str(body.get("submission_id"), f"{path}.submission_id")
    _check_int(body.get("epoch"), f"{path}.epoch", minimum=1)
    _check_int(body.get("attempt"), f"{path}.attempt", minimum=1)
    sites = body.get("sites")
    _require(isinstance(sites, list) and sites, f"{path}.sites",
             "must be a non-empty list of site names")
    for i, site in enumerate(sites):
        _check_str(site, f"{path}.sites[{i}]")


def _check_terminal_body(body: dict, path: str) -> None:
    _check_str(body.get("submission_id"), f"{path}.submission_id")
    _check_int(body.get("epoch"), f"{path}.epoch", minimum=1)
    _require(body.get("status") in TERMINAL_STATUSES, f"{path}.status",
             f"must be one of {TERMINAL_STATUSES}, got {body.get('status')!r}")
    _check_int(body.get("steps"), f"{path}.steps")


_BODY_CHECKS = {"submit": _check_submit_body, "epoch": _check_epoch_body,
                "claim": _check_claim_body, "terminal": _check_terminal_body}


def validate_queue_entry(payload: Any) -> None:
    """One journal entry.

    Shape::

        {"schema": "repro.queue/v1", "seq": 7, "time": 12.5,
         "kind": "submit" | "epoch" | "claim" | "terminal",
         "body": {kind-specific fields}}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == QUEUE_SCHEMA_ID, "$.schema",
             f"expected {QUEUE_SCHEMA_ID!r}, got {payload.get('schema')!r}")
    _check_int(payload.get("seq"), "$.seq", minimum=1)
    _check_number(payload.get("time"), "$.time")
    kind = payload.get("kind")
    _require(kind in ENTRY_KINDS, "$.kind",
             f"must be one of {ENTRY_KINDS}, got {kind!r}")
    body = payload.get("body")
    _require(isinstance(body, dict), "$.body", "body must be an object")
    _BODY_CHECKS[kind](body, "$.body")


def build_entry(*, seq: int, time: float, kind: str, body: dict) -> dict:
    """Assemble and validate one journal entry."""
    entry = {"schema": QUEUE_SCHEMA_ID, "seq": int(seq),
             "time": float(time), "kind": kind, "body": dict(body)}
    validate_queue_entry(entry)
    return entry


class JournalStoreBase:
    """Shared journal API: generator-shaped ``append`` and ``replay``.

    ``append(kind, body, time)`` assigns the next sequence number,
    validates, persists, and returns the stamped entry; ``replay()``
    returns every entry in ascending sequence order.  Both are kernel
    processes (``yield from`` them) even where a concrete store completes
    synchronously, so callers never care which store they hold.
    """

    def append(self, kind: str, body: dict, *, time: float):
        raise NotImplementedError

    def replay(self):
        raise NotImplementedError


class InMemoryJournalStore(JournalStoreBase):
    """Journal kept as JSON strings in memory (tests, fast benchmarks).

    Entries still pass full schema validation and a JSON round-trip on
    append, so anything that works here works against the repository
    store.
    """

    def __init__(self):
        self._entries: list[str] = []

    def append(self, kind: str, body: dict, *, time: float):
        entry = build_entry(seq=len(self._entries) + 1, time=time,
                            kind=kind, body=body)
        self._entries.append(json.dumps(entry, sort_keys=True))
        return entry
        yield  # pragma: no cover - generator shape, parity with repo store

    def replay(self):
        entries = [json.loads(text) for text in self._entries]
        for entry in entries:
            validate_queue_entry(entry)
        return entries
        yield  # pragma: no cover - generator shape, parity with repo store


class FileJournalStore(JournalStoreBase):
    """Journal as a JSONL file on the local filesystem (the CLI path).

    One validated entry per line, appended with a flush per write.  This
    is the only store that outlives the process — ``repro queue submit``
    runs append, exits, and a later ``repro queue drain`` replays the
    same file into a simulated campaign.
    """

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        self._next_seq: int | None = None

    def _scan(self) -> int:
        """Highest persisted seq (0 for a fresh journal)."""
        if not self.path.exists():
            return 0
        last = 0
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise QueueSchemaError(
                    f"{self.path}: corrupt journal line: {exc}") from exc
            validate_queue_entry(entry)
            if entry["seq"] <= last:
                raise QueueSchemaError(
                    f"{self.path}: seq {entry['seq']} not ascending")
            last = entry["seq"]
        return last

    def append(self, kind: str, body: dict, *, time: float):
        if self._next_seq is None:
            self._next_seq = self._scan() + 1
        entry = build_entry(seq=self._next_seq, time=time, kind=kind,
                            body=body)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._next_seq += 1
        return entry
        yield  # pragma: no cover - generator shape, parity with repo store

    def replay(self):
        entries = []
        if self.path.exists():
            for line in self.path.read_text().splitlines():
                if not line.strip():
                    continue
                entry = json.loads(line)
                validate_queue_entry(entry)
                entries.append(entry)
        return entries
        yield  # pragma: no cover - generator shape, parity with repo store


class RepositoryJournalStore(JournalStoreBase):
    """Journal entries as logical files in the central data repository.

    Append: serialize → stage on ``host`` → move to ``repo_host`` with the
    configured transport → ``registerFile`` with NFMS under
    ``queue/<name>/<seq:06d>.json``.  Replay: ``listFiles`` by prefix,
    ``negotiateTransfer`` + pull per entry, parse and re-validate.

    Every repository hop runs under ``retry`` (a
    :class:`~repro.net.retry.RetryPolicy`), so a bounded repository outage
    during a submit or claim delays the append instead of losing it —
    at-least-once delivery starts at the journal.
    """

    def __init__(self, *, name: str, host: str, repo_host: str,
                 repo_store: StagingStore, transport: Transport,
                 rpc: RpcClient, nfms: GridServiceHandle,
                 staging: StagingStore | None = None,
                 retry: RetryPolicy | None = None):
        if not name:
            raise ConfigurationError("a repository journal needs a name")
        self.name = name
        self.host = host
        self.repo_host = repo_host
        self.repo_store = repo_store
        self.transport = transport
        self.rpc = rpc
        self.nfms = nfms
        self.kernel = transport.kernel
        self.staging = staging or StagingStore(name=f"{host}-queue-journal")
        self.retry = retry or RetryPolicy(max_attempts=5, base_delay=2.0,
                                          factor=2.0, max_delay=60.0,
                                          jitter=0.25)
        self.appended = 0
        self.replayed = 0
        self._fetches = 0
        self._next_seq: int | None = None

    @property
    def _prefix(self) -> str:
        return f"queue/{self.name}/"

    def _logical(self, seq: int) -> str:
        return f"{self._prefix}{seq:06d}.json"

    def _nfms_call(self, operation: str, params: dict):
        reply = yield from self.retry.call(
            self.kernel,
            lambda: self.rpc.call(
                self.nfms.host, self.nfms.port, "invoke",
                {"service_id": self.nfms.service_id, "operation": operation,
                 "params": params}),
            key=f"queue.{self.name}.{operation}")
        return reply

    def _list_seqs(self):
        names = yield from self._nfms_call("listFiles",
                                           {"prefix": self._prefix})
        seqs = []
        for name in names:
            stem = name[len(self._prefix):]
            if stem.endswith(".json"):
                try:
                    seqs.append(int(stem[:-len(".json")]))
                except ValueError:
                    continue
        return sorted(seqs)

    def append(self, kind: str, body: dict, *, time: float):
        """Kernel process: persist one entry; returns the stamped entry."""
        if self._next_seq is None:
            seqs = yield from self._list_seqs()
            # Another append may have seeded the counter while we listed.
            if self._next_seq is None:
                self._next_seq = (seqs[-1] + 1) if seqs else 1
        # Reserve the seq before yielding again: concurrent appends (two
        # drive processes journaling claims) must never share a number.
        seq = self._next_seq
        self._next_seq += 1
        entry = build_entry(seq=seq, time=time, kind=kind, body=body)
        name = self._logical(entry["seq"])
        text = json.dumps(entry, sort_keys=True)
        staged = self.staging.deposit(name, [(float(entry["seq"]), text)],
                                      created=self.kernel.now)
        yield from self.retry.call(
            self.kernel,
            lambda: self.transport.transfer(
                self.host, self.repo_host, staged, self.repo_store,
                dst_name=name),
            key=f"queue.{self.name}.transfer.{entry['seq']}")
        yield from self._nfms_call("registerFile", {
            "logical_name": name, "host": self.repo_host,
            "store": self.repo_store.name, "size": staged.size,
            "checksum": staged.checksum})
        self.appended += 1
        return entry

    def _fetch(self, seq: int):
        name = self._logical(seq)
        negotiated = yield from self._nfms_call("negotiateTransfer", {
            "logical_name": name,
            "client_protocols": [self.transport.protocol]})
        replica = negotiated["replica"]
        self._fetches += 1
        local_name = f"{name}#fetch{self._fetches}"
        yield from self.transport.transfer(
            replica["host"], self.host, self.repo_store.get(name),
            self.staging, dst_name=local_name)
        entry = json.loads(self.staging.get(local_name).rows[0][1])
        validate_queue_entry(entry)
        if entry["seq"] != seq:
            raise ProtocolError(
                f"journal entry {name} carries seq {entry['seq']}")
        return entry

    def replay(self):
        """Kernel process: every journal entry, ascending by sequence."""
        seqs = yield from self._list_seqs()
        entries = []
        for seq in seqs:
            entry = yield from self._fetch(seq)
            entries.append(entry)
        self.replayed += 1
        return entries
