"""Fencing epochs: monotone scheduler ownership, refused zombies.

A fleet-scheduler crash leaves two dangers behind: queued work nobody
owns (solved by journal replay) and *still-running* work that does not
know its owner died — the coordinator processes, checkpoint writes, and
lease releases of the dead incarnation, which may wake at any time and
write stale state over the successor's.  The classic defence is a
fencing token: every scheduler incarnation registers a strictly
increasing **epoch**, every durable write path carries the writer's
epoch, and every validator refuses any epoch older than the current one.

:class:`FencingAuthority` is the single source of epoch truth inside one
simulated grid.  The write paths that consult it:

* the queue journal (claim and terminal appends,
  :class:`repro.queue.ingress.ExperimentQueue`);
* the site pool (lease grant and release,
  :meth:`repro.fleet.pool.SitePool.fence_epoch`);
* the checkpoint store (:class:`FencedCheckpointStore`);
* the NTCP write verbs (:class:`FencedNTCPClient`).

Refusals are *recorded*, not just raised — the chaos invariant sweep and
the T-QUEUE bench assert that every crash epoch produced at least one
refusal (the zombie really did try) and that no stale write was accepted.
"""

from __future__ import annotations

from typing import Any

from repro.repository.checkpoint import CheckpointStoreBase
from repro.util.errors import FencingError

__all__ = ["FencingAuthority", "FencedCheckpointStore", "FencedNTCPClient",
           "FencingError"]


class FencingAuthority:
    """Issues monotone fencing epochs and validates writes against them.

    One authority per grid.  ``register`` hands the next epoch to a
    scheduler incarnation; ``validate`` is called by every fenced write
    path and raises :class:`~repro.util.errors.FencingError` for a stale
    epoch, recording the refusal.  ``observe`` fast-forwards the current
    epoch from a replayed journal (a fresh front-end over an existing
    journal must not re-issue epochs the log already granted).
    """

    def __init__(self, kernel: Any):
        self.kernel = kernel
        self.current_epoch = 0
        #: every epoch ever granted: (epoch, scheduler_id, sim time)
        self.epochs: list[tuple[int, str, float]] = []
        #: every refusal: {"epoch", "current_epoch", "path", "time"}
        self.refusals: list[dict[str, Any]] = []
        #: every validation outcome (accepted and refused), for sweeps
        self.validations: list[dict[str, Any]] = []

    def register(self, scheduler_id: str) -> int:
        """Grant the next epoch to ``scheduler_id``; supersedes all others."""
        self.current_epoch += 1
        self.epochs.append((self.current_epoch, scheduler_id,
                            self.kernel.now))
        self.kernel.emit("queue.fencing", "epoch.registered",
                         epoch=self.current_epoch,
                         scheduler_id=scheduler_id)
        return self.current_epoch

    def observe(self, epoch: int, scheduler_id: str = "") -> None:
        """Fast-forward to an epoch learned from journal replay."""
        if epoch > self.current_epoch:
            self.current_epoch = epoch
            self.epochs.append((epoch, scheduler_id, self.kernel.now))

    def note_refusal(self, *, epoch: int | None, path: str) -> None:
        """Record one refused stale-epoch write (raised by a validator)."""
        refusal = {"epoch": epoch, "current_epoch": self.current_epoch,
                   "path": path, "time": self.kernel.now}
        self.refusals.append(refusal)
        self.validations.append(dict(refusal, accepted=False))
        self.kernel.emit("queue.fencing", "write.refused", epoch=epoch,
                         current_epoch=self.current_epoch, path=path)

    def validate(self, epoch: int, path: str) -> None:
        """Refuse ``epoch`` unless it is the current one.

        Raises :class:`~repro.util.errors.FencingError` (and records the
        refusal) for a superseded epoch; records an accepted validation
        otherwise.
        """
        if epoch != self.current_epoch:
            self.note_refusal(epoch=epoch, path=path)
            raise FencingError(
                f"{path}: write from epoch {epoch} refused, epoch "
                f"{self.current_epoch} is current", epoch=epoch,
                current_epoch=self.current_epoch, path=path)
        self.validations.append({
            "epoch": epoch, "current_epoch": self.current_epoch,
            "path": path, "time": self.kernel.now, "accepted": True})

    def refusals_by_epoch(self) -> dict[int, int]:
        """Refusal counts keyed by the *stale* epoch that was refused."""
        counts: dict[int, int] = {}
        for refusal in self.refusals:
            epoch = refusal["epoch"]
            if epoch is not None:
                counts[epoch] = counts.get(epoch, 0) + 1
        return counts

    def stale_accepts(self) -> list[dict[str, Any]]:
        """Validations that accepted a stale epoch — must always be empty."""
        return [v for v in self.validations
                if v["accepted"] and v["epoch"] < v["current_epoch"]]

    def report(self) -> dict[str, Any]:
        """JSON-friendly summary for invariant sweeps and bench documents."""
        return {"current_epoch": self.current_epoch,
                "epochs": [{"epoch": e, "scheduler_id": s, "time": t}
                           for e, s, t in self.epochs],
                "refusals": [dict(r) for r in self.refusals],
                "refusals_by_epoch": self.refusals_by_epoch(),
                "stale_accepts": self.stale_accepts()}


class FencedCheckpointStore(CheckpointStoreBase):
    """A checkpoint store whose *writes* validate a fencing epoch.

    Wraps any :class:`~repro.repository.checkpoint.CheckpointStoreBase`
    (in-memory or repository-backed).  ``save`` validates the wrapping
    incarnation's epoch first, so a zombie coordinator's periodic or
    abort-time checkpoint is refused before it can clobber the
    successor's history.  Reads pass through — a zombie reading stale
    state is harmless; only writes fence.
    """

    def __init__(self, inner: CheckpointStoreBase,
                 authority: FencingAuthority, epoch: int):
        self.inner = inner
        self.authority = authority
        self.epoch = epoch

    def save(self, doc: dict):
        self.authority.validate(self.epoch, "checkpoint.save")
        seq = yield from self.inner.save(doc)
        return seq

    def list_seqs(self, run_id: str):
        seqs = yield from self.inner.list_seqs(run_id)
        return seqs

    def load(self, run_id: str, seq: int):
        doc = yield from self.inner.load(run_id, seq)
        return doc

    def load_history(self, run_id: str):
        result = yield from self.inner.load_history(run_id)
        return result


class FencedNTCPClient:
    """An NTCP client whose *write verbs* validate a fencing epoch.

    Wraps a :class:`~repro.core.client.NTCPClient`.  ``propose``,
    ``execute``, ``cancel``, and ``propose_and_execute`` (the verbs that
    change site state or move hardware) validate before going on the
    wire; the read verbs pass through.  This is what actually stops a
    zombie coordinator: its next step attempt raises
    :class:`~repro.util.errors.FencingError` client-side, the fault
    policy refuses to retry it, and the incarnation aborts without having
    touched a site the successor now owns.
    """

    def __init__(self, inner: Any, authority: FencingAuthority, epoch: int):
        self.inner = inner
        self.authority = authority
        self.epoch = epoch

    @property
    def rpc(self):
        """The wrapped client's RPC layer (coordinators read its kernel)."""
        return self.inner.rpc

    def propose(self, handle, transaction, *args, **kwargs):
        self.authority.validate(self.epoch, "ntcp.propose")
        return self.inner.propose(handle, transaction, *args, **kwargs)

    def execute(self, handle, transaction, *args, **kwargs):
        self.authority.validate(self.epoch, "ntcp.execute")
        return self.inner.execute(handle, transaction, *args, **kwargs)

    def cancel(self, handle, transaction, *args, **kwargs):
        self.authority.validate(self.epoch, "ntcp.cancel")
        return self.inner.cancel(handle, transaction, *args, **kwargs)

    def propose_and_execute(self, handle, transaction, *args, **kwargs):
        self.authority.validate(self.epoch, "ntcp.propose")
        return self.inner.propose_and_execute(handle, transaction,
                                              *args, **kwargs)

    def get_transaction(self, *args, **kwargs):
        return self.inner.get_transaction(*args, **kwargs)

    def get_results(self, *args, **kwargs):
        return self.inner.get_results(*args, **kwargs)

    def list_transactions(self, *args, **kwargs):
        return self.inner.list_transactions(*args, **kwargs)
