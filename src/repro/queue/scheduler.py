"""The crash-recoverable fleet scheduler over the durable ingress queue.

:class:`DurableFleetScheduler` is one scheduler *incarnation*: it
registers a fresh fencing epoch, fences the site pool (revoking every
lease a dead predecessor still holds), replays the journal, and drives
every outstanding submission — first deliveries and redeliveries alike —
as its own kernel process.  A redelivered submission resumes from the
run's newest checkpoint through the §7 reconciliation machinery, on
sites *disjoint* from every site a prior claim ever held, so the
successor never re-executes an NTCP transaction a dead incarnation's
orphan might have landed.

The zombie model: :meth:`crash` marks the incarnation dead but interrupts
nothing — its coordinator processes, checkpoint writers, and lease
bookkeeping keep running, exactly like a host whose scheduler process
died while its in-flight RPCs did not.  Every one of those orphans is
stopped at its next durable write: the fenced NTCP client, checkpoint
store, queue journal, and site pool all validate the orphan's stale
epoch and refuse it with :class:`~repro.util.errors.FencingError`.

:func:`run_durable_campaign` strings incarnations together — submit,
run, crash on cue, take over — and is what the T-QUEUE bench and the
chaos suite drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator

from repro.coordinator import (
    ExperimentResult,
    SimulationCoordinator,
    SiteBinding,
    records_from_payloads,
    resume_state_from_checkpoint,
)
from repro.fleet.pool import SiteLease, SitePool
from repro.fleet.scheduler import default_fleet_fault_policy
from repro.most.assembly import provision_simulation_site
from repro.net import RpcClient
from repro.ogsi import ServiceContainer
from repro.queue.fencing import FencedCheckpointStore, FencedNTCPClient
from repro.queue.ingress import ExperimentQueue, QueueSubmission
from repro.queue.journal import RepositoryJournalStore
from repro.queue.observe import QueueStatusService
from repro.repository import (
    CheckpointPolicy,
    GridFTPTransport,
    InMemoryCheckpointStore,
    NFMSService,
)
from repro.structural import (
    LinearSubstructure,
    StructuralModel,
    kanai_tajimi_record,
)
from repro.util.errors import FencingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.grid import FleetGrid
    from repro.fleet.tenants import TenantRegistry
    from repro.monitor import ExperimentMonitor


def attach_durable_repository(grid: "FleetGrid", *,
                              name: str = "campaign"
                              ) -> RepositoryJournalStore:
    """Wire a repository-backed queue journal onto a fleet grid.

    Deploys an NFMS instance in its own container on the ``repo`` host
    (port ``ogsi-queue`` — the journal is the scheduler's internal
    coordination state, not tenant data, so it bypasses the tenant GSI
    fabric the way the fleet's own status services do), installs the
    GridFTP transport, and returns a ready
    :class:`~repro.queue.journal.RepositoryJournalStore`.
    """
    from repro.daq.filestore import RepositoryFileStore

    container = ServiceContainer(grid.network, "repo", port="ogsi-queue")
    nfms = NFMSService()
    handle = container.deploy(nfms)
    nfms.install_transport("gridftp")
    repo_store = RepositoryFileStore()
    rpc = RpcClient(grid.network, "coord",
                    default_timeout=grid.config.rpc_timeout,
                    default_retries=grid.config.rpc_retries,
                    labels={"role": "queue"})
    grid.extras["queue_nfms"] = nfms
    return RepositoryJournalStore(
        name=name, host="coord", repo_host="repo", repo_store=repo_store,
        transport=GridFTPTransport(grid.network), rpc=rpc, nfms=handle)


@dataclass
class QueueOutcome:
    """What one driven submission produced under one incarnation."""

    submission: QueueSubmission
    result: ExperimentResult
    epoch: int
    attempt: int
    lease_id: str
    site_names: tuple[str, ...]
    claimed_at: float
    finished_at: float
    status: str
    #: committed steps carried in from the resumed checkpoint (0 = cold)
    resumed_from_step: int
    #: per-site NTCP counter deltas for the lease (at-most-once evidence)
    usage: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def tenant(self) -> str:
        """The owning tenant id."""
        return self.submission.tenant

    @property
    def run_id(self) -> str:
        """The experiment's run id."""
        return self.submission.run_id or self.submission.submission_id

    @property
    def completed(self) -> bool:
        """Whether this delivery completed every step."""
        return self.result.completed

    def duplicate_executes(self) -> int:
        """Duplicate execute requests absorbed across the lease's sites."""
        return sum(delta["duplicate_executes"]
                   for delta in self.usage.values())


class DurableFleetScheduler:
    """One scheduler incarnation over the shared grid, pool, and queue.

    Run :meth:`main` as a kernel process.  It claims ownership (fencing
    epoch + pool fence), recovers queue state from the journal, then
    drives every outstanding submission to a journaled terminal state.
    A predecessor's orphans die at their next fenced write; this
    incarnation's own writes carry ``self.epoch`` everywhere.
    """

    def __init__(self, grid: "FleetGrid", pool: SitePool,
                 registry: "TenantRegistry", queue: ExperimentQueue, *,
                 scheduler_id: str,
                 checkpoint_stores: dict[str, InMemoryCheckpointStore]
                 | None = None,
                 settle_delay: float = 5.0,
                 rollup_interval: float = 60.0,
                 monitor: "ExperimentMonitor | None" = None,
                 status: QueueStatusService | None = None):
        self.grid = grid
        self.pool = pool
        self.registry = registry
        self.queue = queue
        self.kernel = grid.kernel
        self.scheduler_id = scheduler_id
        #: run_id -> checkpoint store, shared ACROSS incarnations (it
        #: stands in for the durable repository checkpoint namespace)
        self.checkpoint_stores = (checkpoint_stores
                                  if checkpoint_stores is not None else {})
        self.settle_delay = settle_delay
        self.rollup_interval = rollup_interval
        self.monitor = monitor
        self.status = status
        self.epoch = 0
        self.dead = False
        self.outcomes: list[QueueOutcome] = []
        self.fenced_drives = 0
        self.report: dict[str, Any] | None = None
        self._driving = False
        #: fires (with the outstanding count) once recovery is done and
        #: the drive processes are spawned — the crash-scheduling anchor
        self.draining = self.kernel.event(
            name=f"queue.{scheduler_id}.draining")

    # -- lifecycle -----------------------------------------------------------
    def main(self) -> Generator[Any, Any, dict[str, Any]]:
        """Kernel process: take over the queue and drain it.

        Order matters: the epoch is registered (journaled) *first*, so
        every predecessor write from then on is refused in memory and can
        never reach the journal; the pool is fenced next, revoking orphan
        leases; the settle delay then lets predecessor appends already in
        flight land; only then is the journal replayed — any zombie entry
        that slipped in behind the epoch entry is voided by sequence
        order during replay.
        """
        self.epoch = yield from self.queue.register_scheduler(
            self.scheduler_id)
        revoked = self.pool.fence_epoch(self.epoch)
        self.kernel.emit("queue.scheduler", "takeover",
                         scheduler_id=self.scheduler_id, epoch=self.epoch,
                         leases_revoked=revoked)
        if self.settle_delay > 0:
            yield self.kernel.timeout(self.settle_delay)
        recovery = yield from self.queue.recover()
        outstanding = self.queue.outstanding()
        self.kernel.emit("queue.scheduler", "drain.start",
                         scheduler_id=self.scheduler_id, epoch=self.epoch,
                         outstanding=len(outstanding))
        processes = [
            self.kernel.process(
                self._drive_guard(submission),
                name=f"queue.{self.scheduler_id}.{submission.submission_id}")
            for submission in outstanding]
        self._driving = True
        self.draining.succeed(len(processes))
        if self.status is not None:
            self.kernel.process(self._publish_loop(),
                                name=f"queue.{self.scheduler_id}.rollup")
        if processes:
            yield self.kernel.all_of(processes)
        self._driving = False
        if self.status is not None and not self.dead:
            self.status.publish(self.queue.stats())
        self.report = {
            "scheduler_id": self.scheduler_id, "epoch": self.epoch,
            "leases_revoked": revoked, "replayed": recovery["entries"],
            "voided": recovery["voided"], "driven": len(processes),
            "completed": sum(1 for o in self.outcomes if o.completed),
            "fenced_drives": self.fenced_drives,
            "finished_at": self.kernel.now}
        return self.report

    def crash(self) -> None:
        """Declare this incarnation dead — and clean up *nothing*.

        The zombie model: every in-flight coordinator, checkpoint write,
        and lease this incarnation owns keeps running, exactly like a
        crashed host's outstanding RPCs.  They are stopped by fencing at
        their next durable write, not by this call.
        """
        self.dead = True
        self.kernel.emit("queue.scheduler", "scheduler.crashed",
                         scheduler_id=self.scheduler_id, epoch=self.epoch)

    # -- per-submission drive ------------------------------------------------
    def _drive_guard(self, submission: QueueSubmission
                     ) -> Generator[Any, Any, None]:
        """Run one drive; absorb the fencing refusal that ends a zombie."""
        try:
            yield from self._drive(submission)
        except FencingError as exc:
            self.fenced_drives += 1
            self.kernel.emit("queue.scheduler", "drive.fenced",
                             scheduler_id=self.scheduler_id,
                             submission_id=submission.submission_id,
                             epoch=exc.epoch,
                             current_epoch=exc.current_epoch,
                             path=exc.path)

    def _drive(self, submission: QueueSubmission
               ) -> Generator[Any, Any, None]:
        config = self.grid.config
        tenant = self.registry.register(submission.tenant)
        run_id = submission.run_id or submission.submission_id
        # Disjoint-site redelivery: never lease a site a prior claim of
        # this submission held — a dead incarnation's orphan may have
        # executed this run's transaction names there.
        avoid = self.queue.claimed_sites(submission.submission_id)
        lease: SiteLease = yield self.pool.acquire(
            submission.tenant, submission.n_sites, epoch=self.epoch,
            avoid=avoid)
        attempt = yield from self.queue.claim(
            submission.submission_id, self.epoch, lease.site_names)
        if attempt > 1:
            self.kernel.emit("queue.scheduler", "redelivery",
                             submission_id=submission.submission_id,
                             attempt=attempt, epoch=self.epoch,
                             sites=list(lease.site_names))
            if self.monitor is not None:
                self.monitor.raise_alert(
                    "queue_redelivery", "warning",
                    f"submission {submission.submission_id} redelivered "
                    f"(attempt {attempt}) on epoch {self.epoch}",
                    detail={"submission_id": submission.submission_id,
                            "attempt": attempt, "epoch": self.epoch,
                            "sites": list(lease.site_names)})
        k_each = config.k_total / len(lease.sites)
        for site in lease.sites:
            provision_simulation_site(
                site, self.kernel,
                LinearSubstructure(f"{site.name}-{run_id}", [[k_each]], [0]),
                compute_time=config.ncsa_compute)
        motion = kanai_tajimi_record(
            duration=submission.n_steps * config.dt, dt=config.dt,
            pga=config.pga * submission.motion_scale,
            seed=config.motion_seed)
        model = StructuralModel(
            mass=[[config.mass]], stiffness=[[config.k_total]]
        ).with_rayleigh_damping(config.damping_ratio)
        bindings = [SiteBinding(site.name, site.handle, dof_indices=[0])
                    for site in lease.sites]
        client = FencedNTCPClient(tenant.ntcp, self.queue.authority,
                                  self.epoch)
        store = None
        checkpoint_policy = None
        if submission.checkpoint_every > 0:
            inner = self.checkpoint_stores.setdefault(
                run_id, InMemoryCheckpointStore())
            store = FencedCheckpointStore(inner, self.queue.authority,
                                          self.epoch)
            checkpoint_policy = CheckpointPolicy(
                every_n_steps=submission.checkpoint_every, on_abort=True)
        state = None
        prior_records: Any = ()
        resumed_from = 0
        if attempt > 1 and store is not None:
            doc, payloads = yield from store.load_history(run_id)
            if doc is not None:
                state = resume_state_from_checkpoint(doc)
                prior_records = records_from_payloads(payloads)
                resumed_from = len(prior_records)
        coordinator = SimulationCoordinator(
            run_id=run_id, client=client, model=model, motion=motion,
            sites=bindings, fault_policy=default_fleet_fault_policy(),
            execution_timeout=config.execution_timeout,
            checkpoint_store=store, checkpoint_policy=checkpoint_policy,
            state=state, prior_records=prior_records)
        result: ExperimentResult = yield self.kernel.process(
            coordinator.run(),
            name=f"queue.{run_id}.attempt{attempt}")
        status = "completed" if result.completed else "failed"
        yield from self.queue.mark_terminal(
            submission.submission_id, self.epoch, status=status,
            steps=result.steps_completed)
        self.pool.release(lease)
        self.outcomes.append(QueueOutcome(
            submission=submission, result=result, epoch=self.epoch,
            attempt=attempt, lease_id=lease.lease_id,
            site_names=lease.site_names, claimed_at=lease.granted_at,
            finished_at=self.kernel.now, status=status,
            resumed_from_step=resumed_from, usage=lease.metrics_delta()))

    def _publish_loop(self) -> Generator[Any, Any, None]:
        while self._driving and not self.dead:
            self.status.publish(self.queue.stats())
            yield self.kernel.timeout(self.rollup_interval)


@dataclass
class CampaignResult:
    """Everything a durable campaign produced, across all incarnations."""

    outcomes: list[QueueOutcome]
    incarnations: list[dict[str, Any]]
    queue_stats: dict[str, Any]
    fencing: dict[str, Any]
    started_at: float
    finished_at: float

    def histories(self) -> dict[str, Any]:
        """Final displacement history per completed run id."""
        return {outcome.run_id: outcome.result.displacement_history()
                for outcome in self.outcomes if outcome.completed}

    def duplicate_executes(self) -> int:
        """Duplicate executes across every outcome's leased sites."""
        return sum(outcome.duplicate_executes()
                   for outcome in self.outcomes)

    def summary(self) -> dict[str, Any]:
        """The campaign's headline numbers in one dict."""
        return {
            "submissions": self.queue_stats["submitted"],
            "completed": self.queue_stats["completed"],
            "failed": self.queue_stats["failed"],
            "outstanding": self.queue_stats["outstanding"],
            "redeliveries": self.queue_stats["redeliveries"],
            "voided": self.queue_stats["voided"],
            "incarnations": len(self.incarnations),
            "final_epoch": self.fencing["current_epoch"],
            "refusals": len(self.fencing["refusals"]),
            "stale_accepts": len(self.fencing["stale_accepts"]),
            "duplicate_executes": self.duplicate_executes(),
            "duration": self.finished_at - self.started_at,
        }


def run_durable_campaign(grid: "FleetGrid", pool: SitePool,
                         registry: "TenantRegistry",
                         queue: ExperimentQueue,
                         submissions: list[QueueSubmission], *,
                         crash_after: tuple[float, ...] = (),
                         takeover_delay: float = 30.0,
                         settle_delay: float = 5.0,
                         monitor: "ExperimentMonitor | None" = None,
                         status: QueueStatusService | None = None
                         ) -> CampaignResult:
    """Run a campaign through ``len(crash_after) + 1`` incarnations.

    Submits every submission, starts incarnation 1, and for each entry in
    ``crash_after`` waits that many simulated seconds *after the
    incarnation begins draining* (recovery replayed, drive processes
    spawned — so a crash always lands on an incarnation with real work
    in flight), crashes it (zombie model — nothing is interrupted),
    waits ``takeover_delay``, and starts the successor.  The final
    incarnation runs to a drained queue.  Checkpoint stores are shared
    across incarnations, standing in for the durable repository
    namespace.
    """
    kernel = grid.kernel
    pool.attach_fencing(queue.authority)
    checkpoint_stores: dict[str, InMemoryCheckpointStore] = {}
    schedulers: list[DurableFleetScheduler] = []
    started_at = kernel.now

    def controller() -> Generator[Any, Any, None]:
        for submission in submissions:
            yield from queue.submit(submission)
        crashes = tuple(crash_after)
        for index in range(len(crashes) + 1):
            scheduler = DurableFleetScheduler(
                grid, pool, registry, queue,
                scheduler_id=f"sched-{index + 1}",
                checkpoint_stores=checkpoint_stores,
                settle_delay=settle_delay, monitor=monitor, status=status)
            schedulers.append(scheduler)
            process = kernel.process(
                scheduler.main(), name=f"queue.incarnation{index + 1}")
            if index < len(crashes):
                yield scheduler.draining
                yield kernel.timeout(crashes[index])
                scheduler.crash()
                yield kernel.timeout(takeover_delay)
            else:
                yield process

    kernel.run(until=kernel.process(controller(), name="queue.campaign"))
    return CampaignResult(
        outcomes=[outcome for scheduler in schedulers
                  for outcome in scheduler.outcomes],
        incarnations=[scheduler.report or
                      {"scheduler_id": scheduler.scheduler_id,
                       "epoch": scheduler.epoch, "crashed": scheduler.dead,
                       "fenced_drives": scheduler.fenced_drives,
                       "completed": sum(1 for o in scheduler.outcomes
                                        if o.completed)}
                      for scheduler in schedulers],
        queue_stats=queue.stats(), fencing=queue.authority.report(),
        started_at=started_at, finished_at=kernel.now)
