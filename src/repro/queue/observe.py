"""Queue observability: the ingress-status SDE and its grid service.

Each durable-scheduler incarnation periodically publishes the queue's
headline numbers — depth, redeliveries, fencing epoch, refused writes —
through a :class:`QueueStatusService` hosted in the coordinator
container, so monitors watch ingress health the same way they watch a
fleet roll-up or a single experiment's SDEs.
"""

from __future__ import annotations

from typing import Any

from repro.ogsi import GridService

#: name of the queue-status service data element
QUEUE_SDE = "queue.status"


class QueueStatusService(GridService):
    """Publishes the experiment queue's status as service data.

    SDE ``queue.status`` holds the latest status document (see
    :meth:`repro.queue.ingress.ExperimentQueue.stats` for the shape);
    operation ``getQueueStatus`` returns it on demand.
    """

    def __init__(self, service_id: str = "queue-status"):
        super().__init__(service_id)

    def on_attach(self) -> None:
        """Expose the queue-status SDE and its query operation."""
        self.service_data.set(QUEUE_SDE, None)
        self.expose("getQueueStatus", self._op_getQueueStatus)

    def _op_getQueueStatus(self, caller: Any) -> Any:
        return self.service_data.value(QUEUE_SDE)

    def publish(self, status: dict[str, Any]) -> None:
        """Install a new status document (notifies SDE subscribers)."""
        self.service_data.set(QUEUE_SDE, status)
        self.emit("queue.status_published",
                  outstanding=status.get("outstanding"),
                  redeliveries=status.get("redeliveries"),
                  epoch=status.get("epoch"))
