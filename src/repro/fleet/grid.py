"""The shared fleet grid: K pooled simulation sites behind one coordinator host.

Unlike :func:`repro.most.assembly.build_most` — which wires the three named
MOST facilities and hands the whole deployment to a single coordinator —
the fleet grid builds an anonymous pool of ``site-0 .. site-{K-1}``
simulation sites plus the shared ``coord`` and ``repo`` hosts.  Nothing is
provisioned per-experiment here: a tenant's lease installs fresh
substructure state behind each leased site's NTCP server via
:func:`repro.most.assembly.provision_simulation_site`.

All coordinator–site links are fixed-latency with zero jitter and zero
loss, so the network never consumes shared randomness — this is what makes
a tenant's history bit-exact between a crowded fleet run and its solo
re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control import SimulationPlugin
from repro.core import NTCPServer
from repro.most.assembly import SiteDeployment
from repro.most.config import MOSTConfig
from repro.net import FaultInjector, Network
from repro.ogsi import GridServiceHandle, ServiceContainer
from repro.repository import NMDSService
from repro.sim import Kernel
from repro.structural import LinearSubstructure

#: default number of pooled sites (the bench's "≤ 8 shared sites" bound)
DEFAULT_POOL_SIZE = 8


@dataclass
class FleetGrid:
    """The assembled shared grid, ready for a pool and scheduler.

    ``sites`` holds one :class:`~repro.most.assembly.SiteDeployment` per
    pooled site (host name == site name); ``coord_container`` hosts
    fleet-level services (status roll-up, per-lease failover surrogates
    bind their own ports); ``nmds`` is the shared metadata service every
    tenant writes its tenant-namespaced run records into.
    """

    config: MOSTConfig
    kernel: Kernel
    network: Network
    faults: FaultInjector
    sites: dict[str, SiteDeployment]
    coord_container: ServiceContainer
    repo_container: ServiceContainer
    nmds: NMDSService
    nmds_handle: GridServiceHandle
    extras: dict = field(default_factory=dict)


def build_fleet_grid(n_sites: int = DEFAULT_POOL_SIZE, *,
                     config: MOSTConfig | None = None,
                     network_seed: int | None = None) -> FleetGrid:
    """Construct a shared grid with ``n_sites`` pooled simulation sites.

    Per-site latencies follow a small deterministic spread (near-campus to
    across-the-WAN, like MOST's UIUC/NCSA/CU triangle) but carry no
    jitter, so concurrent tenants cannot perturb each other's numerics.
    """
    config = config or MOSTConfig()
    if n_sites < 1:
        raise ValueError(f"a fleet grid needs at least one site, "
                         f"got {n_sites}")
    kernel = Kernel()
    network = Network(kernel, seed=(network_seed if network_seed is not None
                                    else config.network_seed))
    network.add_host("coord")
    network.add_host("repo")
    network.connect("coord", "repo", latency=config.latency_ncsa)

    latencies = (config.latency_ncsa, config.latency_uiuc,
                 config.latency_cu)
    sites: dict[str, SiteDeployment] = {}
    for index in range(n_sites):
        host = f"site-{index}"
        network.add_host(host)
        network.connect("coord", host, latency=latencies[index
                                                         % len(latencies)])
        container = ServiceContainer(network, host)
        # A placeholder plugin keeps the server well-formed before the
        # first lease; every lease re-provisions with fresh state.
        placeholder = SimulationPlugin(
            LinearSubstructure(f"{host}-unleased", [[1.0]], [0]),
            compute_time=0.0)
        server = NTCPServer(f"ntcp-{host}", placeholder)
        handle = container.deploy(server)
        sites[host] = SiteDeployment(name=host, container=container,
                                     server=server, handle=handle)

    repo_container = ServiceContainer(network, "repo")
    nmds = NMDSService()
    repo_container.deploy(nmds)
    nmds_handle = GridServiceHandle("repo", "ogsi", nmds.service_id)
    coord_container = ServiceContainer(network, "coord")

    return FleetGrid(config=config, kernel=kernel, network=network,
                     faults=FaultInjector(network), sites=sites,
                     coord_container=coord_container,
                     repo_container=repo_container, nmds=nmds,
                     nmds_handle=nmds_handle)
