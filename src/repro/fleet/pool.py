"""Shared site pool: leases, FIFO + fair-share queueing, admission control.

The paper ran exactly one hybrid experiment over its NTCP sites; the fleet
layer multiplexes many.  A :class:`SitePool` owns the grid's
:class:`~repro.most.assembly.SiteDeployment` slots and hands them out as
:class:`SiteLease`\\ s — a tenant acquires ``n`` sites, runs one experiment
against them, and releases them for the next tenant in the queue.

Queueing discipline: requests wait in arrival order but are granted in
*fair-share* order — tenants with fewer completed leases go first, FIFO
breaking ties — and the head of the queue is never bypassed, so a large
request (many sites) cannot be starved by a stream of small ones.

Admission control rejects requests that could never be satisfied (more
sites than the pool owns, or above the per-lease cap) and, when a queue
bound is configured, requests that arrive while the queue is full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.core.server import STAT_KEYS
from repro.util.errors import (
    ConfigurationError,
    FencingError,
    ProtocolError,
    ReproError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.most.assembly import SiteDeployment
    from repro.sim import Kernel
    from repro.sim.events import Event


class AdmissionError(ReproError):
    """The pool refused a lease request at admission time."""


@dataclass
class SiteLease:
    """Exclusive, time-bounded ownership of a set of pool sites.

    Created by :meth:`SitePool.acquire`; the holder must eventually call
    :meth:`SitePool.release`.  The lease snapshots each site's NTCP server
    counters at grant time so :meth:`metrics_delta` can attribute exactly
    the transactions this tenant ran — the per-tenant at-most-once
    evidence the fleet invariant checks consume.
    """

    lease_id: str
    tenant: str
    sites: tuple["SiteDeployment", ...]
    requested_at: float
    granted_at: float
    released_at: float | None = None
    #: per-site NTCP counter snapshot taken at grant time
    baseline: dict[str, dict[str, int]] = field(default_factory=dict,
                                                repr=False)
    #: per-site counter deltas, frozen by :meth:`SitePool.release`
    usage: dict[str, dict[str, int]] | None = field(default=None, repr=False)
    #: fencing epoch the lease was granted under (``None``: unfenced)
    epoch: int | None = None
    #: set by :meth:`SitePool.fence_epoch` when a newer epoch superseded
    #: this lease; the holder's eventual ``release`` is refused
    revoked: bool = False

    @property
    def site_names(self) -> tuple[str, ...]:
        """The leased sites' names, in grant order."""
        return tuple(site.name for site in self.sites)

    @property
    def wait(self) -> float:
        """Simulated seconds spent queued before the grant."""
        return self.granted_at - self.requested_at

    @property
    def released(self) -> bool:
        """Whether the lease has been handed back to the pool."""
        return self.released_at is not None

    def metrics_delta(self) -> dict[str, dict[str, int]]:
        """Per-site NTCP counter deltas attributable to this lease.

        While the lease is held this reads the live counters; after
        release it returns the frozen snapshot, so the numbers cannot be
        polluted by the site's next tenant.
        """
        if self.usage is not None:
            return {name: dict(delta) for name, delta in self.usage.items()}
        return {
            site.name: {
                key: site.server.metrics().get(key, 0)
                - self.baseline[site.name].get(key, 0)
                for key in STAT_KEYS}
            for site in self.sites}

    def duplicate_executes(self) -> int:
        """Total duplicate execute requests absorbed across leased sites."""
        return sum(delta["duplicate_executes"]
                   for delta in self.metrics_delta().values())


@dataclass
class _Pending:
    """One queued acquire: who wants how many sites, since when."""

    tenant: str
    n_sites: int
    seq: int
    requested_at: float
    event: "Event"
    epoch: int | None = None
    avoid: frozenset = frozenset()


class SitePool:
    """A fixed set of NTCP sites, acquired and released per lease.

    This is the refactor of the one-deployment-owns-its-sites shape:
    sites live in the pool for the grid's lifetime, while coordinators
    borrow them one lease at a time.  All state changes happen at
    simulation-event granularity on the owning kernel, so pool behaviour
    is deterministic for a given submission order.
    """

    def __init__(self, kernel: "Kernel",
                 sites: Iterable["SiteDeployment"], *,
                 max_sites_per_lease: int | None = None,
                 max_queue_depth: int | None = None):
        self.kernel = kernel
        self.sites: dict[str, Any] = {}
        for site in sites:
            if site.name in self.sites:
                raise ConfigurationError(
                    f"duplicate site {site.name!r} offered to the pool")
            self.sites[site.name] = site
        if not self.sites:
            raise ConfigurationError("a site pool needs at least one site")
        self.max_sites_per_lease = max_sites_per_lease
        self.max_queue_depth = max_queue_depth
        self._free: list[str] = sorted(self.sites)
        self._waiting: list[_Pending] = []
        self._seq = 0
        self._lease_seq = 0
        self._grant_scheduled = False
        self._fencing = None
        self._fenced_epoch = 0
        self.active: dict[str, SiteLease] = {}
        self.completed_leases: dict[str, int] = {}
        self.peak_queue_depth = 0
        telemetry = kernel.telemetry
        self._g_free = telemetry.gauge("fleet.pool.free_sites")
        self._g_queue = telemetry.gauge("fleet.pool.queue_depth")
        self._g_active = telemetry.gauge("fleet.pool.active_leases")
        self._c_granted = telemetry.counter("fleet.pool.leases_granted")
        self._c_rejected = telemetry.counter("fleet.pool.admission_rejected")
        self._h_wait = telemetry.histogram("fleet.pool.lease_wait")
        self._update_gauges()

    # -- admission -----------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of sites the pool owns."""
        return len(self.sites)

    def queue_depth(self) -> int:
        """Number of acquire requests currently waiting."""
        return len(self._waiting)

    def free_sites(self) -> int:
        """Number of sites not currently leased."""
        return len(self._free)

    def validate_request(self, n_sites: int) -> None:
        """Raise :class:`AdmissionError` if ``n_sites`` can never be granted."""
        if n_sites < 1:
            self._c_rejected.inc()
            raise AdmissionError(f"a lease needs at least one site, "
                                 f"got {n_sites}")
        if n_sites > self.size:
            self._c_rejected.inc()
            raise AdmissionError(
                f"requested {n_sites} sites but the pool owns {self.size}")
        if (self.max_sites_per_lease is not None
                and n_sites > self.max_sites_per_lease):
            self._c_rejected.inc()
            raise AdmissionError(
                f"requested {n_sites} sites; per-lease cap is "
                f"{self.max_sites_per_lease}")

    # -- fencing -------------------------------------------------------------
    def attach_fencing(self, authority) -> None:
        """Record fencing refusals through ``authority``.

        ``authority`` is duck-typed (needs ``note_refusal(epoch=, path=)``);
        in practice a :class:`repro.queue.fencing.FencingAuthority`.
        """
        self._fencing = authority

    def _note_refusal(self, epoch: int | None, path: str) -> None:
        if self._fencing is not None:
            self._fencing.note_refusal(epoch=epoch, path=path)

    def fence_epoch(self, epoch: int) -> int:
        """Supersede every lease and queued acquire older than ``epoch``.

        The successor-scheduler move: active leases granted under an older
        epoch are revoked (their sites return to the pool immediately —
        the dead incarnation will never release them) and stale queued
        acquires fail with :class:`~repro.util.errors.FencingError`.
        Unfenced leases (``epoch=None``) are untouched: fencing only
        governs holders that opted into epochs.  Returns the number of
        leases revoked.
        """
        self._fenced_epoch = max(self._fenced_epoch, epoch)
        revoked = 0
        for lease_id in [lid for lid, lease in self.active.items()
                         if lease.epoch is not None and lease.epoch < epoch]:
            lease = self.active.pop(lease_id)
            lease.usage = lease.metrics_delta()
            lease.released_at = self.kernel.now
            lease.revoked = True
            self._free.extend(lease.site_names)
            self._free.sort()
            revoked += 1
            self.kernel.emit("fleet.pool", "lease.revoked",
                             lease_id=lease.lease_id, tenant=lease.tenant,
                             epoch=lease.epoch, fenced_by=epoch)
        for pending in [p for p in self._waiting
                        if p.epoch is not None and p.epoch < epoch]:
            self._waiting.remove(pending)
            self._note_refusal(pending.epoch, "pool.acquire")
            pending.event.fail(FencingError(
                f"lease request from epoch {pending.epoch} refused: "
                f"epoch {epoch} is current",
                epoch=pending.epoch, current_epoch=epoch,
                path="pool.acquire"))
        if revoked or epoch:
            self._schedule_grant()
            self._update_gauges()
        return revoked

    # -- lease lifecycle -----------------------------------------------------
    def acquire(self, tenant: str, n_sites: int = 1, *,
                epoch: int | None = None,
                avoid: Iterable[str] = ()) -> "Event":
        """Queue a lease request; the returned event fires with the lease.

        Raises :class:`AdmissionError` immediately (before queueing) if
        the request is unsatisfiable or the queue is full.  Use from a
        kernel process as ``lease = yield pool.acquire(tenant, n)``.

        ``epoch`` stamps the lease with the caller's fencing epoch — a
        later :meth:`fence_epoch` revokes it and refuses its release.  A
        request whose epoch is already superseded is refused outright.
        ``avoid`` names sites the grant must not include: a recovering
        scheduler re-driving a crashed run leases *disjoint* sites, so
        transaction names the dead incarnation already executed can never
        collide (which would show up as duplicate executes).
        """
        self.validate_request(n_sites)
        avoid = frozenset(avoid)
        if len(self.sites) - len(avoid & set(self.sites)) < n_sites:
            self._c_rejected.inc()
            raise AdmissionError(
                f"requested {n_sites} sites avoiding {sorted(avoid)}; "
                f"the pool cannot ever satisfy that")
        if epoch is not None and epoch < self._fenced_epoch:
            self._note_refusal(epoch, "pool.acquire")
            raise FencingError(
                f"lease request from epoch {epoch} refused: epoch "
                f"{self._fenced_epoch} is current", epoch=epoch,
                current_epoch=self._fenced_epoch, path="pool.acquire")
        if (self.max_queue_depth is not None
                and len(self._waiting) >= self.max_queue_depth):
            self._c_rejected.inc()
            raise AdmissionError(
                f"lease queue is full ({self.max_queue_depth} waiting)")
        evt = self.kernel.event(name=f"lease({tenant})")
        self._seq += 1
        self._waiting.append(_Pending(
            tenant=tenant, n_sites=n_sites, seq=self._seq,
            requested_at=self.kernel.now, event=evt, epoch=epoch,
            avoid=avoid))
        self.peak_queue_depth = max(self.peak_queue_depth,
                                    len(self._waiting))
        self.kernel.emit("fleet.pool", "lease.requested", tenant=tenant,
                         n_sites=n_sites, queued=len(self._waiting))
        self._schedule_grant()
        self._update_gauges()
        return evt

    def release(self, lease: SiteLease) -> None:
        """Return a lease's sites to the pool and wake the queue.

        Releasing a lease revoked by :meth:`fence_epoch` raises
        :class:`~repro.util.errors.FencingError` — that is the zombie
        holder discovering it was superseded.
        """
        if lease.revoked:
            self._note_refusal(lease.epoch, "pool.release")
            raise FencingError(
                f"lease {lease.lease_id!r} from epoch {lease.epoch} was "
                f"revoked: epoch {self._fenced_epoch} is current",
                epoch=lease.epoch, current_epoch=self._fenced_epoch,
                path="pool.release")
        if lease.released:
            raise ProtocolError(f"lease {lease.lease_id!r} already released")
        if self.active.pop(lease.lease_id, None) is None:
            raise ProtocolError(
                f"lease {lease.lease_id!r} was not granted by this pool")
        lease.usage = lease.metrics_delta()
        lease.released_at = self.kernel.now
        self.completed_leases[lease.tenant] = \
            self.completed_leases.get(lease.tenant, 0) + 1
        self._free.extend(lease.site_names)
        self._free.sort()
        self.kernel.emit("fleet.pool", "lease.released",
                         lease_id=lease.lease_id, tenant=lease.tenant,
                         held=self.kernel.now - lease.granted_at)
        self._schedule_grant()
        self._update_gauges()

    # -- internals -----------------------------------------------------------
    def _schedule_grant(self) -> None:
        """Run a grant pass at the next event boundary (delay 0).

        Deferring the pass — instead of granting synchronously inside
        :meth:`acquire` — lets every same-instant request enqueue before
        the fair-share sort picks winners.  Without it, a campaign whose
        processes all start at t=0 hands the whole free pool to whichever
        tenant's requests happen to run first.
        """
        if self._grant_scheduled:
            return
        self._grant_scheduled = True
        evt = self.kernel.event(name="pool.grant")
        evt.add_callback(self._run_grant_pass)
        evt.succeed(None)

    def _run_grant_pass(self, _event: Any = None) -> None:
        self._grant_scheduled = False
        self._grant_ready()
        self._update_gauges()

    def _share(self, tenant: str) -> int:
        """A tenant's current share: completed plus in-flight leases."""
        active = sum(1 for lease in self.active.values()
                     if lease.tenant == tenant)
        return self.completed_leases.get(tenant, 0) + active

    def _grant_ready(self) -> None:
        """Grant queued requests in fair-share order; never bypass the head."""
        while self._waiting:
            self._waiting.sort(key=lambda p: (self._share(p.tenant), p.seq))
            head = self._waiting[0]
            eligible = [name for name in self._free
                        if name not in head.avoid]
            if head.n_sites > len(eligible):
                # Head-of-line blocking is deliberate: skipping a large
                # (or avoid-constrained) request to serve small ones
                # behind it would starve it.
                break
            self._waiting.pop(0)
            names = eligible[:head.n_sites]
            for name in names:
                self._free.remove(name)
            self._lease_seq += 1
            lease = SiteLease(
                lease_id=f"lease-{self._lease_seq:04d}",
                tenant=head.tenant,
                sites=tuple(self.sites[name] for name in names),
                requested_at=head.requested_at,
                granted_at=self.kernel.now,
                baseline={name: dict(self.sites[name].server.metrics())
                          for name in names},
                epoch=head.epoch)
            self.active[lease.lease_id] = lease
            self._c_granted.inc()
            self._h_wait.observe(lease.wait)
            self.kernel.emit("fleet.pool", "lease.granted",
                             lease_id=lease.lease_id, tenant=head.tenant,
                             sites=list(names), wait=lease.wait)
            head.event.succeed(lease)

    def _update_gauges(self) -> None:
        self._g_free.set(len(self._free))
        self._g_queue.set(len(self._waiting))
        self._g_active.set(len(self.active))
