"""Per-tenant GSI identity for fleet experiments.

Each campaign tenant gets its own credential chain (CA-issued identity →
short-lived proxy), its own gridmap entries on every pool site and on the
repository, CAS membership granting the experimenter rights, and its own
labeled RPC/NTCP clients — so NTCP and repository calls are authorized
*per tenant* and a tenant's telemetry series never collide with a
neighbour's.

An identity the CA issued but the registry never admitted (see
:meth:`TenantRegistry.outsider_client`) is rejected by the pool sites'
:class:`~repro.gsi.GsiChecker` with a ``SecurityError`` — the fleet's
negative authorization test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core import NTCPClient
from repro.gsi import (
    CertificateAuthority,
    CommunityAuthorizationService,
    Credential,
    Crypto,
    Gridmap,
    GsiAuthenticator,
    GsiChecker,
)
from repro.net import RpcClient
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.grid import FleetGrid
    from repro.telemetry import ScopedTelemetry

#: distinguished names used by the fleet security fabric
FLEET_CA_DN = "/O=NEESgrid/CN=Fleet CA"
FLEET_CAS_DN = "/O=NEESgrid/CN=Fleet CAS"
OUTSIDER_DN = "/O=Elsewhere/CN=Mallory"

#: community rights every registered tenant holds
TENANT_RIGHTS = frozenset({"ntcp:control", "repository:write",
                           "repository:read"})


def tenant_subject(tenant_id: str) -> str:
    """The distinguished name minted for a fleet tenant."""
    return f"/O=NEESgrid/OU=Fleet/CN={tenant_id}"


@dataclass
class Tenant:
    """One registered tenant: identity, clients, and scoped telemetry.

    ``rpc``/``ntcp`` live on the shared ``coord`` host but carry a
    ``tenant=...`` telemetry label and sign every request with the
    tenant's proxy, so both observability and authorization stay
    per-tenant on the shared grid.
    """

    tenant_id: str
    subject: str
    credential: Credential
    proxy: Credential
    authenticator: GsiAuthenticator
    rpc: RpcClient
    ntcp: NTCPClient
    telemetry: "ScopedTelemetry"


class TenantRegistry:
    """Issues and wires per-tenant GSI identities for one fleet grid.

    Construction installs :class:`~repro.gsi.GsiChecker` on every pool
    site container (shared pool gridmap) and on the repository container
    (repository gridmap + CAS, so metadata writes need the community
    right) — from that point on, *every* NTCP or repository call on the
    grid must present a mapped, in-date credential.
    """

    def __init__(self, grid: "FleetGrid", *,
                 proxy_lifetime: float = 12 * 3600.0,
                 assertion_lifetime: float = 12 * 3600.0):
        self.grid = grid
        self.proxy_lifetime = proxy_lifetime
        self.assertion_lifetime = assertion_lifetime
        kernel = grid.kernel

        def clock() -> float:
            return kernel.now

        self._clock = clock
        self.crypto = Crypto()
        self.ca = CertificateAuthority(self.crypto, FLEET_CA_DN)
        cas_cred = self.ca.issue_credential(FLEET_CAS_DN, not_after=1e12)
        self.cas = CommunityAuthorizationService(self.crypto, cas_cred,
                                                 community="fleet")
        self.cas.define_group("experimenters", set(TENANT_RIGHTS))
        self.pool_gridmap = Gridmap()
        self.repo_gridmap = Gridmap()
        for site in grid.sites.values():
            site.container.rpc.checker = GsiChecker(
                self.crypto, [self.ca.certificate], self.pool_gridmap,
                clock)
        grid.repo_container.rpc.checker = GsiChecker(
            self.crypto, [self.ca.certificate], self.repo_gridmap, clock,
            cas=self.cas)
        self.tenants: dict[str, Tenant] = {}

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self.tenants

    def get(self, tenant_id: str) -> Tenant:
        """The registered tenant, or :class:`ConfigurationError` if unknown."""
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            raise ConfigurationError(f"tenant {tenant_id!r} is not "
                                     f"registered with this fleet")
        return tenant

    def register(self, tenant_id: str) -> Tenant:
        """Mint a tenant identity and admit it everywhere; idempotent."""
        existing = self.tenants.get(tenant_id)
        if existing is not None:
            return existing
        grid = self.grid
        config = grid.config
        subject = tenant_subject(tenant_id)
        credential = self.ca.issue_credential(subject, not_after=1e12)
        proxy = credential.delegate(now=grid.kernel.now,
                                    lifetime=self.proxy_lifetime)
        self.cas.add_member(subject)
        self.cas.add_to_group(subject, "experimenters")
        self.pool_gridmap.add(subject, f"pool-{tenant_id}")
        self.repo_gridmap.add(subject, f"repo-{tenant_id}")
        assertion = self.cas.issue_assertion(
            subject, now=self._clock(), lifetime=self.assertion_lifetime)
        authenticator = GsiAuthenticator(proxy, self._clock,
                                         cas_assertion=assertion)
        rpc = RpcClient(grid.network, "coord",
                        default_timeout=config.rpc_timeout,
                        default_retries=config.rpc_retries,
                        labels={"tenant": tenant_id})
        ntcp = NTCPClient(rpc, timeout=config.rpc_timeout,
                          retries=config.rpc_retries,
                          credential_factory=authenticator.credential_for)
        tenant = Tenant(
            tenant_id=tenant_id, subject=subject, credential=credential,
            proxy=proxy, authenticator=authenticator, rpc=rpc, ntcp=ntcp,
            telemetry=grid.kernel.telemetry.scoped(tenant=tenant_id))
        self.tenants[tenant_id] = tenant
        grid.kernel.emit("fleet.tenants", "tenant.registered",
                         tenant=tenant_id, subject=subject)
        return tenant

    def outsider_client(self, subject: str = OUTSIDER_DN) -> NTCPClient:
        """An NTCP client whose identity the fleet never admitted.

        The credential chain is valid (our CA signed it) but the subject
        is in no gridmap, so any call through this client is refused by
        GSI authorization with a ``SecurityError``.
        """
        grid = self.grid
        config = grid.config
        credential = self.ca.issue_credential(subject, not_after=1e12)
        proxy = credential.delegate(now=grid.kernel.now,
                                    lifetime=self.proxy_lifetime)
        authenticator = GsiAuthenticator(proxy, self._clock)
        rpc = RpcClient(grid.network, "coord",
                        default_timeout=config.rpc_timeout,
                        default_retries=0,
                        labels={"tenant": "outsider"})
        return NTCPClient(rpc, timeout=config.rpc_timeout, retries=0,
                          credential_factory=authenticator.credential_for)
