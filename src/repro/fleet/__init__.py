"""Multi-tenant experiment fleet over a shared NTCP site pool.

The paper's deployment runs one hybrid experiment at a time; the fleet
layer multiplexes many concurrent experiments — parameter sweeps, chaos
campaigns, Mini-MOST classrooms — over a fixed pool of shared sites:

* :mod:`repro.fleet.grid` builds the shared grid (``K`` pooled
  simulation sites, the coordinator host, the repository);
* :mod:`repro.fleet.pool` hands sites out as leases with FIFO +
  fair-share queueing and admission control;
* :mod:`repro.fleet.tenants` threads a per-tenant GSI identity through
  every NTCP and repository call, with tenant-labeled telemetry;
* :mod:`repro.fleet.scheduler` drives N experiments as deterministic
  kernel processes with per-tenant checkpoint/resume and per-lease
  breaker/failover state;
* :mod:`repro.fleet.observe` publishes the fleet roll-up as service
  data for monitors.

Quickstart::

    from repro.fleet import (FleetScheduler, SitePool, TenantRegistry,
                             ExperimentRequest, build_fleet_grid)

    grid = build_fleet_grid(8)
    pool = SitePool(grid.kernel, grid.sites.values())
    registry = TenantRegistry(grid)
    fleet = FleetScheduler(grid, pool, registry)
    for tenant in ("alice", "bob"):
        for run in range(3):
            fleet.submit(ExperimentRequest(
                tenant=tenant, run_id=f"{tenant}-r{run}",
                n_steps=25, n_sites=2))
    result = fleet.run()
    print(result.summary())
"""

from repro.fleet.grid import DEFAULT_POOL_SIZE, FleetGrid, build_fleet_grid
from repro.fleet.observe import ROLLUP_SDE, FleetStatusService
from repro.fleet.pool import AdmissionError, SiteLease, SitePool
from repro.fleet.scheduler import (
    ExperimentRequest,
    FleetResult,
    FleetScheduler,
    TenantOutcome,
    default_fleet_fault_policy,
    solo_displacement_history,
)
from repro.fleet.tenants import (
    OUTSIDER_DN,
    Tenant,
    TenantRegistry,
    tenant_subject,
)

__all__ = [
    "AdmissionError",
    "DEFAULT_POOL_SIZE",
    "ExperimentRequest",
    "FleetGrid",
    "FleetResult",
    "FleetScheduler",
    "FleetStatusService",
    "OUTSIDER_DN",
    "ROLLUP_SDE",
    "SiteLease",
    "SitePool",
    "Tenant",
    "TenantOutcome",
    "TenantRegistry",
    "build_fleet_grid",
    "default_fleet_fault_policy",
    "solo_displacement_history",
    "tenant_subject",
]
