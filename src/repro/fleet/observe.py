"""Fleet-level observability: the roll-up SDE and its grid service.

The scheduler periodically publishes a roll-up — queue depth, lease
waits, per-tenant step rates, degraded-tenant count — through a
:class:`FleetStatusService` hosted in the coordinator container, so any
grid client can ``findServiceData``/``subscribe`` to fleet health the
same way monitors watch a single experiment's SDEs.
"""

from __future__ import annotations

from typing import Any

from repro.ogsi import GridService

#: name of the roll-up service data element
ROLLUP_SDE = "fleet.rollup"


class FleetStatusService(GridService):
    """Publishes the fleet scheduler's roll-up as service data.

    SDE ``fleet.rollup`` holds the latest roll-up document (see
    :meth:`repro.fleet.scheduler.FleetScheduler.rollup` for the shape);
    operation ``getRollup`` returns it on demand.
    """

    def __init__(self, service_id: str = "fleet-status"):
        super().__init__(service_id)

    def on_attach(self) -> None:
        """Expose the roll-up SDE and its query operation."""
        self.service_data.set(ROLLUP_SDE, None)
        self.expose("getRollup", self._op_getRollup)

    def _op_getRollup(self, caller: Any) -> Any:
        return self.service_data.value(ROLLUP_SDE)

    def publish(self, rollup: dict[str, Any]) -> None:
        """Install a new roll-up document (notifies SDE subscribers)."""
        self.service_data.set(ROLLUP_SDE, rollup)
        self.emit("rollup.published", queue_depth=rollup.get("queue_depth"),
                  active_leases=rollup.get("active_leases"))
