"""The fleet campaign scheduler: N concurrent experiments, one shared grid.

:class:`FleetScheduler` is the multi-tenant replacement for the
one-deployment-one-coordinator shape: tenants submit
:class:`ExperimentRequest`\\ s (directly, or exported from an
:class:`~repro.most.session.ExperimentSession` via
:meth:`~repro.most.session.ExperimentSession.fleet_spec`), and the
scheduler drives every request as its own kernel process — acquire a
lease from the :class:`~repro.fleet.pool.SitePool`, provision fresh
substructures behind the leased NTCP servers, run a
:class:`~repro.coordinator.SimulationCoordinator` under the tenant's GSI
identity, optionally resume from the tenant's own checkpoint store on
abort, register the run in NMDS under a tenant-namespaced name, release
the lease.  Everything advances on one deterministic simulation clock.

Per-lease isolation: breakers, failover surrogates (own container port
per lease), checkpoint store, and NTCP counter attribution all live with
the lease, never with the shared site.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Generator

from repro.coordinator import (
    DegradationPolicy,
    ExperimentResult,
    FailoverManager,
    FaultPolicy,
    FaultTolerantFaultPolicy,
    SimulationCoordinator,
    SiteBinding,
    SubstructurePredictor,
    SurrogateSpec,
    records_from_payloads,
    resume_state_from_checkpoint,
)
from repro.fleet.observe import FleetStatusService
from repro.fleet.pool import AdmissionError, SiteLease, SitePool
from repro.most.assembly import provision_simulation_site
from repro.net import BreakerConfig, CircuitBreaker
from repro.ogsi import ServiceContainer
from repro.repository import CheckpointPolicy, InMemoryCheckpointStore
from repro.structural import (
    LinearSubstructure,
    StructuralModel,
    kanai_tajimi_record,
)
from repro.util.errors import ConfigurationError, ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.grid import FleetGrid
    from repro.fleet.tenants import Tenant, TenantRegistry
    from repro.most.session import ExperimentSession


def default_fleet_fault_policy() -> FaultTolerantFaultPolicy:
    """The retry schedule a fleet request gets when it names none.

    Shorter back-offs than the solo MOST schedule: a fleet tenant holding
    leased sites through a transient should retry briskly so the queue
    keeps moving.
    """
    return FaultTolerantFaultPolicy(max_attempts=12, backoff=5.0,
                                    backoff_factor=2.0, max_backoff=120.0)


@dataclass
class ExperimentRequest:
    """One tenant's experiment, as the fleet scheduler understands it.

    ``motion_scale`` scales the ground-motion PGA so tenants can sweep
    intensities; ``checkpoint_every > 0`` gives the run its own
    per-tenant checkpoint store and up to ``max_resumes`` same-lease
    resume incarnations on abort; ``degradation`` adds per-lease circuit
    breakers and surrogate failover.
    """

    tenant: str
    run_id: str
    n_steps: int = 25
    n_sites: int = 2
    motion_scale: float = 1.0
    fault_policy: FaultPolicy | None = None
    checkpoint_every: int = 0
    max_resumes: int = 1
    resume_delay: float = 60.0
    degradation: bool = False
    breaker_config: BreakerConfig | None = None
    pipeline_depth: int = 0

    @classmethod
    def from_session(cls, tenant: str, session: "ExperimentSession", *,
                     n_sites: int = 2,
                     motion_scale: float = 1.0) -> "ExperimentRequest":
        """Build a request from a composed (un-run) experiment session.

        The session's fault policy, resume cadence, degradation and
        pipeline settings carry over; its config's ``n_steps`` becomes
        the request length.
        """
        spec = session.fleet_spec()
        return cls(tenant=tenant, run_id=spec["run_id"],
                   n_steps=spec["n_steps"], n_sites=n_sites,
                   motion_scale=motion_scale,
                   fault_policy=spec["fault_policy"],
                   checkpoint_every=spec["checkpoint_every"],
                   degradation=spec["degradation"],
                   breaker_config=spec["breaker_config"],
                   pipeline_depth=spec["pipeline_depth"])


@dataclass
class TenantOutcome:
    """What one request produced: result, lease accounting, attribution."""

    request: ExperimentRequest
    result: ExperimentResult
    lease_id: str
    site_names: tuple[str, ...]
    lease_wait: float
    submitted_at: float
    granted_at: float
    finished_at: float
    resumes: int
    #: per-site NTCP counter deltas for the lease (at-most-once evidence)
    usage: dict[str, dict[str, int]]
    nmds_object_id: str | None = None

    @property
    def tenant(self) -> str:
        """The owning tenant id."""
        return self.request.tenant

    @property
    def run_id(self) -> str:
        """The experiment's run id."""
        return self.request.run_id

    @property
    def completed(self) -> bool:
        """Whether the final incarnation completed every step."""
        return self.result.completed

    @property
    def makespan(self) -> float:
        """Submit-to-finish simulated seconds, queueing included."""
        return self.finished_at - self.submitted_at

    def duplicate_executes(self) -> int:
        """Duplicate execute requests absorbed across the lease's sites."""
        return sum(delta["duplicate_executes"]
                   for delta in self.usage.values())

    def executed_total(self) -> int:
        """Physical/numerical executes performed across the lease's sites."""
        return sum(delta["executed"] for delta in self.usage.values())


@dataclass
class FleetResult:
    """The campaign's outcome: every tenant run plus fleet-wide stats."""

    outcomes: list[TenantOutcome]
    started_at: float
    finished_at: float
    peak_queue_depth: int

    def per_tenant(self) -> dict[str, dict[str, Any]]:
        """Roll the outcomes up by tenant (runs, steps, waits, completion)."""
        stats: dict[str, dict[str, Any]] = {}
        for outcome in self.outcomes:
            entry = stats.setdefault(outcome.tenant, {
                "runs": 0, "completed": 0, "steps": 0,
                "degraded_runs": 0, "duplicate_executes": 0,
                "lease_wait_total": 0.0, "lease_wait_max": 0.0,
                "completion_time": 0.0})
            entry["runs"] += 1
            entry["completed"] += 1 if outcome.completed else 0
            entry["steps"] += outcome.result.steps_completed
            entry["degraded_runs"] += \
                1 if outcome.result.degraded_steps else 0
            entry["duplicate_executes"] += outcome.duplicate_executes()
            entry["lease_wait_total"] += outcome.lease_wait
            entry["lease_wait_max"] = max(entry["lease_wait_max"],
                                          outcome.lease_wait)
            entry["completion_time"] = max(
                entry["completion_time"],
                outcome.finished_at - self.started_at)
        return stats

    def completion_ratio(self) -> float:
        """Max/min ratio of tenants' campaign completion times.

        The fairness figure the bench reports: a starved tenant finishes
        its runs much later than the rest, inflating this ratio.
        """
        times = [entry["completion_time"]
                 for entry in self.per_tenant().values()]
        if not times:
            return 1.0
        low = min(times)
        if low <= 0.0:
            return float("inf")
        return max(times) / low

    def summary(self) -> dict[str, Any]:
        """The fleet-run headline numbers in one dict."""
        waits = [outcome.lease_wait for outcome in self.outcomes]
        return {
            "experiments": len(self.outcomes),
            "completed": sum(1 for o in self.outcomes if o.completed),
            "tenants": len(self.per_tenant()),
            "duration": self.finished_at - self.started_at,
            "completion_ratio": self.completion_ratio(),
            "peak_queue_depth": self.peak_queue_depth,
            "duplicate_executes": sum(o.duplicate_executes()
                                      for o in self.outcomes),
            "lease_wait_max": max(waits, default=0.0),
            "lease_wait_mean": (sum(waits) / len(waits)) if waits else 0.0,
        }


class FleetScheduler:
    """Drives a campaign of experiments over one grid, pool, and registry.

    Construct one scheduler per grid (it deploys the fleet status service
    into the grid's coordinator container), :meth:`submit` requests, then
    :meth:`run` once — the deterministic event loop runs every request to
    completion and returns a :class:`FleetResult`.
    """

    def __init__(self, grid: "FleetGrid", pool: SitePool,
                 registry: "TenantRegistry", *,
                 rollup_interval: float = 30.0, monitor: bool = True):
        self.grid = grid
        self.pool = pool
        self.registry = registry
        self.rollup_interval = rollup_interval
        self.kernel = grid.kernel
        self._requests: list[ExperimentRequest] = []
        self._run_ids: set[str] = set()
        self.outcomes: list[TenantOutcome] = []
        self.checkpoint_stores: dict[str, InMemoryCheckpointStore] = {}
        self._live_steps: dict[str, int] = {}
        self._completed = 0
        self._failed = 0
        self._started_at = 0.0
        self._ran = False
        self._monitoring = False
        self._tenant_alerts: dict[str, int] = {}
        self.slo = None
        self.status: FleetStatusService | None = None
        if monitor:
            self.status = FleetStatusService()
            grid.coord_container.deploy(self.status)
        telemetry = self.kernel.telemetry
        self._g_completed = telemetry.gauge("fleet.sched.completed_runs")
        self._g_degraded = telemetry.gauge("fleet.sched.degraded_tenants")

    # -- submission ----------------------------------------------------------
    def submit(self, request: ExperimentRequest) -> ExperimentRequest:
        """Admit one request into the campaign (before :meth:`run`).

        Rejects duplicate run ids — transaction names on the shared NTCP
        servers embed the run id, so two tenants reusing one would break
        per-tenant at-most-once attribution — and requests the pool could
        never satisfy.
        """
        if self._ran:
            raise ConfigurationError(
                "the fleet scheduler already ran; build a new one")
        if not request.tenant:
            raise AdmissionError("a request needs a tenant id")
        if request.run_id in self._run_ids:
            raise AdmissionError(
                f"run id {request.run_id!r} is already submitted; run ids "
                f"must be fleet-unique")
        if request.n_steps < 1:
            raise AdmissionError(
                f"run {request.run_id!r} asks for {request.n_steps} steps")
        self.pool.validate_request(request.n_sites)
        self.registry.register(request.tenant)
        self._run_ids.add(request.run_id)
        self._requests.append(request)
        return request

    def submit_session(self, tenant: str, session: "ExperimentSession", *,
                       n_sites: int = 2,
                       motion_scale: float = 1.0) -> ExperimentRequest:
        """Admit a composed :class:`~repro.most.session.ExperimentSession`."""
        return self.submit(ExperimentRequest.from_session(
            tenant, session, n_sites=n_sites, motion_scale=motion_scale))

    # -- execution -----------------------------------------------------------
    def run(self) -> FleetResult:
        """Run every submitted request to completion; returns the result."""
        if self._ran:
            raise ConfigurationError(
                "the fleet scheduler already ran; build a new one")
        if not self._requests:
            raise ConfigurationError("no experiments submitted")
        self._ran = True
        self._started_at = self.kernel.now
        processes = [self.kernel.process(self._drive(request),
                                         name=f"fleet.{request.run_id}")
                     for request in self._requests]
        self._monitoring = True
        if self.status is not None:
            self.kernel.process(self._rollup_loop(), name="fleet.rollup")
        self.kernel.run(until=self.kernel.all_of(processes))
        self._monitoring = False
        if self.status is not None:
            self.status.publish(self.rollup())
        return FleetResult(outcomes=list(self.outcomes),
                           started_at=self._started_at,
                           finished_at=self.kernel.now,
                           peak_queue_depth=self.pool.peak_queue_depth)

    # -- observability -------------------------------------------------------
    def note_alert(self, tenant_id: str, kind: str = "slo_burn") -> None:
        """Attribute one raised alert to a tenant (shows in the rollup)."""
        self._tenant_alerts[tenant_id] = \
            self._tenant_alerts.get(tenant_id, 0) + 1
        self.kernel.emit("fleet.scheduler", "tenant.alert",
                         tenant=tenant_id, alert=kind)

    def attach_slo(self, evaluator) -> None:
        """Point the rollup's error-budget fields at an SLO evaluator
        (see :class:`repro.observatory.slo.SLOEvaluator`)."""
        self.slo = evaluator

    def rollup(self) -> dict[str, Any]:
        """The fleet roll-up document (published as SDE ``fleet.rollup``)."""
        now = self.kernel.now
        elapsed = max(now - self._started_at, 1e-9)
        degraded_tenants = {outcome.tenant for outcome in self.outcomes
                            if outcome.result.degraded_steps}
        tenants = {}
        runs_by_tenant: dict[str, int] = {}
        for outcome in self.outcomes:
            runs_by_tenant[outcome.tenant] = \
                runs_by_tenant.get(outcome.tenant, 0) + 1
        for tenant_id in sorted(self.registry.tenants):
            steps = self._live_steps.get(tenant_id, 0)
            tenants[tenant_id] = {
                "steps": steps,
                "step_rate": steps / elapsed,
                "runs_completed": runs_by_tenant.get(tenant_id, 0),
                "degraded": tenant_id in degraded_tenants,
                "alerts": self._tenant_alerts.get(tenant_id, 0),
                "error_budget_remaining": (
                    self.slo.budget_for_tenant(tenant_id)
                    if self.slo is not None else 1.0),
            }
        self._g_completed.set(self._completed)
        self._g_degraded.set(len(degraded_tenants))
        return {
            "time": now,
            "queue_depth": self.pool.queue_depth(),
            "free_sites": self.pool.free_sites(),
            "active_leases": len(self.pool.active),
            "experiments": {"submitted": len(self._requests),
                            "completed": self._completed,
                            "failed": self._failed},
            "degraded_tenants": len(degraded_tenants),
            "alerts": sum(self._tenant_alerts.values()),
            "slo": (self.slo.budget_remaining()
                    if self.slo is not None else {}),
            "tenants": tenants,
        }

    def _rollup_loop(self) -> Generator[Any, Any, None]:
        while self._monitoring:
            self.status.publish(self.rollup())
            yield self.kernel.timeout(self.rollup_interval)

    # -- per-request drive ---------------------------------------------------
    def _drive(self, request: ExperimentRequest
               ) -> Generator[Any, Any, None]:
        tenant = self.registry.get(request.tenant)
        config = self.grid.config
        submitted_at = self.kernel.now
        lease: SiteLease = yield self.pool.acquire(request.tenant,
                                                   request.n_sites)
        tenant.telemetry.histogram("fleet.tenant.lease_wait").observe(
            lease.wait)
        k_each = config.k_total / len(lease.sites)
        for site in lease.sites:
            provision_simulation_site(
                site, self.kernel,
                LinearSubstructure(f"{site.name}-{request.run_id}",
                                   [[k_each]], [0]),
                compute_time=config.ncsa_compute)
        motion = kanai_tajimi_record(
            duration=request.n_steps * config.dt, dt=config.dt,
            pga=config.pga * request.motion_scale, seed=config.motion_seed)
        model = StructuralModel(
            mass=[[config.mass]], stiffness=[[config.k_total]]
        ).with_rayleigh_damping(config.damping_ratio)
        bindings = [SiteBinding(site.name, site.handle, dof_indices=[0])
                    for site in lease.sites]
        fault_policy = request.fault_policy or default_fleet_fault_policy()
        breakers = None
        failover = None
        if request.degradation:
            breakers = {site.name: CircuitBreaker(
                self.kernel, f"{request.run_id}:{site.name}",
                request.breaker_config) for site in lease.sites}
            failover = self._make_failover(request, lease, k_each)
        predictor = None
        if request.pipeline_depth > 0:
            predictor = SubstructurePredictor({
                site.name: LinearSubstructure(
                    f"{site.name}-predict-{request.run_id}",
                    [[k_each]], [0])
                for site in lease.sites})
        store = None
        checkpoint_policy = None
        if request.checkpoint_every > 0:
            store = InMemoryCheckpointStore()
            checkpoint_policy = CheckpointPolicy(
                every_n_steps=request.checkpoint_every, on_abort=True)
            self.checkpoint_stores[request.run_id] = store

        steps_counter = tenant.telemetry.counter("fleet.tenant.steps")

        def on_step(record: Any, tenant_id: str = request.tenant) -> None:
            self._live_steps[tenant_id] = \
                self._live_steps.get(tenant_id, 0) + 1
            steps_counter.inc()

        def make_coordinator(state: Any = None,
                             prior_records: Any = ()) -> SimulationCoordinator:
            return SimulationCoordinator(
                run_id=request.run_id, client=tenant.ntcp, model=model,
                motion=motion, sites=bindings, fault_policy=fault_policy,
                execution_timeout=config.execution_timeout,
                on_step=on_step, checkpoint_store=store,
                checkpoint_policy=checkpoint_policy, state=state,
                prior_records=prior_records, breakers=breakers,
                failover=failover,
                pipeline_depth=request.pipeline_depth, predictor=predictor)

        result: ExperimentResult = yield self.kernel.process(
            make_coordinator().run(),
            name=f"fleet.{request.run_id}.coordinator")
        resumes = 0
        # Resume on the SAME lease: the sites still hold this tenant's
        # substructure state, and at-most-once transaction names make the
        # overlap with the aborted incarnation harmless.
        while (not result.completed and store is not None
               and resumes < request.max_resumes):
            yield self.kernel.timeout(request.resume_delay)
            doc, payloads = yield from store.load_history(request.run_id)
            if doc is None:
                break
            resumes += 1
            result = yield self.kernel.process(
                make_coordinator(
                    state=resume_state_from_checkpoint(doc),
                    prior_records=records_from_payloads(payloads)).run(),
                name=f"fleet.{request.run_id}.resume{resumes}")
        nmds_object_id = yield from self._register_run(tenant, request,
                                                       lease, result)
        self.pool.release(lease)
        finished_at = self.kernel.now
        if result.completed:
            self._completed += 1
            tenant.telemetry.counter("fleet.tenant.runs_completed").inc()
        else:
            self._failed += 1
            tenant.telemetry.counter("fleet.tenant.runs_failed").inc()
        self.outcomes.append(TenantOutcome(
            request=request, result=result, lease_id=lease.lease_id,
            site_names=lease.site_names, lease_wait=lease.wait,
            submitted_at=submitted_at, granted_at=lease.granted_at,
            finished_at=finished_at, resumes=resumes,
            usage=lease.metrics_delta(), nmds_object_id=nmds_object_id))

    def _make_failover(self, request: ExperimentRequest, lease: SiteLease,
                       k_each: float) -> FailoverManager:
        """Per-lease surrogate failover on a lease-unique container port."""
        container = ServiceContainer(self.grid.network, "coord",
                                     port=f"ogsi-fo-{lease.lease_id}")
        specs = [
            SurrogateSpec(
                site=site.name,
                substructure_factory=(
                    lambda site=site: LinearSubstructure(
                        f"{site.name}-surrogate-{request.run_id}",
                        [[k_each]], [0])),
                compute_time=self.grid.config.ncsa_compute,
                policy=None)
            for site in lease.sites]
        return FailoverManager(container=container, specs=specs,
                               policy=DegradationPolicy())

    def _register_run(self, tenant: "Tenant", request: ExperimentRequest,
                      lease: SiteLease, result: ExperimentResult
                      ) -> Generator[Any, Any, str | None]:
        """Register the run in NMDS under a tenant-namespaced name.

        Authorized as the tenant (GSI token + CAS ``repository:write``).
        A repository outage must not take the whole campaign down, so
        failures are logged and swallowed.
        """
        handle = self.grid.nmds_handle
        fields = {
            "name": f"fleet/{tenant.tenant_id}/{request.run_id}",
            "tenant": tenant.tenant_id,
            "run_id": request.run_id,
            "sites": list(lease.site_names),
            "steps": result.steps_completed,
            "completed": result.completed,
            "degraded_steps": result.degraded_steps,
        }
        try:
            object_id = yield from tenant.rpc.call(
                handle.host, handle.port, "invoke",
                {"service_id": handle.service_id,
                 "operation": "createObject",
                 "params": {"object_type": "fleet-run", "fields": fields}},
                credential=tenant.authenticator.token("invoke"))
        except ReproError as exc:
            self.kernel.emit("fleet.sched", "nmds.register_failed",
                             run_id=request.run_id, tenant=tenant.tenant_id,
                             error=f"{type(exc).__name__}: {exc}")
            return None
        return object_id


def solo_displacement_history(request: ExperimentRequest, *,
                              config: Any = None,
                              network_seed: int | None = None) -> Any:
    """Run ``request`` alone on a fresh grid; return its history.

    The bit-exactness reference: an undegraded tenant's displacement
    history in a crowded fleet must equal this solo run exactly, because
    nothing on the shared grid (fixed-latency links, per-lease fresh
    substructure state, unique transaction names) couples tenants
    numerically.
    """
    from repro.fleet.grid import build_fleet_grid
    from repro.fleet.tenants import TenantRegistry

    grid = build_fleet_grid(request.n_sites, config=config,
                            network_seed=network_seed)
    pool = SitePool(grid.kernel, grid.sites.values())
    registry = TenantRegistry(grid)
    scheduler = FleetScheduler(grid, pool, registry, monitor=False)
    scheduler.submit(replace(request))
    fleet_result = scheduler.run()
    return fleet_result.outcomes[0].result.displacement_history()
