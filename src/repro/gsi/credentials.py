"""Certificates, certificate authorities, credentials, proxy delegation."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.gsi.crypto import Crypto, KeyPair
from repro.util.errors import SecurityError


@dataclass(frozen=True)
class Certificate:
    """An X.509-shaped certificate binding a subject to a public key.

    ``is_proxy`` marks GSI proxy certificates: short-lived certs issued by an
    end entity (or another proxy) whose subject extends the issuer's subject
    with a ``/proxy`` component, enabling single-sign-on delegation.
    """

    subject: str
    issuer: str
    public_key: str
    serial: int
    not_before: float
    not_after: float
    is_ca: bool = False
    is_proxy: bool = False
    signature: str = ""

    def canonical(self) -> str:
        """Deterministic byte-string the signature covers."""
        return "|".join([
            self.subject, self.issuer, self.public_key, str(self.serial),
            f"{self.not_before:.6f}", f"{self.not_after:.6f}",
            str(self.is_ca), str(self.is_proxy),
        ])

    def valid_at(self, now: float) -> bool:
        """True if ``now`` falls inside the certificate's validity window."""
        return self.not_before <= now <= self.not_after


class CertificateAuthority:
    """A trust anchor that issues identity certificates.

    >>> world = Crypto()
    >>> ca = CertificateAuthority(world, "/C=US/O=NEESgrid/CN=NEES CA")
    >>> cred = ca.issue_credential("/O=NEESgrid/CN=Alice", not_after=3600.0)
    >>> validate_chain(world, cred.chain, [ca.certificate], now=10.0).subject
    '/O=NEESgrid/CN=Alice'
    """

    def __init__(self, crypto: Crypto, name: str, *,
                 not_before: float = 0.0, not_after: float = float("inf")):
        self.crypto = crypto
        self.name = name
        self.keypair = crypto.keygen()
        self._serial = 0
        cert = Certificate(subject=name, issuer=name,
                           public_key=self.keypair.public, serial=self._next(),
                           not_before=not_before, not_after=not_after,
                           is_ca=True)
        self.certificate = replace(
            cert, signature=crypto.sign(self.keypair.private, cert.canonical()))

    def _next(self) -> int:
        self._serial += 1
        return self._serial

    def issue(self, subject: str, public_key: str, *, not_before: float = 0.0,
              not_after: float = float("inf"), is_ca: bool = False) -> Certificate:
        """Sign and return a certificate for ``subject``."""
        cert = Certificate(subject=subject, issuer=self.name,
                           public_key=public_key, serial=self._next(),
                           not_before=not_before, not_after=not_after,
                           is_ca=is_ca)
        return replace(cert, signature=self.crypto.sign(
            self.keypair.private, cert.canonical()))

    def issue_credential(self, subject: str, *, not_before: float = 0.0,
                         not_after: float = float("inf")) -> "Credential":
        """Generate a key pair and a certificate for it, bundled."""
        keys = self.crypto.keygen()
        cert = self.issue(subject, keys.public, not_before=not_before,
                          not_after=not_after)
        return Credential(crypto=self.crypto, keypair=keys, chain=(cert,))


@dataclass
class Credential:
    """A private key plus its certificate chain (leaf first).

    A credential may be an identity credential (chain of one, CA-issued) or a
    proxy credential whose chain runs proxy → ... → identity certificate.
    """

    crypto: Crypto
    keypair: KeyPair
    chain: tuple[Certificate, ...]
    _proxy_count: int = field(default=0, repr=False)

    @property
    def certificate(self) -> Certificate:
        """The leaf certificate (first element of the chain)."""
        return self.chain[0]

    @property
    def subject(self) -> str:
        """The leaf certificate's subject DN (proxy components included)."""
        return self.chain[0].subject

    @property
    def identity(self) -> str:
        """The end-entity subject, with any ``/proxy`` components stripped."""
        subject = self.subject
        idx = subject.find("/proxy-")
        return subject if idx < 0 else subject[:idx]

    def sign(self, data: str) -> str:
        """Sign arbitrary data with this credential's private key."""
        return self.crypto.sign(self.keypair.private, data)

    def delegate(self, *, now: float, lifetime: float = 12 * 3600.0) -> "Credential":
        """Create a proxy credential (GSI single sign-on / delegation).

        The proxy gets a fresh key pair; its certificate is signed by *this*
        credential (not a CA), has a bounded lifetime, and extends the
        subject name — mirroring RFC 3820 proxy certificates.
        """
        self._proxy_count += 1
        keys = self.crypto.keygen()
        cert = Certificate(
            subject=f"{self.subject}/proxy-{self._proxy_count}",
            issuer=self.subject, public_key=keys.public,
            serial=self._proxy_count, not_before=now,
            not_after=min(now + lifetime, self.certificate.not_after),
            is_proxy=True)
        signed = replace(cert, signature=self.sign(cert.canonical()))
        return Credential(crypto=self.crypto, keypair=keys,
                          chain=(signed,) + self.chain)


def validate_chain(crypto: Crypto, chain: Iterable[Certificate],
                   trust_anchors: Iterable[Certificate], *, now: float,
                   max_proxy_depth: int = 8) -> Certificate:
    """Validate a certificate chain; return the leaf certificate.

    Checks, leaf to root: validity windows, signature of each certificate by
    its successor's key (or by a trust anchor for the last), proxy naming
    rules (a proxy's subject must extend its issuer's subject), and that the
    chain terminates at a configured trust anchor.  Raises
    :class:`SecurityError` on any violation.
    """
    chain = list(chain)
    if not chain:
        raise SecurityError("empty certificate chain")
    anchors = {c.public_key: c for c in trust_anchors}
    proxy_depth = 0
    for i, cert in enumerate(chain):
        if not cert.valid_at(now):
            raise SecurityError(
                f"certificate {cert.subject!r} not valid at t={now}")
        if cert.is_proxy:
            proxy_depth += 1
            if proxy_depth > max_proxy_depth:
                raise SecurityError("proxy chain too deep")
            if not cert.subject.startswith(cert.issuer + "/"):
                raise SecurityError(
                    f"proxy subject {cert.subject!r} does not extend issuer")
        issuer_cert = chain[i + 1] if i + 1 < len(chain) else None
        if issuer_cert is not None:
            if issuer_cert.subject != cert.issuer:
                raise SecurityError(
                    f"chain break: {cert.subject!r} issued by {cert.issuer!r} "
                    f"but next cert is {issuer_cert.subject!r}")
            if not cert.is_proxy and not issuer_cert.is_ca:
                raise SecurityError(
                    f"non-CA {issuer_cert.subject!r} issued identity cert")
            crypto.require_valid(issuer_cert.public_key, cert.canonical(),
                                 cert.signature,
                                 what=f"signature on {cert.subject!r}")
        else:
            # Chain root: must be signed by (or be) a trust anchor.
            anchor = None
            for a in anchors.values():
                if a.subject == cert.issuer and crypto.verify(
                        a.public_key, cert.canonical(), cert.signature):
                    anchor = a
                    break
            if anchor is None:
                raise SecurityError(
                    f"chain for {chain[0].subject!r} does not terminate at a "
                    f"trust anchor (root issuer {cert.issuer!r})")
    return chain[0]
