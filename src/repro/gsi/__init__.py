"""Simulated Grid Security Infrastructure (GSI).

The paper secures all NEESgrid communication with GSI: X.509 identity
certificates, proxy-certificate delegation, mutual authentication, per-site
authorization via gridmap files, and (planned, §2.3) the Community
Authorization Service (CAS).  Real X.509/TLS is unavailable offline and
irrelevant to the architecture, so this package reproduces GSI's *protocol
structure* over a toy-but-faithful crypto substrate:

* :class:`~repro.gsi.crypto.Crypto` — keypairs, signing and verification
  with possession semantics (you must hold the private key object to sign);
* :class:`~repro.gsi.credentials.CertificateAuthority` /
  :class:`~repro.gsi.credentials.Credential` — certificate issuance, chain
  validation, expiry, and proxy delegation with depth tracking;
* :class:`~repro.gsi.authz.Gridmap` — subject → local-account mapping and
  method-level access control, as each MOST site enforced;
* :class:`~repro.gsi.cas.CommunityAuthorizationService` — signed community
  rights assertions (the CAS of reference [17]);
* :class:`~repro.gsi.session.GsiAuthenticator` — produces per-request
  signed tokens, and :class:`~repro.gsi.session.GsiChecker` plugs into
  :class:`repro.net.rpc.RpcService` to verify them.
"""

from repro.gsi.crypto import Crypto, KeyPair
from repro.gsi.credentials import (
    Certificate,
    CertificateAuthority,
    Credential,
    validate_chain,
)
from repro.gsi.authz import Gridmap, Principal
from repro.gsi.cas import CasAssertion, CommunityAuthorizationService
from repro.gsi.session import GsiAuthenticator, GsiChecker, GsiToken

__all__ = [
    "Crypto",
    "KeyPair",
    "Certificate",
    "CertificateAuthority",
    "Credential",
    "validate_chain",
    "Gridmap",
    "Principal",
    "CasAssertion",
    "CommunityAuthorizationService",
    "GsiAuthenticator",
    "GsiChecker",
    "GsiToken",
]
