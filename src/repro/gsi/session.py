"""Message-level GSI authentication for RPC.

A :class:`GsiAuthenticator` wraps a credential and mints a :class:`GsiToken`
per request: the full certificate chain plus a signature (by the leaf key)
over the method name and timestamp, which prevents replaying a token against
a different method long after capture.  A :class:`GsiChecker` installed as an
:class:`repro.net.rpc.RpcService` ``checker`` validates the chain against the
site's trust anchors, checks token freshness, optionally verifies a CAS
assertion, and finally authorizes through the site gridmap — returning the
:class:`~repro.gsi.authz.Principal` handed to service handlers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.gsi.authz import Gridmap, Principal
from repro.gsi.cas import CasAssertion, CommunityAuthorizationService
from repro.gsi.credentials import Certificate, Credential, validate_chain
from repro.gsi.crypto import Crypto
from repro.util.errors import SecurityError


@dataclass(frozen=True)
class GsiToken:
    """The credential object attached to each authenticated RPC request."""

    chain: tuple[Certificate, ...]
    method: str
    timestamp: float
    signature: str
    cas_assertion: CasAssertion | None = None

    def signed_payload(self) -> str:
        """The method+timestamp string the token's signature covers."""
        return f"{self.method}|{self.timestamp:.6f}"


class GsiAuthenticator:
    """Client side: mints per-request tokens from a (proxy) credential."""

    def __init__(self, credential: Credential,
                 clock: Callable[[], float],
                 cas_assertion: CasAssertion | None = None):
        self.credential = credential
        self.clock = clock
        self.cas_assertion = cas_assertion

    def token(self, method: str) -> GsiToken:
        """A fresh token authenticating a call to ``method`` right now."""
        t = GsiToken(chain=self.credential.chain, method=method,
                     timestamp=self.clock(), signature="",
                     cas_assertion=self.cas_assertion)
        return replace(t, signature=self.credential.sign(t.signed_payload()))

    def credential_for(self, method: str) -> GsiToken:
        """Alias used as the RPC ``credential=`` argument factory."""
        return self.token(method)


class GsiChecker:
    """Server side: validates tokens; plugs into ``RpcService(checker=...)``.

    Checks, in order: token shape, chain validity against trust anchors,
    leaf signature over (method, timestamp), clock-skew window, optional CAS
    assertion (bound to the caller's identity), then gridmap authorization.
    """

    def __init__(self, crypto: Crypto, trust_anchors: list[Certificate],
                 gridmap: Gridmap, clock: Callable[[], float], *,
                 max_skew: float = 300.0,
                 cas: CommunityAuthorizationService | None = None,
                 required_right: str | None = None):
        self.crypto = crypto
        self.trust_anchors = list(trust_anchors)
        self.gridmap = gridmap
        self.clock = clock
        self.max_skew = max_skew
        self.cas = cas
        self.required_right = required_right

    def __call__(self, credential: object, method: str) -> Principal:
        if not isinstance(credential, GsiToken):
            raise SecurityError("request not GSI-authenticated")
        token = credential
        if token.method != method:
            raise SecurityError(
                f"token minted for {token.method!r} used on {method!r}")
        now = self.clock()
        if abs(now - token.timestamp) > self.max_skew:
            raise SecurityError("token timestamp outside skew window")
        leaf = validate_chain(self.crypto, token.chain, self.trust_anchors,
                              now=now)
        self.crypto.require_valid(leaf.public_key, token.signed_payload(),
                                  token.signature, what="request signature")
        # Identity = end-entity subject (proxies stripped): sites map people,
        # not individual proxies.
        identity = leaf.subject
        idx = identity.find("/proxy-")
        if idx >= 0:
            identity = identity[:idx]
        rights: frozenset[str] = frozenset()
        if self.cas is not None and token.cas_assertion is not None:
            rights = self.cas.verify_assertion(
                token.cas_assertion, now=now, expected_subject=identity)
        if self.required_right is not None and self.required_right not in rights:
            raise SecurityError(
                f"missing CAS right {self.required_right!r} for {identity!r}")
        principal = self.gridmap.authorize(identity, method)
        return Principal(subject=principal.subject,
                         local_user=principal.local_user, rights=rights)
