"""Community Authorization Service (CAS).

The paper (§2.3) plans CAS-based access control for the data repository:
instead of every site maintaining per-user ACLs, a community server holds
the membership and rights database and issues *signed assertions* that a
user presents alongside their credential.  Resources then only need to
trust the CAS key.  This module implements that flow: membership and rights
management, assertion issuance with expiry, and verification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gsi.credentials import Credential
from repro.gsi.crypto import Crypto
from repro.util.errors import SecurityError


@dataclass(frozen=True)
class CasAssertion:
    """A signed statement: ``subject`` holds ``rights`` until ``not_after``.

    Rights are strings of the form ``"<resource>:<action>"``, e.g.
    ``"repository:write"`` or ``"ntcp.uiuc:propose"``.
    """

    subject: str
    community: str
    rights: frozenset[str]
    issued_at: float
    not_after: float
    signature: str = ""

    def canonical(self) -> str:
        """The deterministic string the CAS signature covers."""
        return "|".join([self.subject, self.community,
                         ",".join(sorted(self.rights)),
                         f"{self.issued_at:.6f}", f"{self.not_after:.6f}"])


class CommunityAuthorizationService:
    """Holds community membership/rights; issues and verifies assertions."""

    def __init__(self, crypto: Crypto, credential: Credential,
                 community: str = "NEESgrid"):
        self.crypto = crypto
        self.credential = credential
        self.community = community
        self._members: dict[str, set[str]] = {}
        self._groups: dict[str, set[str]] = {}  # group -> rights
        self._group_members: dict[str, set[str]] = {}

    # -- administration ------------------------------------------------------
    def add_member(self, subject: str, rights: set[str] | None = None) -> None:
        """Enroll ``subject`` in the community with optional initial rights."""
        self._members.setdefault(subject, set()).update(rights or set())

    def grant(self, subject: str, right: str) -> None:
        """Add one ``"<resource>:<action>"`` right to an enrolled member."""
        if subject not in self._members:
            raise SecurityError(f"{subject!r} is not a community member")
        self._members[subject].add(right)

    def revoke(self, subject: str, right: str) -> None:
        """Remove a direct grant; group-derived rights are unaffected."""
        self._members.get(subject, set()).discard(right)

    def define_group(self, group: str, rights: set[str]) -> None:
        """Create (or redefine) a named rights bundle."""
        self._groups[group] = set(rights)

    def add_to_group(self, subject: str, group: str) -> None:
        """Give an enrolled member every right the group carries."""
        if group not in self._groups:
            raise SecurityError(f"unknown group {group!r}")
        if subject not in self._members:
            raise SecurityError(f"{subject!r} is not a community member")
        self._group_members.setdefault(group, set()).add(subject)

    def rights_of(self, subject: str) -> frozenset[str]:
        """Effective rights: direct grants plus all group rights."""
        if subject not in self._members:
            raise SecurityError(f"{subject!r} is not a community member")
        rights = set(self._members[subject])
        for group, members in self._group_members.items():
            if subject in members:
                rights |= self._groups[group]
        return frozenset(rights)

    # -- protocol --------------------------------------------------------------
    def issue_assertion(self, subject: str, *, now: float,
                        lifetime: float = 8 * 3600.0) -> CasAssertion:
        """Issue a signed rights assertion for a member."""
        rights = self.rights_of(subject)
        assertion = CasAssertion(subject=subject, community=self.community,
                                 rights=rights, issued_at=now,
                                 not_after=now + lifetime)
        sig = self.credential.sign(assertion.canonical())
        return CasAssertion(subject=assertion.subject,
                            community=assertion.community,
                            rights=assertion.rights,
                            issued_at=assertion.issued_at,
                            not_after=assertion.not_after, signature=sig)

    def verify_assertion(self, assertion: CasAssertion, *, now: float,
                         expected_subject: str | None = None) -> frozenset[str]:
        """Validate signature/expiry/subject binding; return the rights."""
        if now > assertion.not_after:
            raise SecurityError("CAS assertion expired")
        if expected_subject is not None and assertion.subject != expected_subject:
            raise SecurityError(
                f"CAS assertion for {assertion.subject!r} presented by "
                f"{expected_subject!r}")
        self.crypto.require_valid(
            self.credential.keypair.public, assertion.canonical(),
            assertion.signature, what="CAS assertion signature")
        return assertion.rights
