"""Site-local authorization: gridmap files and method-level policy.

Each NEESgrid site retained control over who could do what to its equipment
("facility managers want to retain some control over what commands are
acceptable").  The first line of that control is the classic Globus gridmap
file — a mapping from certificate subject to a local account — plus an
optional per-method access list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import SecurityError


@dataclass(frozen=True)
class Principal:
    """The authenticated, authorized caller handed to service handlers."""

    subject: str
    local_user: str
    rights: frozenset[str] = frozenset()

    def has_right(self, right: str) -> bool:
        """True if the caller's CAS assertion granted ``right``."""
        return right in self.rights


@dataclass
class Gridmap:
    """Subject → local user mapping with optional per-method ACLs.

    ``method_acl`` maps method names to the set of local users allowed to
    invoke them; methods absent from the ACL are open to every mapped user.
    """

    entries: dict[str, str] = field(default_factory=dict)
    method_acl: dict[str, set[str]] = field(default_factory=dict)

    def add(self, subject: str, local_user: str) -> None:
        """Map ``subject`` to ``local_user`` (replacing any prior entry)."""
        self.entries[subject] = local_user

    def remove(self, subject: str) -> None:
        """Drop ``subject``'s mapping; silently ignores unknown subjects."""
        self.entries.pop(subject, None)

    def restrict(self, method: str, local_users: set[str]) -> None:
        """Limit ``method`` to the given local users."""
        self.method_acl[method] = set(local_users)

    def map_subject(self, subject: str) -> str:
        """Resolve a subject to a local user or raise :class:`SecurityError`."""
        user = self.entries.get(subject)
        if user is None:
            raise SecurityError(f"subject {subject!r} not in gridmap")
        return user

    def authorize(self, subject: str, method: str) -> Principal:
        """Map and check method access; returns the :class:`Principal`."""
        user = self.map_subject(subject)
        acl = self.method_acl.get(method)
        if acl is not None and user not in acl:
            raise SecurityError(
                f"user {user!r} (subject {subject!r}) may not call {method!r}")
        return Principal(subject=subject, local_user=user)
