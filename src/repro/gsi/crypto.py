"""Toy cryptographic substrate with possession semantics.

This is *not* real cryptography — the substitution rule in DESIGN.md applies.
What matters for reproducing the paper's architecture is the capability
structure: only a holder of the private key can produce a signature that
verifies against the matching public key, and verification needs only the
public key.  We get that by deriving signatures from an HMAC-like hash keyed
on the private key, with a per-run registry that lets verifiers check a
signature given just the public key.  Within the simulation, code that does
not hold a :class:`KeyPair`'s private string cannot forge, which is the
property every GSI flow (mutual auth, delegation, CAS assertions) relies on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.util.errors import SecurityError


def _h(*parts: str) -> str:
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


@dataclass(frozen=True)
class KeyPair:
    """A public/private key pair; hold the object to be able to sign."""

    public: str
    private: str


class Crypto:
    """Per-run crypto world: keygen, sign, verify.

    The registry maps public → private so that :meth:`verify` can recompute
    the keyed hash.  The registry is an implementation shortcut for the
    simulation; protocol code only ever passes *public* keys around.
    """

    def __init__(self, rng: np.random.Generator | None = None):
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._registry: dict[str, str] = {}

    def keygen(self) -> KeyPair:
        """Generate a fresh key pair and register it for verification."""
        private = _h("priv", str(self._rng.integers(0, 2**63)),
                     str(len(self._registry)))
        public = "pub:" + _h("pub", private)[:24]
        self._registry[public] = private
        return KeyPair(public=public, private=private)

    def sign(self, private: str, data: str) -> str:
        """Signature over ``data`` by the holder of ``private``."""
        return _h("sig", private, data)

    def verify(self, public: str, data: str, signature: str) -> bool:
        """True iff ``signature`` was produced over ``data`` by the private
        key matching ``public``."""
        private = self._registry.get(public)
        if private is None:
            return False
        return self.sign(private, data) == signature

    def require_valid(self, public: str, data: str, signature: str,
                      what: str = "signature") -> None:
        """Verify or raise :class:`SecurityError`."""
        if not self.verify(public, data, signature):
            raise SecurityError(f"invalid {what}")
