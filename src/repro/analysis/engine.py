"""The lint engine: findings, the rule registry, and the file walker.

The engine is deliberately small: a :class:`Rule` is an object with a
code (``RPR0xx``), a one-line invariant, and a ``check(ctx)`` method that
yields :class:`Finding` objects for one parsed file.  Everything
repo-specific lives in :mod:`repro.analysis.rules`; the NTCP
protocol-conformance checks (``RPR1xx``) live in
:mod:`repro.analysis.protocol` because they introspect live classes
rather than source trees.

Suppression follows the ``# noqa`` convention: a bare ``# noqa`` on the
offending line silences every code, ``# noqa: RPR003`` (comma-separated
for several) silences just those codes.  Suppressed findings are counted
so reports can surface how much is being waved through.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

#: code reserved for files the engine cannot parse at all
PARSE_ERROR_CODE = "RPR000"

#: directories never descended into when walking paths
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              "out", ".ruff_cache"}

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<codes>:\s*[A-Z]+\d+(?:[,\s]+[A-Z]+\d+)*)?", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable ordering: path, then line, column, code."""
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping, inverse of :meth:`from_dict`."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(path=data["path"], line=int(data["line"]),
                   col=int(data["col"]), code=data["code"],
                   message=data["message"])

    def render(self) -> str:
        """The conventional ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """One parsed source file, handed to every rule.

    Attributes:
        path: display path (as given, normalized to ``/`` separators).
        module: best-effort dotted module name (``repro.net.rpc``), used
            by rules that scope themselves to subsystems.
        tree: the parsed AST.
        lines: raw source lines, for ``noqa`` scanning.
    """

    def __init__(self, path: str, source: str, module: str):
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)

    def finding(self, node: ast.AST | int, code: str, message: str) -> Finding:
        """A :class:`Finding` located at ``node`` (or a literal line)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(path=self.path, line=line, col=col, code=code,
                       message=message)


class Rule:
    """Base class for AST rules; subclasses register via :func:`register`."""

    #: unique ``RPR0xx`` code
    code: str = "RPR0XX"
    #: short kebab-ish identifier used in ``--list-rules``
    name: str = "unnamed"
    #: the one-line invariant this rule enforces
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield every violation of this rule in one parsed file."""
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index the rule by its code."""
    rule = cls()
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered AST rules, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def suppressed_codes(line: str) -> set[str] | None:
    """Codes silenced by a ``# noqa`` comment on ``line``.

    Returns ``None`` when there is no noqa comment, the empty set for a
    bare ``# noqa`` (which silences everything), or the explicit code set.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return set()
    return {c.upper() for c in re.findall(r"[A-Za-z]+\d+", codes)}


def module_name_for(path: str | pathlib.Path) -> str:
    """Best-effort dotted module name for a file path.

    Anchors at a ``src`` directory when one appears in the path (the
    layout this repo uses); otherwise falls back to the path itself with
    separators turned into dots.
    """
    parts = list(pathlib.PurePath(path).parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    name = ".".join(parts)
    if name.endswith(".py"):
        name = name[: -len(".py")]
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


#: parsed-file cache shared by the per-file rules and the whole-program
#: pass, keyed by path and invalidated on (mtime_ns, size) changes.
_CONTEXT_CACHE: dict[str, tuple[tuple[int, int], FileContext]] = {}


def load_context(path: str | pathlib.Path) -> FileContext:
    """Parse ``path`` into a :class:`FileContext`, memoized on mtime+size.

    Every consumer that walks the tree — the per-file rules, the project
    call-graph index, the dataflow pass — goes through this cache, so a
    source file is read and parsed at most once per run.  Raises
    ``SyntaxError`` for unparseable files (callers turn that into an
    ``RPR000`` finding) and ``OSError`` for unreadable ones.
    """
    key = str(path)
    stat = pathlib.Path(path).stat()
    sig = (stat.st_mtime_ns, stat.st_size)
    cached = _CONTEXT_CACHE.get(key)
    if cached is not None and cached[0] == sig:
        return cached[1]
    source = pathlib.Path(path).read_text(encoding="utf-8")
    ctx = FileContext(path=key, source=source, module=module_name_for(path))
    _CONTEXT_CACHE[key] = (sig, ctx)
    return ctx


def clear_context_cache() -> None:
    """Drop every cached parse (tests that rewrite files on disk)."""
    _CONTEXT_CACHE.clear()


@dataclass
class AnalysisResult:
    """What one analysis run produced."""

    findings: list[Finding]
    files: int = 0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """True when no finding survived suppression."""
        return not self.findings

    def counts(self) -> dict[str, int]:
        """Finding tallies per rule code, sorted by code."""
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return dict(sorted(out.items()))

    def extend(self, findings: Iterable[Finding]) -> None:
        """Merge more findings in, keeping the stable sort order."""
        self.findings.extend(findings)
        self.findings.sort(key=Finding.sort_key)


def _select_rules(select: Iterable[str] | None) -> list[Rule]:
    if select is None:
        return all_rules()
    wanted = {code.upper() for code in select}
    unknown = wanted - set(_REGISTRY)
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return [rule for rule in all_rules() if rule.code in wanted]


def admit_findings(ctx: FileContext, findings: Iterable[Finding],
                   result: AnalysisResult) -> None:
    """Add ``findings`` to ``result``, honouring ``# noqa`` suppressions.

    Shared by the per-file rule runner and the whole-program passes so a
    ``# noqa: RPR001`` on a call site silences the inter-procedural
    variant of the rule exactly like the per-file one.
    """
    for finding in findings:
        line = ""
        if 1 <= finding.line <= len(ctx.lines):
            line = ctx.lines[finding.line - 1]
        noqa = suppressed_codes(line)
        if noqa is not None and (not noqa or finding.code in noqa):
            result.suppressed += 1
            continue
        result.findings.append(finding)


def check_context(ctx: FileContext, *,
                  select: Iterable[str] | None = None) -> AnalysisResult:
    """Run the registered (selected) rules over one parsed file."""
    result = AnalysisResult(findings=[], files=1)
    for rule in _select_rules(select):
        admit_findings(ctx, rule.check(ctx), result)
    result.findings.sort(key=Finding.sort_key)
    return result


def parse_error_finding(path: str, exc: SyntaxError) -> Finding:
    """The ``RPR000`` finding for a file the engine cannot parse."""
    return Finding(path=path, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                   code=PARSE_ERROR_CODE, message=f"cannot parse file: {exc.msg}")


def analyze_source(source: str, path: str = "<string>", *,
                   module: str | None = None,
                   select: Iterable[str] | None = None) -> AnalysisResult:
    """Run the registered rules over one source string."""
    module = module if module is not None else module_name_for(path)
    try:
        ctx = FileContext(path=path, source=source, module=module)
    except SyntaxError as exc:
        return AnalysisResult(findings=[parse_error_finding(path, exc)],
                              files=1)
    return check_context(ctx, select=select)


def iter_python_files(paths: Iterable[str | pathlib.Path],
                      ) -> Iterator[pathlib.Path]:
    """Expand files/directories into the ``.py`` files to analyze."""
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path


def analyze_paths(paths: Iterable[str | pathlib.Path], *,
                  select: Iterable[str] | None = None) -> AnalysisResult:
    """Run the registered rules over every ``.py`` file under ``paths``."""
    _select_rules(select)  # validate the code list before any file work
    total = AnalysisResult(findings=[], files=0)
    for file_path in iter_python_files(paths):
        try:
            ctx = load_context(file_path)
        except SyntaxError as exc:
            total.findings.append(parse_error_finding(str(file_path), exc))
            total.files += 1
            continue
        one = check_context(ctx, select=select)
        total.findings.extend(one.findings)
        total.files += 1
        total.suppressed += one.suppressed
    total.findings.sort(key=Finding.sort_key)
    return total
