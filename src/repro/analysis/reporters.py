"""Reporters for analysis runs: text for terminals, JSON for tooling.

The JSON document is schema-stamped (``repro.analysis/v1``) and validated
hand-rolled, the same discipline as :mod:`repro.telemetry.schema`: a
malformed report fails the producer, not the downstream consumer.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.engine import AnalysisResult, Finding
from repro.util.errors import ReproError

SCHEMA_ID = "repro.analysis/v1"


class ReportError(ReproError):
    """An analysis report does not match the expected shape."""


def render_text(result: AnalysisResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    if result.findings:
        counts = ", ".join(f"{code}: {n}" for code, n in
                           result.counts().items())
        lines.append(f"analysis: {len(result.findings)} finding(s) "
                     f"in {result.files} file(s) ({counts}); "
                     f"{result.suppressed} suppressed")
    else:
        lines.append(f"analysis: OK ({result.files} file(s), "
                     f"{result.suppressed} suppressed)")
    return "\n".join(lines)


def build_report(result: AnalysisResult) -> dict[str, Any]:
    """The JSON-ready report document for one analysis run."""
    report = {
        "schema": SCHEMA_ID,
        "files": result.files,
        "suppressed": result.suppressed,
        "counts": result.counts(),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    validate_report(report)
    return report


def render_json(result: AnalysisResult) -> str:
    """The schema-stamped JSON report as a string."""
    return json.dumps(build_report(result), indent=2, sort_keys=True)


def validate_report(payload: Any) -> None:
    """Hand-rolled schema check for an analysis report document."""
    def fail(path: str, message: str) -> None:
        raise ReportError(f"{path}: {message}")

    if not isinstance(payload, dict):
        fail("$", "report must be an object")
    if payload.get("schema") != SCHEMA_ID:
        fail("$.schema", f"expected {SCHEMA_ID!r}, got "
                         f"{payload.get('schema')!r}")
    for key in ("files", "suppressed"):
        value = payload.get(key)
        if not isinstance(value, int) or value < 0:
            fail(f"$.{key}", "must be a non-negative integer")
    counts = payload.get("counts")
    if not isinstance(counts, dict):
        fail("$.counts", "must be an object")
    for code, n in counts.items():
        if not (isinstance(code, str) and isinstance(n, int) and n >= 0):
            fail(f"$.counts.{code}", "must map code strings to counts")
    findings = payload.get("findings")
    if not isinstance(findings, list):
        fail("$.findings", "must be a list")
    for i, record in enumerate(findings):
        path = f"$.findings[{i}]"
        if not isinstance(record, dict):
            fail(path, "finding must be an object")
        for key, kind in (("path", str), ("line", int), ("col", int),
                          ("code", str), ("message", str)):
            if not isinstance(record.get(key), kind):
                fail(f"{path}.{key}", f"must be a {kind.__name__}")
    total = sum(counts.values())
    if total != len(findings):
        fail("$.counts", f"counts sum to {total} but there are "
                         f"{len(findings)} findings")


def load_report(text: str) -> AnalysisResult:
    """Parse a JSON report back into an :class:`AnalysisResult`."""
    payload = json.loads(text)
    validate_report(payload)
    return AnalysisResult(
        findings=[Finding.from_dict(f) for f in payload["findings"]],
        files=payload["files"],
        suppressed=payload["suppressed"])
