"""CLI: ``python -m repro.analysis [paths ...]``.

Exit status: 0 when clean, 1 when any finding survives suppression,
2 on usage errors.  The default path set mirrors the repo gate.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.analysis.dataflow import analyze_project
from repro.analysis.engine import AnalysisResult, all_rules, analyze_paths
from repro.analysis.protocol import (
    DEFAULT_MODULE,
    PROTOCOL_CODES,
    check_protocol_conformance,
)
from repro.analysis.reporters import render_json, render_text

DEFAULT_PATHS = ("src", "tests", "examples", "benchmarks", "scripts")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis: RPR lint rules plus "
                    "NTCP protocol-conformance checks.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--no-protocol", action="store_true",
                        help="skip the NTCP plugin conformance checks")
    parser.add_argument("--no-project", action="store_true",
                        help="skip the whole-program (inter-procedural) "
                             "passes")
    parser.add_argument("--protocol-module", default=DEFAULT_MODULE,
                        help="module whose exported plugins are checked "
                             f"(default: {DEFAULT_MODULE})")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _list_rules() -> str:
    lines = ["code    name                        invariant"]
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name:<26}  {rule.summary}")
    for code, summary in sorted(PROTOCOL_CODES.items()):
        lines.append(f"{code}  {'protocol-conformance':<26}  {summary}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    paths = args.paths or [p for p in DEFAULT_PATHS
                           if pathlib.Path(p).exists()]
    if not paths:
        print("analysis: no paths to analyze", file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",")
                  if code.strip()]
    try:
        result: AnalysisResult = analyze_paths(paths, select=select)
    except KeyError as exc:
        print(f"analysis: {exc.args[0]}", file=sys.stderr)
        return 2
    if not args.no_project:
        project = analyze_project(paths, select=select)
        result.extend(project.findings)
        result.suppressed += project.suppressed
    if not args.no_protocol and select is None:
        result.extend(check_protocol_conformance(args.protocol_module))
    report = (render_json(result) if args.format == "json"
              else render_text(result))
    print(report)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
