"""The repo-specific rules (``RPR001``–``RPR010``).

Each rule machine-checks one invariant the codebase otherwise only states
in prose (docstrings, DESIGN.md, the telemetry schema).  They are
deliberately heuristic where full type inference would be needed —
heuristics are documented on each rule, and ``# noqa: RPRxxx`` exists for
the rare intentional exception.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.engine import FileContext, Finding, Rule, register

# ---------------------------------------------------------------------------
# shared AST helpers


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_maps(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """(module aliases, from-import bindings) for a parsed file.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import monotonic as mono`` -> ``{"mono": "time.monotonic"}``.
    """
    modules: dict[str, str] = {}
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                modules[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                names[local] = f"{node.module}.{alias.name}"
    return modules, names


def _canonical_call(node: ast.Call, modules: dict[str, str],
                    names: dict[str, str]) -> str | None:
    """The canonical dotted target of a call, resolving import aliases."""
    chain = _dotted(node.func)
    if chain is None:
        return None
    head, _, rest = chain.partition(".")
    if head in names:
        head = names[head]
    elif head in modules:
        head = modules[head]
    return f"{head}.{rest}" if rest else head


# ---------------------------------------------------------------------------
# RPR001 — simulation-clock purity


@register
class SimClockPurity(Rule):
    """No wall clocks or global RNGs inside the simulated subsystems.

    Everything under ``repro.sim``, ``repro.coordinator``, ``repro.control``
    and ``repro.net`` runs on the kernel's simulation clock, and the whole
    run must be a pure function of its seed (``repro.util.ids``).  Wall-clock
    reads and process-global RNG state break both properties silently.
    """

    code = "RPR001"
    name = "sim-clock-purity"
    summary = ("no time.time/datetime.now/global random inside "
               "sim/coordinator/control/net")

    SCOPES = ("repro.sim", "repro.coordinator", "repro.control", "repro.net")

    WALL_CLOCK = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.sleep",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "uuid.uuid1", "uuid.uuid4",
    }
    #: the legacy numpy global-state API; ``default_rng``/``Generator`` are
    #: the sanctioned, seedable route
    NUMPY_LEGACY = {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "uniform",
        "normal", "standard_normal", "poisson", "beta", "binomial",
        "exponential",
    }

    def _in_scope(self, module: str) -> bool:
        return any(module == scope or module.startswith(scope + ".")
                   for scope in self.SCOPES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield this rule's violations in ``ctx`` (see class doc)."""
        if not self._in_scope(ctx.module):
            return
        modules, names = _import_maps(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canon = _canonical_call(node, modules, names)
            if canon is None:
                continue
            if canon in self.WALL_CLOCK:
                yield ctx.finding(
                    node, self.code,
                    f"wall-clock/uuid call `{canon}` in a simulated "
                    "subsystem; use the kernel clock (kernel.now / "
                    "kernel.timeout) and deterministic ids")
            elif canon.startswith("random."):
                yield ctx.finding(
                    node, self.code,
                    f"process-global RNG `{canon}`; use a seeded "
                    "numpy Generator threaded from the run seed")
            elif canon.startswith("numpy.random."):
                if canon.rsplit(".", 1)[-1] in self.NUMPY_LEGACY:
                    yield ctx.finding(
                        node, self.code,
                        f"legacy numpy global-state RNG `{canon}`; use "
                        "numpy.random.default_rng(seed)")


# ---------------------------------------------------------------------------
# RPR002 — deprecated dict-style access to typed verb results


@register
class VerdictDictAccess(Rule):
    """No dict-style reads of ``ProposalVerdict`` / ``ExecutionOutcome``.

    The typed verb results answer ``["state"]``-style access through a
    one-release deprecation shim only.  Heuristic: any variable whose name
    contains ``verdict`` or ``outcome`` subscripted (or ``.get()``/
    ``.keys()``-ed) with one of the dataclass field names is treated as a
    typed result.
    """

    code = "RPR002"
    name = "typed-result-dict-access"
    summary = ("use attribute access on ProposalVerdict/ExecutionOutcome, "
               "not the deprecated dict shim")

    FIELDS = {"transaction", "state", "error", "readings", "started",
              "finished"}
    _NAME_RE = re.compile(r"verdict|outcome", re.IGNORECASE)

    def _looks_typed(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return None
        return name if self._NAME_RE.search(name) else None

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield this rule's violations in ``ctx`` (see class doc)."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Subscript):
                name = self._looks_typed(node.value)
                key = node.slice
                if (name and isinstance(key, ast.Constant)
                        and key.value in self.FIELDS):
                    yield ctx.finding(
                        node, self.code,
                        f"dict-style access `{name}[{key.value!r}]` on a "
                        f"typed verb result; use `.{key.value}` (the shim "
                        "is deprecated and will be removed)")
            elif isinstance(node, ast.Call) and isinstance(node.func,
                                                           ast.Attribute):
                name = self._looks_typed(node.func.value)
                if not name:
                    continue
                if (node.func.attr == "get" and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and node.args[0].value in self.FIELDS):
                    yield ctx.finding(
                        node, self.code,
                        f"`{name}.get({node.args[0].value!r})` on a typed "
                        "verb result; use attribute access")
                elif node.func.attr == "keys" and not node.args:
                    yield ctx.finding(
                        node, self.code,
                        f"`{name}.keys()` on a typed verb result; iterate "
                        "dataclasses.fields() instead")


# ---------------------------------------------------------------------------
# RPR003 — telemetry naming convention


@register
class TelemetryNameConvention(Rule):
    """Metric/span name literals follow ``layer.component.name``.

    Mirrors the runtime check in
    :func:`repro.telemetry.schema.validate_metric_name` so a bad name fails
    in CI, not at export time: instruments need at least three dotted
    lowercase segments, spans at least two (``coordinator.step`` is the
    canonical two-segment span).  Non-literal names are skipped.
    """

    code = "RPR003"
    name = "telemetry-name-convention"
    summary = ("metric names are layer.component.name (>=3 segments), "
               "span names >=2 dotted lowercase segments")

    METRIC_METHODS = {"counter", "gauge", "histogram"}
    SPAN_METHODS = {"start_span", "begin_span"}
    _SEGMENT = r"[a-z][a-z0-9_]*"
    METRIC_RE = re.compile(rf"^{_SEGMENT}(\.{_SEGMENT}){{2,}}$")
    SPAN_RE = re.compile(rf"^{_SEGMENT}(\.{_SEGMENT}){{1,}}$")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield this rule's violations in ``ctx`` (see class doc)."""
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if attr in self.METRIC_METHODS:
                pattern, kind = self.METRIC_RE, "metric"
            elif attr in self.SPAN_METHODS:
                pattern, kind = self.SPAN_RE, "span"
            else:
                continue
            if not node.args or not isinstance(node.args[0], ast.Constant):
                continue
            value = node.args[0].value
            if isinstance(value, str) and not pattern.match(value):
                minimum = 3 if kind == "metric" else 2
                yield ctx.finding(
                    node, self.code,
                    f"{kind} name {value!r} violates the layer.component."
                    f"name convention (>= {minimum} dotted lowercase "
                    "segments)")


# ---------------------------------------------------------------------------
# RPR004 — span lifecycle


class _Scope:
    """One lexical scope's span bookkeeping for :class:`SpanLifecycle`."""

    def __init__(self, node: ast.AST):
        self.node = node
        #: var name -> assignment node, for spans opened into a local
        self.opened: dict[str, ast.AST] = {}


@register
class SpanLifecycle(Rule):
    """Every opened span is closed in its scope (or escapes on purpose).

    A span opened with ``start_span`` must either be used as a context
    manager, have ``.end()`` called somewhere in the same function (nested
    closures count), or visibly escape the scope (returned, yielded, passed
    as an argument, stored on an object).  Discarding the result of
    ``start_span`` is always wrong: nothing can ever close that span.

    Spans stashed in attributes (``self._span = start_span(...)``) or
    containers (``spans[key] = start_span(...)``) are tracked module-wide:
    the stashed span must be read back *somewhere* in the same file — a
    ``.end()`` call on the attribute chain, a ``with``, or any other load
    of the chain/container — otherwise nothing can ever close it either.
    """

    code = "RPR004"
    name = "span-lifecycle"
    summary = ("spans are closed via `with` or .end() in-scope; "
               "start_span results are never discarded")

    OPENERS = {"start_span", "begin_span"}

    def _is_opener(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.OPENERS)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield this rule's violations in ``ctx`` (see class doc)."""
        yield from self._check_scope(ctx, ctx.tree)

    def _child_statements(self, scope_node: ast.AST) -> Iterator[ast.AST]:
        """Nodes lexically in this scope (not descending into functions)."""
        stack = list(ast.iter_child_nodes(scope_node))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                stack.extend(ast.iter_child_nodes(node))

    def _check_scope(self, ctx: FileContext,
                     scope_node: ast.AST) -> Iterator[Finding]:
        scope = _Scope(scope_node)
        stashed: list[tuple[str, ast.AST, str]] = []
        for node in self._child_statements(scope_node):
            # discarded result: an expression statement of a start_span call
            if isinstance(node, ast.Expr) and self._is_opener(node.value):
                yield ctx.finding(
                    node, self.code,
                    "start_span result discarded; open spans with `with` "
                    "or keep the span and call .end()")
            elif isinstance(node, ast.Assign) and self._is_opener(node.value):
                if len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    scope.opened[target.id] = node
                elif isinstance(target, ast.Attribute):
                    chain = _dotted(target)
                    if chain is not None:
                        stashed.append((chain, node, "attribute"))
                elif isinstance(target, ast.Subscript):
                    chain = _dotted(target.value)
                    if chain is not None:
                        stashed.append((chain, node, "container"))
            elif (isinstance(node, ast.FunctionDef)
                  or isinstance(node, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node)
        for name, node in sorted(scope.opened.items(),
                                 key=lambda kv: kv[1].lineno):
            if not self._closed_or_escapes(scope_node, name, node):
                yield ctx.finding(
                    node, self.code,
                    f"span `{name}` is opened but never closed in this "
                    "scope: call .end(), use `with`, or hand it off "
                    "explicitly")
        for chain, node, kind in stashed:
            if not self._chain_read_back(ctx.tree, chain, node):
                yield ctx.finding(
                    node, self.code,
                    f"span stashed in {kind} `{chain}` is never read back "
                    "anywhere in this module: nothing can close it — call "
                    ".end() on it or hand it off")

    def _chain_read_back(self, tree: ast.AST, chain: str,
                         assign: ast.AST) -> bool:
        """True when the stash target is loaded outside the stashing stmt."""
        skip = {id(node) for node in ast.walk(assign)}
        for node in ast.walk(tree):
            if id(node) in skip:
                continue
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and _dotted(node) == chain):
                return True
            if (isinstance(node, ast.Name) and node.id == chain
                    and isinstance(node.ctx, ast.Load)):
                return True
        return False

    def _closed_or_escapes(self, scope_node: ast.AST, name: str,
                           assign: ast.AST) -> bool:
        for node in ast.walk(scope_node):
            if node is assign:
                continue
            # with name: ... / with name as alias: ...
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == name:
                        return True
            # name.end(...)
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "end"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name):
                return True
            # any other load of the name counts as an intentional hand-off
            # (returned, yielded, passed as argument, aliased, stored)
            if (isinstance(node, ast.Name) and node.id == name
                    and isinstance(node.ctx, ast.Load)
                    and not self._is_end_receiver(scope_node, node)):
                return True
        return False

    @staticmethod
    def _is_end_receiver(scope_node: ast.AST, target: ast.Name) -> bool:
        """True when this Name load is exactly the ``x`` of ``x.end(...)``."""
        for node in ast.walk(scope_node):
            if (isinstance(node, ast.Attribute) and node.value is target
                    and node.attr == "end"):
                return True
        return False


# ---------------------------------------------------------------------------
# RPR005 — broad exception handlers


@register
class BroadExcept(Rule):
    """Broad handlers must re-raise, log, or reroute, never swallow.

    ``except Exception`` (or bare ``except:``) is allowed only when the
    handler visibly re-raises (any ``raise``), records the failure
    through a logging-ish call (``logger.warning``, ``kernel.emit``, ...),
    or is a *trampoline*: it binds the exception (``as exc``), hands that
    object to a call (``self.fail(exc)``, ``report(Finding(..., exc))``)
    and immediately leaves the handler — rerouting the failure, not
    eating it.  Silently eaten failures are how at-most-once bugs hide.
    """

    code = "RPR005"
    name = "broad-except"
    summary = ("no `except Exception`/bare except without re-raise, "
               "logging, or exception rerouting")

    BROAD = {"Exception", "BaseException"}
    LOG_METHODS = {"debug", "info", "warning", "warn", "error", "exception",
                   "critical", "log", "emit", "record"}

    def _is_broad(self, handler: ast.ExceptHandler) -> str | None:
        if handler.type is None:
            return "bare except"
        candidates: list[ast.AST] = [handler.type]
        if isinstance(handler.type, ast.Tuple):
            candidates = list(handler.type.elts)
        for node in candidates:
            name = _dotted(node)
            if name in self.BROAD:
                return f"except {name}"
        return None

    def _handled(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.LOG_METHODS):
                return True
        return False

    @staticmethod
    def _is_trampoline(handler: ast.ExceptHandler) -> bool:
        """True for handlers that reroute the bound exception object.

        Shape: ``except ... as exc`` whose body passes ``exc`` into some
        call and ends by leaving the handler (``return`` / ``continue`` /
        ``break``).  The kernel's process trampoline is the canonical
        case — its whole job is capturing a process's failure and routing
        it into the event graph (``self.fail(exc)``); a handler that
        re-packages the exception into a finding/result object the caller
        receives is the same pattern.
        """
        if not handler.name or not handler.body:
            return False
        if not isinstance(handler.body[-1],
                          (ast.Return, ast.Continue, ast.Break)):
            return False
        for node in ast.walk(handler):
            if not isinstance(node, ast.Call):
                continue
            passed = list(node.args) + [kw.value for kw in node.keywords]
            for arg in passed:
                for leaf in ast.walk(arg):
                    if (isinstance(leaf, ast.Name)
                            and leaf.id == handler.name
                            and isinstance(leaf.ctx, ast.Load)):
                        return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield this rule's violations in ``ctx`` (see class doc)."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            what = self._is_broad(node)
            if (what and not self._handled(node)
                    and not self._is_trampoline(node)):
                yield ctx.finding(
                    node, self.code,
                    f"{what} swallows failures silently; narrow the type, "
                    "re-raise with context, log the error, or reroute the "
                    "bound exception and leave the handler")


# ---------------------------------------------------------------------------
# RPR006 — __all__ drift


@register
class AllDrift(Rule):
    """``__all__`` matches what the module actually binds.

    Three drifts are caught: entries that are not strings, duplicate
    entries, and entries naming nothing the module defines or imports.
    For package ``__init__`` files the reverse is also enforced: every
    public name pulled in by a ``from x import y`` re-export must appear
    in ``__all__`` (alias imports with a leading underscore to opt out).
    """

    code = "RPR006"
    name = "all-drift"
    summary = "__all__ entries resolve; package __init__ re-exports are listed"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield this rule's violations in ``ctx`` (see class doc)."""
        tree = ctx.tree
        all_node: ast.Assign | None = None
        exported: list[str] = []
        bound: set[str] = set()
        from_imported: dict[str, ast.AST] = {}
        star_import = False
        for node in tree.body:
            for name in self._bound_names(node):
                bound.add(name)
            if isinstance(node, ast.ImportFrom):
                if any(alias.name == "*" for alias in node.names):
                    star_import = True
                elif self._intra_package(node):
                    for alias in node.names:
                        from_imported[alias.asname or alias.name] = node
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "__all__"):
                all_node = node
        if all_node is None or star_import:
            return
        if not isinstance(all_node.value, (ast.List, ast.Tuple)):
            return
        seen: set[str] = set()
        for element in all_node.value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                yield ctx.finding(element, self.code,
                                  "__all__ entries must be string literals")
                continue
            name = element.value
            exported.append(name)
            if name in seen:
                yield ctx.finding(element, self.code,
                                  f"duplicate __all__ entry {name!r}")
            seen.add(name)
            if name not in bound:
                yield ctx.finding(
                    element, self.code,
                    f"__all__ names {name!r} but the module neither "
                    "defines nor imports it")
        if ctx.path.replace("\\", "/").endswith("__init__.py"):
            for name, node in from_imported.items():
                if name.startswith("_") or name in seen:
                    continue
                yield ctx.finding(
                    node, self.code,
                    f"package __init__ imports {name!r} but does not "
                    "export it in __all__ (add it, or alias it with a "
                    "leading underscore)")

    @staticmethod
    def _intra_package(node: ast.ImportFrom) -> bool:
        """Re-exports worth policing: relative or same-distribution imports.

        ``from typing import Any`` in an ``__init__`` is a convenience
        import, not an export; only the package's own modules count.
        """
        if node.level > 0:
            return True
        return (node.module or "").split(".")[0] == "repro"

    @staticmethod
    def _bound_names(node: ast.AST) -> Iterator[str]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            yield node.name
        elif isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.asname or alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    yield alias.asname or alias.name
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                yield from AllDrift._target_names(target)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            yield node.target.id
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            yield from AllDrift._target_names(node.target)
        elif isinstance(node, ast.If):
            for sub in node.body + node.orelse:
                yield from AllDrift._bound_names(sub)
        elif isinstance(node, ast.Try):
            for sub in node.body + node.orelse + node.finalbody:
                yield from AllDrift._bound_names(sub)
            for handler in node.handlers:
                for sub in handler.body:
                    yield from AllDrift._bound_names(sub)

    @staticmethod
    def _target_names(target: ast.AST) -> Iterator[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from AllDrift._target_names(element)


# ---------------------------------------------------------------------------
# RPR007 — mutable default arguments


@register
class MutableDefaultArgument(Rule):
    """No mutable objects as parameter defaults outside ``tests``.

    A default expression is evaluated once, at definition time, so a
    list/dict/set default is silently shared across every call — state
    from one run leaks into the next.  Flagged as defaults: the literal
    displays (``[]``, ``{}``, ``{x}``), comprehensions, and calls to the
    mutable constructors (``list``/``dict``/``set``/``bytearray`` and the
    ``collections`` containers).  Test modules are exempt — fixtures
    there live for one test and the terseness is worth it.
    """

    code = "RPR007"
    name = "mutable-default-argument"
    summary = ("no list/dict/set literals, comprehensions, or constructor "
               "calls as parameter defaults (tests exempt)")

    MUTABLE_CALLS = {
        "list", "dict", "set", "bytearray",
        "collections.defaultdict", "collections.OrderedDict",
        "collections.deque", "collections.Counter",
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield this rule's violations in ``ctx`` (see class doc)."""
        if ctx.module == "tests" or ctx.module.startswith("tests."):
            return
        modules, names = _import_maps(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                what = self._mutable(default, modules, names)
                if what is None:
                    continue
                fn = getattr(node, "name", "<lambda>")
                yield ctx.finding(
                    default, self.code,
                    f"mutable default ({what}) on `{fn}` is evaluated once "
                    "and shared across calls; default to None and build "
                    "the container inside the function")

    def _mutable(self, node: ast.AST, modules: dict[str, str],
                 names: dict[str, str]) -> str | None:
        if isinstance(node, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Call):
            canon = _canonical_call(node, modules, names)
            if canon in self.MUTABLE_CALLS:
                return f"{canon}()"
        return None


# ---------------------------------------------------------------------------
# RPR009 — assert statements in shipped library code


@register
class AssertInLibrary(Rule):
    """No ``assert`` in shipped library code — it vanishes under ``-O``.

    ``assert`` is a *debugging* aid: CPython strips it when run with
    ``-O``, so any invariant guarded by one silently stops being checked
    in optimized deployments.  Library modules (everything under
    ``repro.*``) must raise explicit exceptions for conditions that can
    actually occur; tests keep using ``assert`` freely (pytest rewrites
    them).

    A small per-module allowlist covers internal-state asserts that
    document type-narrowing invariants unreachable from any public API
    (``self.container is not None`` after attach, breaker timestamps
    inside non-CLOSED states).  Each entry records why the module is
    exempt; new entries need the same justification.
    """

    code = "RPR009"
    name = "assert-in-library"
    summary = ("no `assert` in repro.* library modules (stripped by -O); "
               "raise explicit errors")

    #: module -> why its internal-state asserts are acceptable
    ALLOWLIST = {
        "repro.core.server": ("attach/txn narrowing on the RPC hot path: "
                              "counters and results are set before any "
                              "dispatch can reach the assert"),
        "repro.net.breaker": ("opened_at is set on every transition into "
                              "OPEN; the asserts narrow Optional for the "
                              "state-machine arithmetic"),
        "repro.nsds.service": ("container is bound at attach time, before "
                               "the service can receive a request"),
        "repro.ogsi.container": ("service_data is created in create_service "
                                 "before the registry hands the service "
                                 "out"),
        "repro.ogsi.service": ("container backref set by attach; asserts "
                               "narrow Optional for lifetime bookkeeping"),
        "repro.telepresence.camera": ("container bound at attach, before "
                                      "frame requests can arrive"),
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield this rule's violations in ``ctx`` (see class doc)."""
        if not (ctx.module == "repro" or ctx.module.startswith("repro.")):
            return
        if ctx.module in self.ALLOWLIST:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield ctx.finding(
                    node, self.code,
                    "`assert` in library code is stripped under -O; raise "
                    "an explicit exception (or allowlist the module with "
                    "a justification)")


# ---------------------------------------------------------------------------
# RPR010 — public-API docstrings (staged rollout)


@register
class PublicApiDocstring(Rule):
    """Public API in opted-in subsystems carries docstrings.

    Staged rollout: rather than flooding the gate with hundreds of
    findings, the rule applies only to the subsystems listed in
    ``ENABLED_SUBSYSTEMS`` — currently the analysis, verification,
    fleet, and GSI packages, which are the newest code and the
    reference for the convention.  Widening the rollout is a one-line
    change here.

    Checked: the module docstring, public top-level functions and
    classes, and public methods of public classes.  Underscore-private
    names and dunder methods are exempt.
    """

    code = "RPR010"
    name = "public-api-docstring"
    summary = ("public modules/classes/functions in staged subsystems "
               "need docstrings (currently repro.analysis, repro.verify, "
               "repro.fleet, repro.gsi)")

    ENABLED_SUBSYSTEMS = ("repro.analysis", "repro.verify",
                          "repro.fleet", "repro.gsi")

    def _enabled(self, module: str) -> bool:
        return any(module == scope or module.startswith(scope + ".")
                   for scope in self.ENABLED_SUBSYSTEMS)

    @staticmethod
    def _public(name: str) -> bool:
        return not name.startswith("_")

    def _check_def(self, ctx: FileContext, node: ast.AST,
                   kind: str, qual: str) -> Iterator[Finding]:
        if ast.get_docstring(node) is None:
            yield ctx.finding(
                node, self.code,
                f"public {kind} `{qual}` has no docstring; state its "
                "contract (staged rule; see ENABLED_SUBSYSTEMS)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield this rule's violations in ``ctx`` (see class doc)."""
        if not self._enabled(ctx.module):
            return
        if ast.get_docstring(ctx.tree) is None:
            yield ctx.finding(1, self.code,
                              f"module `{ctx.module}` has no docstring")
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._public(node.name):
                    yield from self._check_def(ctx, node, "function",
                                               node.name)
            elif isinstance(node, ast.ClassDef) and self._public(node.name):
                yield from self._check_def(ctx, node, "class", node.name)
                for sub in node.body:
                    if (isinstance(sub, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
                            and self._public(sub.name)
                            and not sub.name.startswith("__")):
                        yield from self._check_def(
                            ctx, sub, "method", f"{node.name}.{sub.name}")
