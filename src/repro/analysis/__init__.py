"""repro.analysis — the project-specific static-analysis pass.

An AST lint engine with repo-specific rules (``RPR001``–``RPR010``), a
whole-program layer (project call graph + import resolution in
:mod:`repro.analysis.callgraph`, inter-procedural taint passes in
:mod:`repro.analysis.dataflow` that make RPR001 and RPR005 see across
module boundaries), plus an NTCP protocol-conformance checker over the
control-plugin surface (``RPR10x``), wired into the repo's gate as
``make analyze``:

    python -m repro.analysis src tests examples benchmarks

The rules machine-check invariants the codebase otherwise only states in
prose: simulation-clock purity (a run is a pure function of its seed),
the retirement of the typed-result dict shim, the telemetry naming
convention, span lifecycle hygiene, broad-except discipline, and
``__all__``/export coherence.  See ``docs/ARCHITECTURE.md`` ("Static
analysis & invariants") for the rule table.
"""

from repro.analysis.callgraph import (
    CallSite,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)
from repro.analysis.dataflow import (
    analyze_project,
    clock_taint,
)
from repro.analysis.engine import (
    AnalysisResult,
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    clear_context_cache,
    load_context,
    module_name_for,
    register,
)
from repro.analysis.protocol import (
    PROTOCOL_CODES,
    check_plugin,
    check_protocol_conformance,
    exported_plugins,
)
from repro.analysis.reporters import (
    SCHEMA_ID,
    ReportError,
    build_report,
    load_report,
    render_json,
    render_text,
    validate_report,
)
from repro.analysis import rules as _rules  # registers RPR001-RPR010

del _rules

__all__ = [
    # engine
    "AnalysisResult",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "clear_context_cache",
    "load_context",
    "module_name_for",
    "register",
    # whole-program layer
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "analyze_project",
    "clock_taint",
    # protocol conformance
    "PROTOCOL_CODES",
    "check_plugin",
    "check_protocol_conformance",
    "exported_plugins",
    # reporters
    "SCHEMA_ID",
    "ReportError",
    "build_report",
    "load_report",
    "render_json",
    "render_text",
    "validate_report",
]
