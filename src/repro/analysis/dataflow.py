"""Inter-procedural dataflow passes over the project call graph.

Two per-file rules gain a whole-program variant here, reporting under
the *same* codes so ``# noqa`` and ``--select`` behave identically:

* **RPR001 (sim-clock purity), inter-procedural** — a helper outside the
  simulated subsystems that reads the wall clock (or pokes global RNG
  state) *taints* every project function that can reach it.  Any call
  from a sim-scoped function into a tainted out-of-scope function is
  flagged at the call site, with the witness chain down to the clock
  read.  The per-file rule already covers direct in-scope reads, so the
  pass only reports scope-boundary crossings — each leak is flagged
  exactly once, where it enters the simulated world.
* **RPR005 (broad-except), inter-procedural** — the per-file rule
  exempts *trampolines*: handlers that bind the exception and hand it to
  a call.  That exemption is only sound if the callee actually uses the
  exception.  This pass resolves the receiving call through the project
  index and flags trampolines whose every resolvable receiver discards
  its exception parameter — the failure is still swallowed, just one
  hop away.

Both passes are sound only up to the syntactic call graph: calls the
index cannot resolve (dynamic dispatch, higher-order plumbing) are given
the benefit of the doubt.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable

from repro.analysis.callgraph import CallSite, FunctionInfo, ProjectIndex
from repro.analysis.engine import (
    AnalysisResult,
    FileContext,
    Finding,
    admit_findings,
    load_context,
)
from repro.analysis.rules import BroadExcept, SimClockPurity

_CLOCK_RULE = SimClockPurity()
_EXCEPT_RULE = BroadExcept()


def _is_clock_read(target: str) -> bool:
    """True when a canonical call target is a wall-clock/global-RNG read."""
    if target in _CLOCK_RULE.WALL_CLOCK:
        return True
    if target.startswith("random."):
        return True
    if target.startswith("numpy.random."):
        return target.rsplit(".", 1)[-1] in _CLOCK_RULE.NUMPY_LEGACY
    return False


def clock_taint(index: ProjectIndex) -> dict[str, tuple[str, ...]]:
    """Functions that can reach a wall-clock read, with a witness chain.

    Maps qualified function name to the chain of targets from that
    function down to the offending read, e.g. ``("repro.util.timing.stamp",
    "time.monotonic")``.  Computed as a fixpoint over the call graph.
    """
    taint: dict[str, tuple[str, ...]] = {}
    for qual, sites in index.calls.items():
        for site in sites:
            if _is_clock_read(site.target):
                taint[qual] = (site.target,)
                break
    changed = True
    while changed:
        changed = False
        for qual, sites in index.calls.items():
            if qual in taint:
                continue
            for site in sites:
                callee = site.resolved
                if callee is not None and callee.qualname in taint:
                    taint[qual] = ((callee.qualname,)
                                   + taint[callee.qualname])
                    changed = True
                    break
    return taint


def _clock_findings(index: ProjectIndex,
                    taint: dict[str, tuple[str, ...]],
                    ) -> dict[str, list[Finding]]:
    """RPR001 findings per path: sim-scope calls into tainted helpers."""
    out: dict[str, list[Finding]] = {}
    for qual, sites in index.calls.items():
        caller = index.functions[qual]
        if not _CLOCK_RULE._in_scope(caller.module):
            continue
        for site in sites:
            callee = site.resolved
            if callee is None or callee.qualname not in taint:
                continue
            if _CLOCK_RULE._in_scope(callee.module):
                continue  # flagged at its own boundary crossing instead
            chain = (callee.qualname,) + taint[callee.qualname]
            out.setdefault(caller.path, []).append(Finding(
                path=caller.path, line=site.node.lineno,
                col=site.node.col_offset, code=_CLOCK_RULE.code,
                message=(f"call from simulated subsystem into "
                         f"`{callee.qualname}` reaches wall-clock/global "
                         f"RNG `{chain[-1]}` (via {' -> '.join(chain)}); "
                         "thread the kernel clock or a seeded generator "
                         "in instead")))
    return out


def _exception_param(site: CallSite, callee: FunctionInfo,
                     exc_name: str) -> str | None:
    """Name of the callee parameter that binds the handler's exception."""
    def mentions_exc(expr: ast.AST) -> bool:
        return any(isinstance(leaf, ast.Name) and leaf.id == exc_name
                   and isinstance(leaf.ctx, ast.Load)
                   for leaf in ast.walk(expr))

    args = callee.node.args
    params = [p.arg for p in args.posonlyargs + args.args]
    if "." in callee.local and params and params[0] in ("self", "cls"):
        params = params[1:]
    named = set(params) | {p.arg for p in args.kwonlyargs}
    for keyword in site.node.keywords:
        if keyword.arg is not None and mentions_exc(keyword.value):
            return keyword.arg if keyword.arg in named else None
    for position, arg in enumerate(site.node.args):
        if mentions_exc(arg):
            if position < len(params):
                return params[position]
            return None  # lands in *args: unknowable, assume used
    return None


def _param_is_used(callee: FunctionInfo, param: str) -> bool:
    for node in ast.walk(callee.node):
        if (isinstance(node, ast.Name) and node.id == param
                and isinstance(node.ctx, ast.Load)):
            return True
    return False


def _trampoline_findings(index: ProjectIndex) -> dict[str, list[Finding]]:
    """RPR005 findings per path: trampolines whose receiver drops the exc."""
    out: dict[str, list[Finding]] = {}
    for qual, sites in index.calls.items():
        fn = index.functions[qual]
        by_node = {id(site.node): site for site in sites}
        for handler in ast.walk(fn.node):
            if not isinstance(handler, ast.ExceptHandler):
                continue
            what = _EXCEPT_RULE._is_broad(handler)
            if (what is None or _EXCEPT_RULE._handled(handler)
                    or not _EXCEPT_RULE._is_trampoline(handler)):
                continue
            # every call in the handler that receives the bound exception
            receivers: list[tuple[CallSite, FunctionInfo]] = []
            unresolved = False
            for node in ast.walk(handler):
                if not isinstance(node, ast.Call):
                    continue
                site = by_node.get(id(node))
                passed = list(node.args) + [k.value for k in node.keywords]
                touches = any(
                    isinstance(leaf, ast.Name) and leaf.id == handler.name
                    and isinstance(leaf.ctx, ast.Load)
                    for arg in passed for leaf in ast.walk(arg))
                if not touches:
                    continue
                if site is None or site.resolved is None:
                    unresolved = True  # benefit of the doubt
                else:
                    receivers.append((site, site.resolved))
            if unresolved or not receivers:
                continue
            dropped = []
            for site, callee in receivers:
                param = _exception_param(site, callee, handler.name)
                if param is None or _param_is_used(callee, param):
                    dropped = []
                    break
                dropped.append((callee.qualname, param))
            if dropped:
                callee_name, param = dropped[0]
                out.setdefault(fn.path, []).append(Finding(
                    path=fn.path, line=handler.lineno,
                    col=handler.col_offset, code=_EXCEPT_RULE.code,
                    message=(f"{what} trampolines the exception into "
                             f"`{callee_name}`, which never reads its "
                             f"`{param}` parameter — the failure is still "
                             "swallowed one hop away; use the exception "
                             "in the callee or handle it here")))
    return out


def analyze_project(paths: Iterable[str | pathlib.Path], *,
                    select: Iterable[str] | None = None) -> AnalysisResult:
    """Run the inter-procedural passes over every file under ``paths``.

    Returns an :class:`AnalysisResult` holding only the whole-program
    findings (``files`` counts the indexed modules); callers merge it
    into the per-file result.  ``select`` filters by rule code exactly
    like the per-file engine; ``# noqa`` comments on the flagged lines
    suppress findings and are counted.
    """
    wanted = None if select is None else {code.upper() for code in select}
    index = ProjectIndex.build(paths)
    per_path: dict[str, list[Finding]] = {}
    if wanted is None or _CLOCK_RULE.code in wanted:
        for path, found in _clock_findings(index, clock_taint(index)).items():
            per_path.setdefault(path, []).extend(found)
    if wanted is None or _EXCEPT_RULE.code in wanted:
        for path, found in _trampoline_findings(index).items():
            per_path.setdefault(path, []).extend(found)
    result = AnalysisResult(findings=[], files=len(index.modules))
    for path, found in per_path.items():
        try:
            ctx: FileContext = load_context(path)
        except (SyntaxError, OSError):
            continue
        admit_findings(ctx, found, result)
    result.findings.sort(key=Finding.sort_key)
    return result
