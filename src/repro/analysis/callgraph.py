"""Whole-program import resolution and the project call graph.

The per-file rules in :mod:`repro.analysis.rules` see one tree at a time,
so a helper in ``repro.util`` that reads the wall clock is invisible to
the sim-scoped caller that invokes it.  This module builds the project
view those rules lack:

* :class:`ModuleInfo` — one parsed module plus its import maps (plain
  ``import x as y`` aliases and ``from m import n as l`` bindings) and
  its locally-defined functions/methods;
* :class:`ProjectIndex` — every module under the analyzed paths, a
  global function table keyed by qualified name
  (``repro.net.rpc.RpcClient.call``), and per-function call-site lists
  with each call resolved through aliases, from-imports, package
  re-exports (``repro.verify.explore`` -> ``repro.verify.explorer.explore``)
  and ``self.``-method dispatch.

Resolution is deliberately syntactic: it follows names, not types, so
dynamic dispatch through variables stays unresolved (``CallSite.resolved
is None``) rather than wrongly resolved.  The inter-procedural passes in
:mod:`repro.analysis.dataflow` consume this index.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.engine import (
    FileContext,
    iter_python_files,
    load_context,
)
from repro.analysis.rules import _dotted, _import_maps

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method defined somewhere in the project."""

    qualname: str  #: fully qualified, e.g. ``repro.core.server.NTCPServer.metrics``
    module: str  #: defining module, e.g. ``repro.core.server``
    local: str  #: name within the module: ``f`` or ``Cls.f``
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str  #: display path of the defining file


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a project function."""

    caller: str  #: qualified name of the enclosing function
    node: ast.Call
    target: str  #: canonical dotted target after alias/re-export resolution
    resolved: FunctionInfo | None  #: the project function called, if known


class ModuleInfo:
    """One analyzed module: tree, import maps, local definitions."""

    def __init__(self, module: str, ctx: FileContext):
        self.module = module
        self.path = ctx.path
        self.tree = ctx.tree
        self.lines = ctx.lines
        self.aliases, self.bindings = _import_maps(ctx.tree)
        #: local name (``f`` or ``Cls.f``) -> def node
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        #: class name -> set of method names, for ``self.x()`` dispatch
        self.classes: dict[str, set[str]] = {}
        for node in ctx.tree.body:
            if isinstance(node, _FUNC_NODES):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                methods = {sub.name for sub in node.body
                           if isinstance(sub, _FUNC_NODES)}
                self.classes[node.name] = methods
                for sub in node.body:
                    if isinstance(sub, _FUNC_NODES):
                        self.functions[f"{node.name}.{sub.name}"] = sub


class ProjectIndex:
    """The project-wide module/function/call-site index."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}

    # -- construction -------------------------------------------------

    @classmethod
    def build(cls, paths: Iterable[str | pathlib.Path]) -> "ProjectIndex":
        """Index every parseable ``.py`` file under ``paths``.

        Unparseable files are skipped here — the per-file walk already
        reports them as ``RPR000``.
        """
        index = cls()
        for file_path in iter_python_files(paths):
            try:
                ctx = load_context(file_path)
            except (SyntaxError, OSError):
                continue
            info = ModuleInfo(ctx.module, ctx)
            index.modules[info.module] = info
            for local, node in info.functions.items():
                fn = FunctionInfo(qualname=f"{info.module}.{local}",
                                  module=info.module, local=local,
                                  node=node, path=info.path)
                index.functions[fn.qualname] = fn
        for fn in index.functions.values():
            index.calls[fn.qualname] = index._call_sites(fn)
        return index

    # -- name resolution ----------------------------------------------

    def resolve_name(self, module: str, chain: str) -> str:
        """Canonical dotted name for ``chain`` as written inside ``module``.

        ``mono`` after ``from time import monotonic as mono`` becomes
        ``time.monotonic``; a bare reference to a module-level definition
        becomes ``<module>.<name>``; anything else is returned untouched.
        """
        info = self.modules.get(module)
        head, _, rest = chain.partition(".")
        if info is not None:
            if head in info.bindings:
                head = info.bindings[head]
            elif head in info.aliases:
                head = info.aliases[head]
            elif head in info.functions or head in info.classes:
                head = f"{module}.{head}"
        return f"{head}.{rest}" if rest else head

    def resolve_function(self, canonical: str) -> FunctionInfo | None:
        """Project function behind a canonical name, chasing re-exports.

        ``pkg.f`` where ``pkg/__init__.py`` does ``from pkg.impl import f``
        resolves to ``pkg.impl.f``; chains of re-exports are followed
        with a cycle guard.  ``pkg.Cls(...)`` constructor calls resolve
        to ``pkg.Cls.__init__`` when that method exists.
        """
        seen: set[str] = set()
        while canonical not in seen:
            seen.add(canonical)
            direct = self.functions.get(canonical)
            if direct is not None:
                return direct
            init = self.functions.get(f"{canonical}.__init__")
            if init is not None:
                return init
            parts = canonical.split(".")
            redirected = None
            for i in range(len(parts) - 1, 0, -1):
                info = self.modules.get(".".join(parts[:i]))
                if info is None:
                    continue
                attr = parts[i]
                if attr in info.bindings:
                    redirected = ".".join([info.bindings[attr]]
                                          + parts[i + 1:])
                break  # only the longest module prefix can re-export
            if redirected is None:
                return None
            canonical = redirected
        return None

    # -- call extraction ----------------------------------------------

    def _call_sites(self, fn: FunctionInfo) -> list[CallSite]:
        module = self.modules[fn.module]
        own_class = fn.local.partition(".")[0] if "." in fn.local else None
        sites: list[CallSite] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None:
                continue
            head, _, rest = chain.partition(".")
            if head in ("self", "cls") and own_class is not None:
                # only single-hop method calls: self.f(...), not self.a.b()
                if rest and "." not in rest \
                        and rest in module.classes.get(own_class, ()):
                    target = f"{fn.module}.{own_class}.{rest}"
                    sites.append(CallSite(caller=fn.qualname, node=node,
                                          target=target,
                                          resolved=self.functions[target]))
                continue
            target = self.resolve_name(fn.module, chain)
            sites.append(CallSite(caller=fn.qualname, node=node,
                                  target=target,
                                  resolved=self.resolve_function(target)))
        return sites

    def callers_of(self, qualname: str) -> list[CallSite]:
        """Every resolved call site whose target is ``qualname``."""
        return [site for sites in self.calls.values() for site in sites
                if site.resolved is not None
                and site.resolved.qualname == qualname]
