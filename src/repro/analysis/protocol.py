"""NTCP protocol-conformance checks over the control-plugin surface.

The paper's central abstraction is that every site — physical rig or
numerical simulation — sits behind the same NTCP verb surface
(propose/execute/cancel, reviewed and executed through a
:class:`~repro.core.plugin.ControlPlugin`).  This module machine-checks
that contract for every plugin a package exports:

* ``RPR100`` — the plugin module itself failed to import / export;
* ``RPR101`` — a plugin does not declare its own ``plugin_type``;
* ``RPR102`` — a plugin does not implement ``execute`` at all;
* ``RPR103`` — a verb's signature cannot accept the protocol's arguments;
* ``RPR104`` — ``execute`` is not a generator function (it must run as a
  kernel process so executions can consume simulation time).

Unlike the AST rules, these checks introspect the live classes: plugin
conformance is a property of the resolved method-resolution order (a
plugin may legitimately inherit a verb), which source text alone cannot
establish.  No plugin code is *run* — only imported and inspected.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Any, Iterable

from repro.analysis.engine import Finding

#: every verb of the NTCP plugin contract and the arguments the server
#: core calls it with (beyond ``self``)
VERB_ARGS: dict[str, int] = {"review": 1, "execute": 1, "cancel": 1}

#: the codes this checker can emit, with their invariants (for docs/CLI)
PROTOCOL_CODES: dict[str, str] = {
    "RPR100": "plugin package imports and exports resolve",
    "RPR101": "every exported plugin declares its own plugin_type",
    "RPR102": "every exported plugin implements execute",
    "RPR103": "verb signatures accept the protocol's arguments",
    "RPR104": "execute is a generator (runs as a kernel process)",
}

DEFAULT_MODULE = "repro.control"


def _location(obj: Any) -> tuple[str, int]:
    """(path, line) for a class or function, best effort."""
    try:
        path = inspect.getsourcefile(obj) or "<unknown>"
        _, line = inspect.getsourcelines(obj)
    except (OSError, TypeError):
        return "<unknown>", 1
    return path, line


def _finding(obj: Any, code: str, message: str) -> Finding:
    path, line = _location(obj)
    return Finding(path=path, line=line, col=0, code=code, message=message)


def exported_plugins(module_name: str = DEFAULT_MODULE,
                     ) -> tuple[list[tuple[str, type]], list[Finding]]:
    """The ControlPlugin subclasses a module exports, plus import findings."""
    from repro.core.plugin import ControlPlugin

    findings: list[Finding] = []
    try:
        module = importlib.import_module(module_name)
    except Exception as exc:  # rerouted into the returned findings
        findings.append(Finding(
            path=module_name, line=1, col=0, code="RPR100",
            message=f"cannot import {module_name}: "
                    f"{type(exc).__name__}: {exc}"))
        return [], findings
    exported = getattr(module, "__all__", None)
    if exported is None:
        exported = [n for n in vars(module) if not n.startswith("_")]
    plugins: list[tuple[str, type]] = []
    for name in exported:
        obj = getattr(module, name, None)
        if obj is None:
            findings.append(Finding(
                path=module_name, line=1, col=0, code="RPR100",
                message=f"{module_name}.__all__ names {name!r} but the "
                        "module does not define it"))
            continue
        if (inspect.isclass(obj) and issubclass(obj, ControlPlugin)
                and obj is not ControlPlugin):
            plugins.append((name, obj))
    return plugins, findings


def check_plugin(cls: type) -> list[Finding]:
    """Conformance findings for one ControlPlugin subclass."""
    from repro.core.plugin import ControlPlugin

    findings: list[Finding] = []
    name = cls.__name__

    plugin_type = getattr(cls, "plugin_type", None)
    if (not isinstance(plugin_type, str) or not plugin_type
            or plugin_type == ControlPlugin.plugin_type):
        findings.append(_finding(
            cls, "RPR101",
            f"plugin {name} must declare its own plugin_type "
            f"(inherited/abstract value {plugin_type!r})"))

    if getattr(cls, "execute", None) is ControlPlugin.execute:
        findings.append(_finding(
            cls, "RPR102",
            f"plugin {name} does not implement the execute verb"))

    for verb, n_args in VERB_ARGS.items():
        fn = getattr(cls, verb, None)
        if fn is None or not callable(fn):
            findings.append(_finding(
                cls, "RPR102",
                f"plugin {name} is missing the {verb} verb"))
            continue
        fn = inspect.unwrap(fn)
        try:
            signature = inspect.signature(fn)
        except (TypeError, ValueError):
            continue
        placeholders = [object()] * (n_args + 1)  # +1 for self
        try:
            signature.bind(*placeholders)
        except TypeError as exc:
            findings.append(_finding(
                fn, "RPR103",
                f"{name}.{verb}{signature} cannot accept the protocol's "
                f"{n_args} argument(s): {exc}"))

    execute = getattr(cls, "execute", None)
    if (execute is not None and execute is not ControlPlugin.execute
            and not inspect.isgeneratorfunction(inspect.unwrap(execute))):
        findings.append(_finding(
            execute, "RPR104",
            f"{name}.execute must be a generator function — executions "
            "run as kernel processes and may consume simulation time"))
    return findings


def check_protocol_conformance(module_name: str = DEFAULT_MODULE,
                               ) -> list[Finding]:
    """Check every plugin exported from ``module_name``; [] means clean."""
    plugins, findings = exported_plugins(module_name)
    for _, cls in plugins:
        findings.extend(check_plugin(cls))
    findings.sort(key=Finding.sort_key)
    return findings


def conformance_summary(module_name: str = DEFAULT_MODULE,
                        ) -> dict[str, Iterable[str]]:
    """{plugin name: [verb, ...]} of the checked surface (for reports)."""
    plugins, _ = exported_plugins(module_name)
    return {name: sorted(VERB_ARGS) for name, _ in plugins}
