"""The ingestion tool: incremental upload of staged data during a run.

"This repository and associated NEESgrid services allow data and metadata
from an experiment to be archived incrementally by an ingestion tool as an
experiment is run."  The tool is a kernel process at a site: every sweep it
picks up files the DAQ deposited since the previous sweep, ships each to
the repository host with the configured transport (resuming partial
transfers after failures), registers the logical name with NFMS, and
creates an NMDS metadata record describing the file.
"""

from __future__ import annotations

from typing import Any

from repro.daq.filestore import StagingStore
from repro.net.rpc import RpcClient
from repro.ogsi.handle import GridServiceHandle
from repro.repository.transport import TransferFailed, Transport
from repro.util.errors import ReproError


class IngestionTool:
    """Site-side incremental uploader.

    Args:
        site: the host this tool runs on (source of transfers).
        staging: the site staging store the DAQ deposits into.
        repo_host: the repository host name.
        repo_store: the repository's file store (destination).
        transport: the :class:`~repro.repository.transport.Transport` to
            move bytes with.
        rpc: an RPC client on ``site`` for NFMS/NMDS registration calls.
        nfms / nmds: grid service handles of the repository services.
        metadata_type: NMDS object type created per uploaded file.
        sweep_interval: seconds between staging-store sweeps.
    """

    def __init__(self, *, site: str, staging: StagingStore, repo_host: str,
                 repo_store: StagingStore, transport: Transport,
                 rpc: RpcClient, nfms: GridServiceHandle,
                 nmds: GridServiceHandle, experiment: str = "experiment",
                 metadata_type: str = "data-file",
                 sweep_interval: float = 2.0):
        self.site = site
        self.staging = staging
        self.repo_host = repo_host
        self.repo_store = repo_store
        self.transport = transport
        self.rpc = rpc
        self.nfms = nfms
        self.nmds = nmds
        self.experiment = experiment
        self.metadata_type = metadata_type
        self.sweep_interval = sweep_interval
        self.kernel = transport.kernel
        self.running = False
        self._cursor = 0  # staging sequence already ingested
        self._partial: dict[str, int] = {}  # file -> bytes done (restart)
        self.uploaded: list[str] = []
        self.failed_attempts = 0

    def start(self) -> None:
        self.running = True
        self.kernel.process(self._loop(), name=f"ingest.{self.site}")

    def stop(self) -> None:
        self.running = False

    def drain(self):
        """One synchronous sweep (as a process): ingest everything pending."""
        yield from self._sweep()

    def _loop(self):
        while self.running:
            yield self.kernel.timeout(self.sweep_interval)
            if not self.running:
                break
            yield from self._sweep()

    def _sweep(self):
        for staged in self.staging.newer_than(self._cursor):
            logical = f"{self.experiment}/{self.site}/{staged.name}"
            try:
                yield from self._upload_one(staged, logical)
            except (TransferFailed, ReproError) as exc:
                # leave the cursor so the file is retried next sweep
                self.failed_attempts += 1
                self.kernel.emit(f"ingest.{self.site}", "upload.failed",
                                 file=staged.name, error=str(exc))
                return
            self._cursor = staged.sequence
            self.uploaded.append(logical)

    def _upload_one(self, staged, logical: str):
        resume = self._partial.get(staged.name, 0)
        try:
            report = yield from self.transport.transfer(
                self.site, self.repo_host, staged, self.repo_store,
                dst_name=logical, resume_from=resume)
        except TransferFailed as exc:
            self._partial[staged.name] = exc.bytes_done
            raise
        self._partial.pop(staged.name, None)
        yield from self.rpc.call(
            self.nfms.host, self.nfms.port, "invoke",
            {"service_id": self.nfms.service_id, "operation": "registerFile",
             "params": {"logical_name": logical, "host": self.repo_host,
                        "store": self.repo_store.name, "size": staged.size,
                        "checksum": staged.checksum}})
        metadata: dict[str, Any] = {
            "experiment": self.experiment,
            "site": self.site,
            "logical_name": logical,
            "rows": len(staged.rows),
            "created": staged.created,
            "size": staged.size,
        }
        yield from self.rpc.call(
            self.nmds.host, self.nmds.port, "invoke",
            {"service_id": self.nmds.service_id, "operation": "createObject",
             "params": {"object_type": self.metadata_type,
                        "fields": metadata}})
        self.kernel.emit(f"ingest.{self.site}", "upload.completed",
                         logical_name=logical, duration=report.duration)
