"""NEESgrid data and metadata repository (paper §2.3, Figure 3).

Components, mirroring the paper one-to-one:

* :class:`~repro.repository.nmds.NMDSService` — the NEESgrid Metadata
  Service: create/update/manage/validate metadata, with metadata *schemas*
  as first-class versioned objects and per-object version control and
  authorization;
* :class:`~repro.repository.nfms.NFMSService` — the NEESgrid File
  Management Service: logical file naming and transport neutrality, with a
  plug-in transport API;
* :class:`~repro.repository.transport.GridFTPTransport` /
  :class:`~repro.repository.transport.HttpsBridgeTransport` — the two
  transports NFMS negotiates between (GridFTP, and the servlet "bridge
  between GridFTP and https");
* :class:`~repro.repository.ingest.IngestionTool` — uploads data/metadata
  incrementally as an experiment runs;
* :class:`~repro.repository.facade.RepositoryFacade` — couples NMDS and
  NFMS "using the Façade pattern, but they may be used independently";
* :mod:`~repro.repository.checkpoint` — versioned experiment checkpoints
  (``repro.checkpoint/v1``) persisted through NFMS and the transports, so
  an aborted coordinator run can resume bit-exact.
"""

from repro.repository.nmds import MetadataObject, NMDSService, SchemaSpec
from repro.repository.nfms import NFMSService
from repro.repository.transport import (
    GridFTPTransport,
    HttpsBridgeTransport,
    Transport,
    TransferFailed,
)
from repro.repository.ingest import IngestionTool
from repro.repository.facade import RepositoryFacade
from repro.repository.checkpoint import (
    CheckpointCorrupt,
    CheckpointPolicy,
    CheckpointSchemaError,
    InMemoryCheckpointStore,
    RepositoryCheckpointStore,
    build_checkpoint_doc,
    validate_checkpoint_payload,
    validate_manifest_payload,
)

__all__ = [
    "NMDSService",
    "MetadataObject",
    "SchemaSpec",
    "NFMSService",
    "Transport",
    "GridFTPTransport",
    "HttpsBridgeTransport",
    "TransferFailed",
    "IngestionTool",
    "RepositoryFacade",
    "CheckpointCorrupt",
    "CheckpointPolicy",
    "CheckpointSchemaError",
    "InMemoryCheckpointStore",
    "RepositoryCheckpointStore",
    "build_checkpoint_doc",
    "validate_checkpoint_payload",
    "validate_manifest_payload",
]
