"""File transports: GridFTP and the https bridge.

NFMS's "transport neutrality" requires at least two real transports to
negotiate between.  Both move a :class:`~repro.daq.filestore.StagedFile`
between stores on two hosts as a kernel process whose duration is computed
from the link and the transport's performance model; both verify integrity
on arrival and fail cleanly (with a restart marker) if the link drops
mid-transfer — GridFTP's partial-transfer restart is what makes the
ingestion tool's retry loop cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.daq.filestore import StagedFile, StagingStore, content_checksum
from repro.net.network import Network
from repro.util.errors import TransportError


class TransferFailed(TransportError):
    """A transfer aborted; ``bytes_done`` supports restart."""

    def __init__(self, message: str, bytes_done: int = 0):
        super().__init__(message)
        self.bytes_done = bytes_done


@dataclass(frozen=True)
class TransferReport:
    """Outcome of a completed transfer (benchmark fodder)."""

    logical_name: str
    size: int
    duration: float
    protocol: str
    resumed_from: int


class Transport:
    """Base transport: chunked movement with link-state checks.

    Subclasses set ``protocol``, ``bandwidth`` (bytes/s), ``chunk_size``
    and ``per_chunk_overhead`` (seconds added to each chunk, e.g. request
    turnaround for https).
    """

    protocol = "abstract"
    bandwidth = 1e6
    chunk_size = 64 * 1024
    per_chunk_overhead = 0.0

    def __init__(self, network: Network):
        self.network = network
        self.kernel = network.kernel
        self.transfers_completed = 0
        self.transfers_failed = 0
        self.bytes_moved = 0

    def chunk_time(self, chunk_bytes: int, link) -> float:
        """Seconds to move one chunk over ``link``."""
        return (chunk_bytes / self.bandwidth + link.latency
                + self.per_chunk_overhead)

    def transfer(self, src_host: str, dst_host: str, file: StagedFile,
                 dst_store: StagingStore, *, dst_name: str | None = None,
                 resume_from: int = 0):
        """Kernel process: move ``file`` to ``dst_store``.

        Returns a :class:`TransferReport`; raises :class:`TransferFailed`
        (with a restart marker) if the link goes down mid-transfer.
        """
        try:
            link = self.network.link(src_host, dst_host)
        except KeyError:
            self.transfers_failed += 1
            raise TransferFailed(
                f"no route {src_host} -> {dst_host}") from None
        started = self.kernel.now
        total = file.size
        done = min(resume_from, total)
        while done < total:
            if not link.up:
                self.transfers_failed += 1
                self.kernel.emit(f"transport.{self.protocol}",
                                 "transfer.failed", file=file.name,
                                 bytes_done=done)
                raise TransferFailed(
                    f"link {src_host}<->{dst_host} down during transfer of "
                    f"{file.name!r}", bytes_done=done)
            chunk = min(self.chunk_size, total - done)
            yield self.kernel.timeout(self.chunk_time(chunk, link))
            done += chunk
            self.bytes_moved += chunk
        # Integrity: recompute the checksum on arrival.
        if content_checksum(list(file.rows)) != file.checksum:
            self.transfers_failed += 1
            raise TransferFailed(
                f"checksum mismatch for {file.name!r}")  # pragma: no cover
        name = dst_name if dst_name is not None else file.name
        if not dst_store.exists(name):
            dst_store.deposit(name, list(file.rows), created=self.kernel.now)
        self.transfers_completed += 1
        report = TransferReport(logical_name=name, size=total,
                                duration=self.kernel.now - started,
                                protocol=self.protocol,
                                resumed_from=resume_from)
        self.kernel.emit(f"transport.{self.protocol}", "transfer.completed",
                         file=name, size=total, duration=report.duration)
        return report


class GridFTPTransport(Transport):
    """GridFTP: high bandwidth, parallel streams amortize link latency."""

    protocol = "gridftp"

    def __init__(self, network: Network, *, bandwidth: float = 8e6,
                 parallel_streams: int = 4, chunk_size: int = 256 * 1024):
        super().__init__(network)
        self.bandwidth = bandwidth
        self.parallel_streams = max(1, parallel_streams)
        self.chunk_size = chunk_size

    def chunk_time(self, chunk_bytes: int, link) -> float:
        # Parallel streams pipeline the latency component.
        return (chunk_bytes / self.bandwidth
                + link.latency / self.parallel_streams)


class HttpsBridgeTransport(Transport):
    """The GridFTP↔https bridge servlet: single stream, per-request cost.

    "We have also developed ... a servlet that acts as a bridge between
    GridFTP and https" — the fallback for clients without GSI/GridFTP.
    """

    protocol = "https"

    def __init__(self, network: Network, *, bandwidth: float = 1.5e6,
                 chunk_size: int = 64 * 1024,
                 per_request_overhead: float = 0.05):
        super().__init__(network)
        self.bandwidth = bandwidth
        self.chunk_size = chunk_size
        self.per_chunk_overhead = per_request_overhead
