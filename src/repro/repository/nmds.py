"""NMDS: the NEESgrid Metadata Service.

"It differs from most other metadata management systems in that metadata
schemas are represented by first-class objects and can be managed just like
any other object.  In addition, it supports per-object version control and
authorization."  All three properties are implemented here: schemas are
stored in the same object table (type ``"schema"``), every update produces
a retained version, and each object carries owner/reader/writer ACLs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.gsi.authz import Principal
from repro.ogsi.service import GridService
from repro.util.errors import ProtocolError, SecurityError

#: types accepted in schema field specs → python check
_FIELD_TYPES = {
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "list": list,
    "object": dict,
}


@dataclass(frozen=True)
class SchemaSpec:
    """One metadata schema: field name → (type name, required)."""

    name: str
    fields: dict[str, tuple[str, bool]]

    def validate(self, data: dict[str, Any]) -> None:
        """Raise :class:`ProtocolError` if ``data`` violates the schema."""
        for fname, (type_name, required) in self.fields.items():
            if fname not in data:
                if required:
                    raise ProtocolError(
                        f"schema {self.name!r}: missing required field "
                        f"{fname!r}")
                continue
            expected = _FIELD_TYPES.get(type_name)
            if expected is None:
                raise ProtocolError(
                    f"schema {self.name!r}: unknown type {type_name!r}")
            if isinstance(data[fname], bool) and type_name in ("number",
                                                               "integer"):
                raise ProtocolError(
                    f"schema {self.name!r}: field {fname!r} is boolean, "
                    f"expected {type_name}")
            if not isinstance(data[fname], expected):
                raise ProtocolError(
                    f"schema {self.name!r}: field {fname!r} expected "
                    f"{type_name}, got {type(data[fname]).__name__}")

    @classmethod
    def from_dict(cls, name: str, spec: dict[str, Any]) -> "SchemaSpec":
        fields = {}
        for fname, fspec in spec.items():
            if isinstance(fspec, str):
                fields[fname] = (fspec, True)
            else:
                fields[fname] = (fspec["type"], bool(fspec.get("required", True)))
        return cls(name=name, fields=fields)

    def to_fields(self) -> dict[str, Any]:
        return {fname: {"type": t, "required": r}
                for fname, (t, r) in self.fields.items()}


@dataclass
class MetadataObject:
    """A versioned metadata object with per-object ACLs."""

    object_id: str
    object_type: str
    fields: dict[str, Any]
    version: int
    owner: str
    created: float
    modified: float
    readers: set[str] = field(default_factory=set)
    writers: set[str] = field(default_factory=set)
    history: list[dict[str, Any]] = field(default_factory=list)

    def may_read(self, subject: str) -> bool:
        return (subject == self.owner or subject in self.readers
                or subject in self.writers or "*" in self.readers)

    def may_write(self, subject: str) -> bool:
        return subject == self.owner or subject in self.writers

    def public_view(self, version: int | None = None) -> dict[str, Any]:
        if version is None or version == self.version:
            fields = self.fields
            v = self.version
        else:
            matches = [h for h in self.history if h["version"] == version]
            if not matches:
                raise ProtocolError(
                    f"object {self.object_id!r} has no version {version}")
            fields = matches[0]["fields"]
            v = version
        return {"object_id": self.object_id, "type": self.object_type,
                "fields": dict(fields), "version": v, "owner": self.owner,
                "created": self.created, "modified": self.modified,
                "latest_version": self.version}


def _subject_of(caller: Any) -> str:
    """Extract a subject string from whatever the security layer passed."""
    if isinstance(caller, Principal):
        return caller.subject
    if isinstance(caller, str) and caller:
        return caller
    return "<anonymous>"


def require_right(caller: Any, right: str) -> None:
    """Enforce a CAS community right when the caller is GSI-authenticated.

    Unsecured deployments (caller is a plain string or None) are exempt —
    they have no CAS to consult, matching the paper's pre-CAS MOST
    deployment ("an early version of the ... repository was used for MOST
    ... areas to be more fully developed in later releases, such as
    CAS-based access control").
    """
    if isinstance(caller, Principal) and not caller.has_right(right):
        raise SecurityError(
            f"{caller.subject!r} lacks community right {right!r}")


class NMDSService(GridService):
    """The metadata service, hosted in an OGSI container.

    Operations: ``defineSchema``, ``createObject``, ``updateObject``,
    ``getObject`` (any version), ``listObjects``, ``setAcl``.  When the
    container is deployed with a GSI checker, callers arrive as
    :class:`~repro.gsi.authz.Principal` and per-object ACLs bind to their
    certificate subject; anonymous deployments fall back to a shared
    pseudo-subject (useful in unit tests).
    """

    def __init__(self, service_id: str = "nmds"):
        super().__init__(service_id)
        self.objects: dict[str, MetadataObject] = {}
        self._counter = 0

    def on_attach(self) -> None:
        self.service_data.set("objectCount", 0)
        for op in ("defineSchema", "createObject", "updateObject",
                   "getObject", "listObjects", "setAcl"):
            self.expose(op, getattr(self, f"_op_{op}"))

    # -- helpers ---------------------------------------------------------------
    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}-{self._counter}"

    def _get(self, object_id: str) -> MetadataObject:
        obj = self.objects.get(object_id)
        if obj is None:
            raise ProtocolError(f"no metadata object {object_id!r}")
        return obj

    def _schema_for(self, object_type: str) -> SchemaSpec | None:
        for obj in self.objects.values():
            if obj.object_type == "schema" and obj.fields.get("name") == object_type:
                return SchemaSpec.from_dict(object_type, obj.fields["spec"])
        return None

    def _store(self, object_type: str, fields: dict[str, Any],
               subject: str) -> MetadataObject:
        obj = MetadataObject(
            object_id=self._next_id(object_type),
            object_type=object_type, fields=dict(fields), version=1,
            owner=subject, created=self.kernel.now, modified=self.kernel.now)
        self.objects[obj.object_id] = obj
        self.service_data.set("objectCount", len(self.objects))
        self.emit("object.created", object_id=obj.object_id,
                  type=object_type, owner=subject)
        return obj

    # -- operations ----------------------------------------------------------
    def _op_defineSchema(self, caller, name: str, spec: dict[str, Any]):
        """Create a schema *object* (first-class, versioned like the rest)."""
        require_right(caller, "repository:write")
        SchemaSpec.from_dict(name, spec)  # validate the spec itself
        existing = self._schema_for_object(name)
        subject = _subject_of(caller)
        if existing is not None:
            return self._do_update(existing, {"name": name, "spec": spec},
                                   subject)["object_id"]
        obj = self._store("schema", {"name": name, "spec": spec}, subject)
        return obj.object_id

    def _schema_for_object(self, name: str) -> MetadataObject | None:
        for obj in self.objects.values():
            if obj.object_type == "schema" and obj.fields.get("name") == name:
                return obj
        return None

    def _op_createObject(self, caller, object_type: str,
                         fields: dict[str, Any]):
        require_right(caller, "repository:write")
        if object_type == "schema":
            raise ProtocolError("use defineSchema to create schema objects")
        schema = self._schema_for(object_type)
        if schema is not None:
            schema.validate(fields)
        obj = self._store(object_type, fields, _subject_of(caller))
        return obj.object_id

    def _do_update(self, obj: MetadataObject, fields: dict[str, Any],
                   subject: str) -> dict[str, Any]:
        if not obj.may_write(subject):
            raise SecurityError(
                f"{subject!r} may not update {obj.object_id!r}")
        obj.history.append({"version": obj.version,
                            "fields": dict(obj.fields),
                            "modified": obj.modified})
        obj.fields = dict(fields)
        obj.version += 1
        obj.modified = self.kernel.now
        self.emit("object.updated", object_id=obj.object_id,
                  version=obj.version)
        return obj.public_view()

    def _op_updateObject(self, caller, object_id: str,
                         fields: dict[str, Any]):
        require_right(caller, "repository:write")
        obj = self._get(object_id)
        if obj.object_type != "schema":
            schema = self._schema_for(obj.object_type)
            if schema is not None:
                schema.validate(fields)
        return self._do_update(obj, fields, _subject_of(caller))

    def _op_getObject(self, caller, object_id: str,
                      version: int | None = None):
        obj = self._get(object_id)
        subject = _subject_of(caller)
        if not obj.may_read(subject):
            raise SecurityError(f"{subject!r} may not read {object_id!r}")
        return obj.public_view(version)

    def _op_listObjects(self, caller, object_type: str | None = None):
        return sorted(o.object_id for o in self.objects.values()
                      if object_type is None or o.object_type == object_type)

    def _op_setAcl(self, caller, object_id: str,
                   readers: list[str] | None = None,
                   writers: list[str] | None = None):
        obj = self._get(object_id)
        subject = _subject_of(caller)
        if subject != obj.owner:
            raise SecurityError(
                f"only the owner may change the ACL of {object_id!r}")
        if readers is not None:
            obj.readers = set(readers)
        if writers is not None:
            obj.writers = set(writers)
        return True
