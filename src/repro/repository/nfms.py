"""NFMS: the NEESgrid File Management Service.

"NFMS provides two main capabilities: logical file naming and transport
neutrality.  Applications negotiate file transfers with NFMS, which resolves
a transfer request for a logical file to a protocol request for a physical
resource."  Logical names map to one or more physical replicas; transfer
negotiation intersects the client's protocols with the service's installed
transports (the plug-in API) and picks the preferred mutual one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ogsi.service import GridService
from repro.repository.nmds import require_right
from repro.util.errors import ProtocolError


@dataclass
class _LogicalFile:
    logical_name: str
    replicas: list[dict] = field(default_factory=list)  # {host, store, size, checksum}


class NFMSService(GridService):
    """Logical naming + transfer negotiation.

    Operations: ``registerFile``, ``addReplica``, ``resolve``,
    ``negotiateTransfer``, ``listFiles``, ``unregisterFile``.  Transports
    are *named* plugins
    installed server-side (``install_transport``); preference order is the
    installation order, so deployments put GridFTP first and the https
    bridge second.
    """

    def __init__(self, service_id: str = "nfms"):
        super().__init__(service_id)
        self.files: dict[str, _LogicalFile] = {}
        self.transport_names: list[str] = []

    def on_attach(self) -> None:
        self.service_data.set("fileCount", 0)
        for op in ("registerFile", "addReplica", "resolve",
                   "negotiateTransfer", "listFiles", "unregisterFile"):
            self.expose(op, getattr(self, f"_op_{op}"))

    def install_transport(self, name: str) -> None:
        """Advertise a transport protocol (plug-in API)."""
        if name not in self.transport_names:
            self.transport_names.append(name)

    # -- operations ----------------------------------------------------------
    def _op_registerFile(self, caller, logical_name: str, host: str,
                         store: str, size: int, checksum: str):
        require_right(caller, "repository:write")
        if logical_name in self.files:
            raise ProtocolError(f"logical file {logical_name!r} already "
                                f"registered (use addReplica)")
        lf = _LogicalFile(logical_name=logical_name)
        lf.replicas.append({"host": host, "store": store, "size": size,
                            "checksum": checksum})
        self.files[logical_name] = lf
        self.service_data.set("fileCount", len(self.files))
        self.emit("file.registered", logical_name=logical_name, host=host)
        return True

    def _op_unregisterFile(self, caller, logical_name: str):
        require_right(caller, "repository:write")
        if logical_name not in self.files:
            raise ProtocolError(f"unknown logical file {logical_name!r}")
        del self.files[logical_name]
        self.service_data.set("fileCount", len(self.files))
        self.emit("file.unregistered", logical_name=logical_name)
        return True

    def _op_addReplica(self, caller, logical_name: str, host: str,
                       store: str, size: int, checksum: str):
        require_right(caller, "repository:write")
        lf = self._get(logical_name)
        lf.replicas.append({"host": host, "store": store, "size": size,
                            "checksum": checksum})
        return len(lf.replicas)

    def _get(self, logical_name: str) -> _LogicalFile:
        lf = self.files.get(logical_name)
        if lf is None:
            raise ProtocolError(f"unknown logical file {logical_name!r}")
        return lf

    def _op_resolve(self, caller, logical_name: str):
        lf = self._get(logical_name)
        return [dict(r) for r in lf.replicas]

    def _op_negotiateTransfer(self, caller, logical_name: str,
                              client_protocols: list[str],
                              prefer_host: str | None = None):
        """Pick a (protocol, replica) pair for the client to fetch with."""
        lf = self._get(logical_name)
        protocol = next((p for p in self.transport_names
                         if p in set(client_protocols)), None)
        if protocol is None:
            raise ProtocolError(
                f"no mutual transport: server has {self.transport_names}, "
                f"client offered {client_protocols}")
        replicas = lf.replicas
        chosen = next((r for r in replicas if r["host"] == prefer_host),
                      replicas[0])
        return {"protocol": protocol, "replica": dict(chosen)}

    def _op_listFiles(self, caller, prefix: str = ""):
        return sorted(n for n in self.files if n.startswith(prefix))
