"""The repository façade: NMDS + NFMS behind one client-side API.

"These components are coupled using the Façade pattern, but may be used
independently."  :class:`RepositoryFacade` is the coupling: a client-side
object that answers the questions remote participants actually asked during
MOST — "what data exists for this experiment?", "give me that file" —
by combining a metadata query, transfer negotiation, and a transport run.
"""

from __future__ import annotations

from typing import Any

from repro.daq.filestore import StagingStore
from repro.net.rpc import RpcClient
from repro.ogsi.handle import GridServiceHandle
from repro.repository.transport import Transport
from repro.util.errors import ProtocolError


class RepositoryFacade:
    """Client-side façade over NMDS, NFMS and the transports.

    Args:
        rpc: RPC client on the caller's host.
        nmds / nfms: repository service handles.
        transports: protocol name → :class:`Transport` available locally
            (what the client "speaks"; negotiation intersects with the
            server's).
        credential_factory: optional per-call GSI token minting.
    """

    def __init__(self, rpc: RpcClient, nmds: GridServiceHandle,
                 nfms: GridServiceHandle, transports: dict[str, Transport],
                 *, credential_factory=None):
        self.rpc = rpc
        self.nmds = nmds
        self.nfms = nfms
        self.transports = dict(transports)
        self.credential_factory = credential_factory

    def _invoke(self, handle: GridServiceHandle, operation: str,
                params: dict[str, Any]):
        credential = (self.credential_factory("invoke")
                      if self.credential_factory else None)
        result = yield from self.rpc.call(
            handle.host, handle.port, "invoke",
            {"service_id": handle.service_id, "operation": operation,
             "params": params}, credential=credential)
        return result

    # -- metadata side ----------------------------------------------------------
    def query_metadata(self, object_type: str | None = None):
        """List metadata object ids, optionally by type."""
        ids = yield from self._invoke(self.nmds, "listObjects",
                                      {"object_type": object_type})
        return ids

    def get_metadata(self, object_id: str, version: int | None = None):
        obj = yield from self._invoke(self.nmds, "getObject",
                                      {"object_id": object_id,
                                       "version": version})
        return obj

    def annotate(self, object_type: str, fields: dict[str, Any]):
        """Create a metadata object (e.g. experiment setup descriptions)."""
        object_id = yield from self._invoke(self.nmds, "createObject",
                                            {"object_type": object_type,
                                             "fields": fields})
        return object_id

    # -- file side --------------------------------------------------------------
    def list_files(self, prefix: str = ""):
        names = yield from self._invoke(self.nfms, "listFiles",
                                        {"prefix": prefix})
        return names

    def download(self, logical_name: str, dst_host: str,
                 dst_store: StagingStore, *, source_store_lookup):
        """Negotiate and run a download of ``logical_name`` to ``dst_store``.

        ``source_store_lookup(host, store_name)`` maps a replica location to
        the actual store object (the client's view of mounted stores).
        Returns the :class:`~repro.repository.transport.TransferReport`.
        """
        deal = yield from self._invoke(
            self.nfms, "negotiateTransfer",
            {"logical_name": logical_name,
             "client_protocols": list(self.transports)})
        transport = self.transports.get(deal["protocol"])
        if transport is None:  # pragma: no cover - negotiation guarantees
            raise ProtocolError(f"negotiated unavailable protocol "
                                f"{deal['protocol']!r}")
        replica = deal["replica"]
        src_store = source_store_lookup(replica["host"], replica["store"])
        staged = src_store.get(logical_name)
        report = yield from transport.transfer(
            replica["host"], dst_host, staged, dst_store,
            dst_name=logical_name)
        return report
