"""Versioned experiment checkpoints in the data repository.

An aborted 5-hour MOST run used to be simply lost — the paper records the
premature exit at step 1493 as the outcome.  Checkpoints make the outcome
resumable: the coordinator periodically persists its serializable
:class:`~repro.coordinator.state.ExperimentState` plus the tail of
committed :class:`~repro.coordinator.records.StepRecord`\\ s since the
previous checkpoint, and a restarted coordinator reconstructs the full
history by merging every sequence.

The document is a hand-rolled, versioned schema (``repro.checkpoint/v1``),
validated the same way the telemetry and analysis schemas are: ~100 lines
of standard-library checking with JSON-path error messages, run on every
save *and* every load so a malformed checkpoint fails immediately instead
of corrupting a resume.  All float payloads are ``float.hex()`` strings —
checkpoint → restore round-trips are bit-exact.

Two stores share one API (generator-shaped ``save`` / ``load`` /
``list_seqs`` so callers uniformly ``yield from`` them):

* :class:`InMemoryCheckpointStore` — unit tests and benchmarks;
* :class:`RepositoryCheckpointStore` — the real path: each checkpoint is
  staged locally, moved to the repository host over a
  :class:`~repro.repository.transport.Transport` (GridFTP by default) and
  registered as a logical file with NFMS (Allcock et al.'s
  replica-management argument: checkpoint artifacts belong in the data
  repository, not in coordinator-local state).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.daq.filestore import StagingStore
from repro.net.rpc import RpcClient, RpcError
from repro.ogsi.handle import GridServiceHandle
from repro.repository.transport import Transport
from repro.util.errors import ConfigurationError, ReproError

SCHEMA_ID = "repro.checkpoint/v1"
MANIFEST_SCHEMA_ID = "repro.checkpoint-manifest/v1"

_REASONS = ("policy", "abort", "final")
#: Mirrors :data:`repro.coordinator.state.PHASES` (kept literal here so the
#: repository layer never imports the coordinator; a test pins the two).
_PHASES = ("idle", "integrate", "propose", "execute", "commit")

_STATE_INT_KEYS = ("target_steps", "step", "generation", "checkpoint_seq")
_RECORD_KEYS = ("step", "model_time", "displacement", "restoring_force",
                "site_forces", "attempts", "wall_started", "wall_finished")


class CheckpointSchemaError(ReproError):
    """A checkpoint document does not match ``repro.checkpoint/v1``."""


class CheckpointCorrupt(CheckpointSchemaError):
    """A *persisted* checkpoint artifact failed to parse or validate.

    Raised by the stores' load paths when a fetched document is truncated,
    non-JSON, or schema-invalid — a typed error callers can catch, instead
    of a raw ``json.JSONDecodeError`` traceback surfacing mid-resume.
    ``run_id``/``seq`` identify the bad artifact.
    """

    def __init__(self, message: str, *, run_id: str | None = None,
                 seq: int | None = None):
        super().__init__(message)
        self.run_id = run_id
        self.seq = seq


def _parse_checkpoint(text: str, *, run_id: str, seq: int,
                      origin: str) -> dict:
    """Parse + validate one persisted document, or raise CheckpointCorrupt."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointCorrupt(
            f"{origin}: truncated or non-JSON checkpoint: {exc}",
            run_id=run_id, seq=seq) from exc
    try:
        validate_checkpoint_payload(doc)
    except CheckpointSchemaError as exc:
        raise CheckpointCorrupt(
            f"{origin}: schema-invalid checkpoint: {exc}",
            run_id=run_id, seq=seq) from exc
    return doc


def _fail(path: str, message: str) -> None:
    raise CheckpointSchemaError(f"{path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        _fail(path, message)


def _check_number(value: Any, path: str) -> None:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             path, f"expected a number, got {type(value).__name__}")


def _check_int(value: Any, path: str, minimum: int = 0) -> None:
    _require(isinstance(value, int) and not isinstance(value, bool),
             path, f"expected an integer, got {type(value).__name__}")
    _require(value >= minimum, path, f"must be >= {minimum}, got {value}")


def _check_hex_float(value: Any, path: str) -> None:
    _require(isinstance(value, str), path,
             f"expected a hex float string, got {type(value).__name__}")
    try:
        float.fromhex(value)
    except ValueError:
        _fail(path, f"not a hex float: {value!r}")


def _check_hex_vector(values: Any, path: str) -> None:
    _require(isinstance(values, list), path, "expected a list of hex floats")
    for i, value in enumerate(values):
        _check_hex_float(value, f"{path}[{i}]")


def _check_hex_array(values: Any, path: str) -> None:
    """A float array payload: a flat hex list (1-D, the historical form)
    or a shape-tagged object (``{"shape": [...], "data": [...]}``) for an
    ensemble's higher-rank state."""
    if isinstance(values, dict):
        shape = values.get("shape")
        _require(isinstance(shape, list) and shape
                 and all(isinstance(s, int) and not isinstance(s, bool)
                         and s >= 1 for s in shape),
                 f"{path}.shape", "must be a list of positive integers")
        _check_hex_vector(values.get("data"), f"{path}.data")
        expected = 1
        for s in shape:
            expected *= s
        _require(len(values["data"]) == expected, f"{path}.data",
                 f"expected {expected} values for shape {shape}, "
                 f"got {len(values['data'])}")
        return
    _check_hex_vector(values, path)


def validate_state_payload(state: Any, path: str = "$.state") -> None:
    """The serialized :class:`~repro.coordinator.state.ExperimentState`."""
    _require(isinstance(state, dict), path, "state must be an object")
    _require(isinstance(state.get("run_id"), str) and state.get("run_id"),
             f"{path}.run_id", "must be a non-empty string")
    for key in _STATE_INT_KEYS:
        _check_int(state.get(key), f"{path}.{key}")
    _require(state.get("target_steps", 0) >= 1, f"{path}.target_steps",
             "must be >= 1")
    _check_number(state.get("dt"), f"{path}.dt")
    _require(state["dt"] > 0, f"{path}.dt", "must be positive")
    _check_number(state.get("wall_started"), f"{path}.wall_started")
    _require(state.get("phase") in _PHASES, f"{path}.phase",
             f"must be one of {_PHASES}, got {state.get('phase')!r}")
    pending = state.get("pending")
    _require(isinstance(pending, dict), f"{path}.pending",
             "pending must be an object")
    for site, txn in pending.items():
        _require(isinstance(site, str) and isinstance(txn, str) and txn,
                 f"{path}.pending.{site}",
                 "must map site names to transaction names")
    speculative = state.get("speculative")
    if speculative is not None:
        _require(isinstance(speculative, dict), f"{path}.speculative",
                 "speculative must be an object")
        for site, txn in speculative.items():
            _require(isinstance(site, str) and isinstance(txn, str) and txn,
                     f"{path}.speculative.{site}",
                     "must map site names to transaction names")
        _check_int(state.get("speculative_step"),
                   f"{path}.speculative_step")
    integrator = state.get("integrator")
    if integrator is not None:
        ipath = f"{path}.integrator"
        _require(isinstance(integrator, dict), ipath,
                 "integrator must be an object or null")
        _require(isinstance(integrator.get("kind"), str)
                 and integrator.get("kind"),
                 f"{ipath}.kind", "must be a non-empty string")
        _check_int(integrator.get("step_index"), f"{ipath}.step_index")
        arrays = integrator.get("arrays")
        _require(isinstance(arrays, dict) and arrays, f"{ipath}.arrays",
                 "must be a non-empty object")
        for name, vec in arrays.items():
            _check_hex_array(vec, f"{ipath}.arrays.{name}")


def validate_record_payload(record: Any, path: str = "record") -> None:
    """One serialized :class:`~repro.coordinator.records.StepRecord`."""
    _require(isinstance(record, dict), path, "record must be an object")
    for key in _RECORD_KEYS:
        _require(key in record, f"{path}.{key}", "missing")
    _check_int(record["step"], f"{path}.step", minimum=1)
    _check_int(record["attempts"], f"{path}.attempts", minimum=1)
    for key in ("model_time", "wall_started", "wall_finished"):
        _check_number(record[key], f"{path}.{key}")
    for key in ("displacement", "restoring_force"):
        _check_hex_array(record[key], f"{path}.{key}")
    forces = record["site_forces"]
    _require(isinstance(forces, dict), f"{path}.site_forces",
             "must be an object")
    for site, per_dof in forces.items():
        _require(isinstance(per_dof, dict), f"{path}.site_forces.{site}",
                 "must be an object")
        for dof, value in per_dof.items():
            fpath = f"{path}.site_forces.{site}.{dof}"
            if isinstance(value, list):
                # ensemble batch: one force per scenario variant
                _check_hex_vector(value, fpath)
            else:
                _check_hex_float(value, fpath)


def validate_checkpoint_payload(payload: Any) -> None:
    """A full checkpoint document.

    Shape::

        {"schema": "repro.checkpoint/v1", "run_id": "...", "seq": 1,
         "wall_time": 12.3, "reason": "policy" | "abort" | "final",
         "state": {...}, "records": [...]}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == SCHEMA_ID, "$.schema",
             f"expected {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    _require(isinstance(payload.get("run_id"), str) and payload.get("run_id"),
             "$.run_id", "must be a non-empty string")
    _check_int(payload.get("seq"), "$.seq", minimum=1)
    _check_number(payload.get("wall_time"), "$.wall_time")
    _require(payload.get("reason") in _REASONS, "$.reason",
             f"must be one of {_REASONS}, got {payload.get('reason')!r}")
    validate_state_payload(payload.get("state"))
    records = payload.get("records")
    _require(isinstance(records, list), "$.records", "records must be a list")
    for i, record in enumerate(records):
        validate_record_payload(record, f"$.records[{i}]")
    _require(payload["state"].get("run_id") == payload["run_id"],
             "$.state.run_id", "must match the document run_id")


def validate_manifest_payload(payload: Any) -> None:
    """A checkpoint manifest document.

    Shape::

        {"schema": "repro.checkpoint-manifest/v1", "run_id": "...",
         "seq": 3, "seqs": [1, 2, 3], "latest": {checkpoint doc},
         "records": [merged record payloads, ascending by step]}

    ``records`` is the full last-written-per-step merge across every
    sequence in ``seqs`` — what :meth:`CheckpointStoreBase.load_history`
    would otherwise recompute by refetching each document.
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == MANIFEST_SCHEMA_ID, "$.schema",
             f"expected {MANIFEST_SCHEMA_ID!r}, "
             f"got {payload.get('schema')!r}")
    _require(isinstance(payload.get("run_id"), str) and payload.get("run_id"),
             "$.run_id", "must be a non-empty string")
    _check_int(payload.get("seq"), "$.seq", minimum=1)
    seqs = payload.get("seqs")
    _require(isinstance(seqs, list) and seqs, "$.seqs",
             "must be a non-empty list")
    for i, seq in enumerate(seqs):
        _check_int(seq, f"$.seqs[{i}]", minimum=1)
        if i:
            _require(seq > seqs[i - 1], f"$.seqs[{i}]",
                     "must be strictly ascending")
    _require(seqs[-1] == payload["seq"], "$.seq",
             "must equal the highest entry of seqs")
    validate_checkpoint_payload(payload.get("latest"))
    _require(payload["latest"]["run_id"] == payload["run_id"],
             "$.latest.run_id", "must match the manifest run_id")
    _require(payload["latest"]["seq"] == payload["seq"],
             "$.latest.seq", "must match the manifest seq")
    records = payload.get("records")
    _require(isinstance(records, list), "$.records",
             "records must be a list")
    last_step = 0
    for i, record in enumerate(records):
        validate_record_payload(record, f"$.records[{i}]")
        _require(record["step"] > last_step, f"$.records[{i}].step",
                 "must be strictly ascending")
        last_step = record["step"]


def build_checkpoint_doc(*, run_id: str, seq: int, wall_time: float,
                         reason: str, state_payload: dict,
                         record_payloads: list) -> dict:
    """Assemble and validate a checkpoint document."""
    doc = {
        "schema": SCHEMA_ID,
        "run_id": run_id,
        "seq": int(seq),
        "wall_time": float(wall_time),
        "reason": reason,
        "state": state_payload,
        "records": list(record_payloads),
    }
    validate_checkpoint_payload(doc)
    return doc


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to checkpoint.

    ``every_n_steps=0`` disables periodic checkpoints (an abort-time
    checkpoint may still be written when ``on_abort`` is set); ``on_abort``
    controls the best-effort final checkpoint the coordinator writes while
    aborting, which captures the in-flight step's pending transaction
    names for reconciliation.
    """

    every_n_steps: int = 50
    on_abort: bool = True

    def __post_init__(self):
        if self.every_n_steps < 0:
            raise ConfigurationError("every_n_steps must be >= 0")

    def due(self, step: int) -> bool:
        """Checkpoint after committing ``step``?"""
        return self.every_n_steps > 0 and step % self.every_n_steps == 0


class CheckpointStoreBase:
    """Shared history-merging logic over ``save``/``list_seqs``/``load``.

    All three primitives are kernel-process generators (``yield from``
    them), even where a concrete store completes synchronously — callers
    should not care which store they hold.
    """

    def save(self, doc: dict):
        raise NotImplementedError

    def list_seqs(self, run_id: str):
        raise NotImplementedError

    def load(self, run_id: str, seq: int):
        raise NotImplementedError

    def load_latest(self, run_id: str):
        """Kernel process: the newest *loadable* document, or ``None``.

        A corrupt highest-seq document (truncated write from a crashed
        incarnation) is skipped in favour of the next-newest valid one —
        resume degrades to an older checkpoint instead of dying on a
        parse error.
        """
        seqs = yield from self.list_seqs(run_id)
        for seq in sorted(seqs, reverse=True):
            try:
                doc = yield from self.load(run_id, seq)
            except CheckpointCorrupt:
                continue
            return doc
        return None

    def load_history(self, run_id: str):
        """Kernel process: ``(latest_doc, merged_record_payloads)``.

        Each checkpoint carries only the record tail since the previous
        one; the merge walks every sequence in order and keeps the
        last-written payload per step, truncated to the latest document's
        resume step (records at or past it belong to the aborted attempt).
        """
        seqs = yield from self.list_seqs(run_id)
        if not seqs:
            return None, []
        merged: dict[int, dict] = {}
        latest = None
        for seq in sorted(seqs):
            try:
                doc = yield from self.load(run_id, seq)
            except CheckpointCorrupt:
                # A truncated artifact must not kill the resume; the
                # merge continues from the remaining valid documents.
                continue
            for record in doc["records"]:
                merged[int(record["step"])] = record
            latest = doc
        if latest is None:
            return None, []
        resume_step = int(latest["state"]["step"])
        records = [merged[s] for s in sorted(merged) if s < resume_step]
        return latest, records


class InMemoryCheckpointStore(CheckpointStoreBase):
    """Coordinator-local store for unit tests and overhead benchmarks.

    Documents still pass full schema validation and a JSON round-trip on
    save, so anything that works here works against the repository store.
    """

    def __init__(self):
        self._runs: dict[str, dict[int, str]] = {}

    def save(self, doc: dict):
        validate_checkpoint_payload(doc)
        run = self._runs.setdefault(doc["run_id"], {})
        seq = int(doc["seq"])
        if seq in run:
            raise ConfigurationError(
                f"checkpoint seq {seq} already saved for run "
                f"{doc['run_id']!r}")
        run[seq] = json.dumps(doc, sort_keys=True)
        return seq
        yield  # pragma: no cover - generator shape, parity with repo store

    def list_seqs(self, run_id: str):
        return sorted(self._runs.get(run_id, {}))
        yield  # pragma: no cover - generator shape, parity with repo store

    def load(self, run_id: str, seq: int):
        run = self._runs.get(run_id, {})
        if seq not in run:
            raise ConfigurationError(
                f"no checkpoint seq {seq} for run {run_id!r}")
        return _parse_checkpoint(run[seq], run_id=run_id, seq=seq,
                                 origin=f"memory:{run_id}/{seq}")
        yield  # pragma: no cover - generator shape, parity with repo store


class RepositoryCheckpointStore(CheckpointStoreBase):
    """Checkpoints as logical files in the central data repository.

    Save: serialize → stage on the coordinator host → move to the
    repository host with the configured transport → ``registerFile`` with
    NFMS under ``checkpoints/<run_id>/<seq>.json``.  Load: ``listFiles``
    by prefix, ``negotiateTransfer`` per document, pull the replica back
    to a local staging store, parse and re-validate.

    Unless ``manifest_enabled=False``, every save also writes a cumulative
    manifest (``checkpoints/<run_id>/manifest/<seq>.json``,
    ``repro.checkpoint-manifest/v1``) holding the latest document plus the
    merged record history, so :meth:`load_history` on resume costs one
    document fetch instead of one per sequence.  NFMS logical names are
    immutable, hence one manifest per sequence; a manifest write failure
    is logged, never fatal — the per-sequence documents remain the source
    of truth and :meth:`load_history` falls back to walking them.

    Unless ``compaction_enabled=False``, a successful manifest write also
    retires what it supersedes: per-sequence documents and manifests
    below the new manifest's sequence are unregistered from NFMS and
    dropped from the repository store.  Each removal is individually
    best-effort — a failure leaves an orphaned document behind, never an
    unreadable history — and :meth:`load_history` tolerates partially
    compacted runs by seeding the merge from the newest manifest and
    walking only the per-sequence documents newer than it.
    """

    def __init__(self, *, host: str, repo_host: str,
                 repo_store: StagingStore, transport: Transport,
                 rpc: RpcClient, nfms: GridServiceHandle,
                 staging: StagingStore | None = None,
                 manifest_enabled: bool = True,
                 compaction_enabled: bool = True):
        self.host = host
        self.repo_host = repo_host
        self.repo_store = repo_store
        self.transport = transport
        self.rpc = rpc
        self.nfms = nfms
        self.kernel = transport.kernel
        self.staging = staging or StagingStore(name=f"{host}-checkpoints")
        self.manifest_enabled = manifest_enabled
        self.compaction_enabled = compaction_enabled
        self.saved = 0
        self.loaded = 0
        self.manifest_saved = 0
        self.manifest_fetches = 0
        self.compacted = 0
        self._fetches = 0
        #: run_id -> step -> record payload (the manifest merge, cached)
        self._merged: dict[str, dict[int, dict]] = {}
        self._known_seqs: dict[str, list[int]] = {}
        #: run_id -> highest seq whose superseded documents were retired
        self._compacted_upto: dict[str, int] = {}

    @staticmethod
    def _prefix(run_id: str) -> str:
        return f"checkpoints/{run_id}/"

    def _logical(self, run_id: str, seq: int) -> str:
        return f"{self._prefix(run_id)}{seq:06d}.json"

    def _manifest_prefix(self, run_id: str) -> str:
        return f"{self._prefix(run_id)}manifest/"

    def _manifest_logical(self, run_id: str, seq: int) -> str:
        return f"{self._manifest_prefix(run_id)}{seq:06d}.json"

    def _nfms_call(self, operation: str, params: dict):
        reply = yield from self.rpc.call(
            self.nfms.host, self.nfms.port, "invoke",
            {"service_id": self.nfms.service_id, "operation": operation,
             "params": params})
        return reply

    def save(self, doc: dict):
        """Kernel process: persist one checkpoint document."""
        validate_checkpoint_payload(doc)
        name = self._logical(doc["run_id"], int(doc["seq"]))
        text = json.dumps(doc, sort_keys=True)
        staged = self.staging.deposit(name, [(float(doc["seq"]), text)],
                                      created=self.kernel.now)
        yield from self.transport.transfer(
            self.host, self.repo_host, staged, self.repo_store,
            dst_name=name)
        yield from self._nfms_call("registerFile", {
            "logical_name": name, "host": self.repo_host,
            "store": self.repo_store.name, "size": staged.size,
            "checksum": staged.checksum})
        self.saved += 1
        if self.manifest_enabled:
            try:
                yield from self._write_manifest(doc)
            except (RpcError, ReproError) as exc:
                self.kernel.emit("repository.checkpoint", "manifest.failed",
                                 run_id=doc["run_id"], seq=int(doc["seq"]),
                                 error=str(exc))
            else:
                if self.compaction_enabled:
                    yield from self._compact(doc["run_id"], int(doc["seq"]))
        return int(doc["seq"])

    def _write_manifest(self, doc: dict):
        """Kernel process: persist the cumulative manifest for ``doc``."""
        run_id = doc["run_id"]
        seq = int(doc["seq"])
        if run_id not in self._merged and seq > 1:
            # A fresh store incarnation extending an existing run (e.g.
            # the resumed coordinator): seed the merge from the prior
            # manifest before folding the new document in.
            prior = yield from self._load_latest_manifest(run_id)
            if prior is not None:
                self._merged[run_id] = {int(r["step"]): r
                                        for r in prior["records"]}
                self._known_seqs[run_id] = [int(s) for s in prior["seqs"]]
        merged = self._merged.setdefault(run_id, {})
        for record in doc["records"]:
            merged[int(record["step"])] = record
        seqs = self._known_seqs.setdefault(run_id, [])
        if seq not in seqs:
            seqs.append(seq)
            seqs.sort()
        manifest = {"schema": MANIFEST_SCHEMA_ID, "run_id": run_id,
                    "seq": seq, "seqs": list(seqs), "latest": doc,
                    "records": [merged[step] for step in sorted(merged)]}
        validate_manifest_payload(manifest)
        name = self._manifest_logical(run_id, seq)
        text = json.dumps(manifest, sort_keys=True)
        staged = self.staging.deposit(name, [(float(seq), text)],
                                      created=self.kernel.now)
        yield from self.transport.transfer(
            self.host, self.repo_host, staged, self.repo_store,
            dst_name=name)
        yield from self._nfms_call("registerFile", {
            "logical_name": name, "host": self.repo_host,
            "store": self.repo_store.name, "size": staged.size,
            "checksum": staged.checksum})
        self.manifest_saved += 1

    def _compact(self, run_id: str, upto_seq: int):
        """Kernel process: retire documents superseded by manifest ``upto_seq``.

        The manifest at ``upto_seq`` carries the merged record history and
        the latest state, so every older per-sequence document — and every
        older manifest — is redundant.  Removals are individually
        best-effort; seqs already retired by a prior call are skipped.
        """
        start = self._compacted_upto.get(run_id, 0)
        removed = 0
        for seq in [s for s in self._known_seqs.get(run_id, [])
                    if start < s < upto_seq]:
            for name in (self._logical(run_id, seq),
                         self._manifest_logical(run_id, seq)):
                ok = yield from self._remove_logical(name)
                removed += 1 if ok else 0
        self._compacted_upto[run_id] = max(start, upto_seq - 1)
        if removed:
            self.compacted += removed
            self.kernel.emit("repository.checkpoint", "compacted",
                             run_id=run_id, upto_seq=upto_seq,
                             removed=removed)

    def _remove_logical(self, name: str):
        """Kernel process: unregister + drop one logical file, best-effort."""
        try:
            yield from self._nfms_call("unregisterFile",
                                       {"logical_name": name})
        except (RpcError, ReproError):
            return False
        if self.repo_store.exists(name):
            self.repo_store.remove(name)
        return True

    def _load_latest_manifest(self, run_id: str):
        """Kernel process: the newest *valid* manifest document, or ``None``.

        Walks manifests newest-first and skips any that fetch back
        truncated or schema-invalid (a crash mid-write leaves exactly
        this) — resume falls back to the newest manifest that still
        parses instead of surfacing a JSON traceback.
        """
        prefix = self._manifest_prefix(run_id)
        names = yield from self._nfms_call("listFiles", {"prefix": prefix})
        seqs = []
        for name in names:
            stem = name[len(prefix):]
            if stem.endswith(".json"):
                try:
                    seqs.append(int(stem[:-len(".json")]))
                except ValueError:
                    continue
        for seq in sorted(seqs, reverse=True):
            name = self._manifest_logical(run_id, seq)
            negotiated = yield from self._nfms_call("negotiateTransfer", {
                "logical_name": name,
                "client_protocols": [self.transport.protocol]})
            replica = negotiated["replica"]
            self.manifest_fetches += 1
            local_name = f"{name}#fetch{self.manifest_fetches}"
            yield from self.transport.transfer(
                replica["host"], self.host, self.repo_store.get(name),
                self.staging, dst_name=local_name)
            rows = self.staging.get(local_name).rows
            try:
                manifest = json.loads(rows[0][1] if rows else "")
                validate_manifest_payload(manifest)
            except (json.JSONDecodeError, CheckpointSchemaError) as exc:
                self.kernel.emit("repository.checkpoint", "manifest.corrupt",
                                 run_id=run_id, seq=seq, error=str(exc))
                continue
            return manifest
        return None

    def load_history(self, run_id: str):
        """Kernel process: one manifest fetch instead of a sequence walk.

        When the newest manifest is *stale* (a later checkpoint exists
        whose manifest write failed), the merge is seeded from the
        manifest and only per-sequence documents newer than it are
        walked — compaction may already have dropped the older ones.
        Only with manifests disabled or absent entirely does this fall
        back to the full walk of
        :meth:`CheckpointStoreBase.load_history`.
        """
        seqs = yield from self.list_seqs(run_id)
        if not seqs:
            return None, []
        manifest = None
        if self.manifest_enabled:
            manifest = yield from self._load_latest_manifest(run_id)
        if manifest is None:
            result = yield from CheckpointStoreBase.load_history(self, run_id)
            return result
        merged = {int(r["step"]): r for r in manifest["records"]}
        latest = manifest["latest"]
        known = [int(s) for s in manifest["seqs"]]
        for seq in [s for s in seqs if s > int(manifest["seq"])]:
            try:
                doc = yield from self.load(run_id, seq)
            except CheckpointCorrupt as exc:
                self.kernel.emit("repository.checkpoint",
                                 "checkpoint.corrupt", run_id=run_id,
                                 seq=seq, error=str(exc))
                continue
            for record in doc["records"]:
                merged[int(record["step"])] = record
            latest = doc
            known.append(seq)
        self._merged[run_id] = merged
        self._known_seqs[run_id] = sorted(set(known))
        resume_step = int(latest["state"]["step"])
        records = [merged[s] for s in sorted(merged) if s < resume_step]
        return latest, records

    def list_seqs(self, run_id: str):
        """Kernel process: registered checkpoint sequences for a run."""
        prefix = self._prefix(run_id)
        names = yield from self._nfms_call("listFiles", {"prefix": prefix})
        seqs = []
        for name in names:
            stem = name[len(prefix):]
            if stem.endswith(".json"):
                try:
                    seqs.append(int(stem[:-len(".json")]))
                except ValueError:
                    continue
        return sorted(seqs)

    def load(self, run_id: str, seq: int):
        """Kernel process: fetch one checkpoint document back."""
        name = self._logical(run_id, seq)
        negotiated = yield from self._nfms_call("negotiateTransfer", {
            "logical_name": name,
            "client_protocols": [self.transport.protocol]})
        replica = negotiated["replica"]
        self._fetches += 1
        local_name = f"{name}#fetch{self._fetches}"
        yield from self.transport.transfer(
            replica["host"], self.host, self.repo_store.get(name),
            self.staging, dst_name=local_name)
        rows = self.staging.get(local_name).rows
        doc = _parse_checkpoint(rows[0][1] if rows else "", run_id=run_id,
                                seq=seq, origin=name)
        self.loaded += 1
        return doc
