"""The observatory query engine.

Label-selector range queries over a :class:`TimeSeriesStore`, with
``count/sum/avg/min/max/rate/quantile`` aggregation across series,
pagination, and staleness-aware tier selection.  Every answer is a
validated ``repro.observatory/v1`` ``query_result`` document, built the
same way from the same store contents no matter how many times it is
asked — the T-OBS determinism check compares the serialized documents
byte for byte.

Aggregation semantics per tier:

* ``count``/``sum`` — over raw points directly; over rollups,
  Σ ``count`` / Σ ``sum`` of the buckets (exact: buckets were folded
  from the same appends).
* ``avg`` — ``sum / count``.
* ``min``/``max`` — min-of-``min`` / max-of-``max``.
* ``rate`` — ``(last - first) / (t_last - t_first)`` over the window,
  for cumulative counters; rollups use the first bucket's ``first`` and
  the last bucket's ``last``.
* ``quantile`` — the interpolated percentile
  (:meth:`repro.telemetry.metrics.Histogram.percentile` arithmetic)
  over point values; rollups fall back to per-bucket means.
"""

from __future__ import annotations

import math
from typing import Any

from repro.observatory.schema import (AGGREGATIONS, TIERS,
                                      validate_query_result)
from repro.util.errors import ReproError

DEFAULT_PAGE_SIZE = 10
DEFAULT_MAX_POINTS = 200


class QueryError(ReproError):
    """A malformed observatory query request."""


def _percentile(values: list[float], p: float) -> float:
    """Interpolated percentile, matching ``Histogram.percentile``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _window(series, tier: str, start: float, end: float) -> list:
    """The tier's finalized points whose timestamps fall in [start, end]."""
    if tier == "raw":
        return [p for p in series.points(tier) if start <= p[0] <= end]
    return [b for b in series.points(tier)
            if b["end"] >= start and b["start"] <= end]


def _facts(points: list, tier: str) -> dict[str, Any]:
    """Window statistics shared by every aggregation operator."""
    if tier == "raw":
        values = [v for _, v in points]
        return {"count": len(points),
                "sum": math.fsum(values),
                "min": min(values) if values else 0.0,
                "max": max(values) if values else 0.0,
                "first": (points[0][0], points[0][1]) if points else None,
                "last": (points[-1][0], points[-1][1]) if points else None,
                "values": values}
    count = sum(b["count"] for b in points)
    return {"count": count,
            "sum": math.fsum(b["sum"] for b in points),
            "min": min((b["min"] for b in points), default=0.0),
            "max": max((b["max"] for b in points), default=0.0),
            "first": (points[0]["start"], points[0]["first"])
            if points else None,
            "last": (points[-1]["end"], points[-1]["last"])
            if points else None,
            "values": [b["sum"] / b["count"] for b in points]}


def _rate(first, last) -> float:
    if first is None or last is None or last[0] <= first[0]:
        return 0.0
    return (last[1] - first[1]) / (last[0] - first[0])


def _aggregate(op: str, quantile: float, facts: dict[str, Any]) -> float:
    if op == "count":
        return float(facts["count"])
    if op == "sum":
        return facts["sum"]
    if op == "avg":
        return facts["sum"] / facts["count"] if facts["count"] else 0.0
    if op == "min":
        return facts["min"]
    if op == "max":
        return facts["max"]
    if op == "rate":
        return _rate(facts["first"], facts["last"])
    return _percentile(facts["values"], quantile)


def _combined(op: str, quantile: float,
              per_series: list[dict[str, Any]]) -> dict[str, Any] | None:
    """One aggregate across every matched series (not just the page)."""
    if not per_series:
        return None
    count = sum(f["count"] for f in per_series)
    if op == "count":
        value = float(count)
    elif op == "sum":
        value = math.fsum(f["sum"] for f in per_series)
    elif op == "avg":
        total = math.fsum(f["sum"] for f in per_series)
        value = total / count if count else 0.0
    elif op == "min":
        value = min((f["min"] for f in per_series if f["count"]),
                    default=0.0)
    elif op == "max":
        value = max((f["max"] for f in per_series if f["count"]),
                    default=0.0)
    elif op == "rate":
        value = math.fsum(_rate(f["first"], f["last"]) for f in per_series)
    else:
        pooled: list[float] = []
        for f in per_series:
            pooled.extend(f["values"])
        value = _percentile(pooled, quantile)
    return {"op": op, "value": value, "count": count}


def normalize_request(request: dict[str, Any], *, now: float) -> dict[str, Any]:
    """Validate and fill in a raw query request dict."""
    if not isinstance(request, dict):
        raise QueryError("query request must be an object")
    metric = request.get("metric")
    if not isinstance(metric, str) or not metric:
        raise QueryError("query needs a non-empty 'metric'")
    selector = request.get("selector") or {}
    if not isinstance(selector, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in selector.items()):
        raise QueryError("'selector' must map label names to values")
    agg = request.get("agg")
    if agg is not None and agg not in AGGREGATIONS:
        raise QueryError(
            f"'agg' must be one of {AGGREGATIONS}, got {agg!r}")
    quantile = request.get("quantile")
    if agg == "quantile":
        if not isinstance(quantile, (int, float)) or isinstance(
                quantile, bool) or not 0.0 <= float(quantile) <= 100.0:
            raise QueryError("'quantile' must be a number in [0, 100]")
        quantile = float(quantile)
    else:
        quantile = None
    tier = request.get("tier", "auto")
    if tier not in ("auto",) + TIERS:
        raise QueryError(f"'tier' must be auto or one of {TIERS}")
    page = request.get("page", 1)
    page_size = request.get("page_size", DEFAULT_PAGE_SIZE)
    if not isinstance(page, int) or isinstance(page, bool) or page < 1:
        raise QueryError("'page' must be a positive integer")
    if (not isinstance(page_size, int) or isinstance(page_size, bool)
            or page_size < 1):
        raise QueryError("'page_size' must be a positive integer")
    start = request.get("start", 0.0)
    end = request.get("end", now)
    for key, value in (("start", start), ("end", end)):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise QueryError(f"'{key}' must be a number")
    if end < start:
        raise QueryError("'end' must be >= 'start'")
    max_points = request.get("max_points", DEFAULT_MAX_POINTS)
    if (not isinstance(max_points, int) or isinstance(max_points, bool)
            or max_points < 1):
        raise QueryError("'max_points' must be a positive integer")
    return {"metric": metric, "selector": dict(selector),
            "start": float(start), "end": float(end), "agg": agg,
            "quantile": quantile, "tier": tier, "page": page,
            "page_size": page_size, "max_points": max_points}


def run_query(store, request: dict[str, Any], *, now: float) -> dict[str, Any]:
    """Answer one range query with a validated ``query_result`` document."""
    req = normalize_request(request, now=now)
    matched = store.match(req["metric"], req["selector"])
    if req["tier"] == "auto":
        tier = "raw"
        for series in matched:
            picked = series.pick_tier(req["start"])
            if TIERS.index(picked) > TIERS.index(tier):
                tier = picked
    else:
        tier = req["tier"]

    per_series_facts = []
    rendered = []
    for series in matched:
        window = _window(series, tier, req["start"], req["end"])
        facts = _facts(window, tier)
        per_series_facts.append(facts)
        if tier == "raw":
            points = [[t, v] for t, v in window]
        else:
            points = [[b["end"], b["sum"] / b["count"]] for b in window]
        truncated = len(points) > req["max_points"]
        if truncated:
            points = points[-req["max_points"]:]
        entry = {"name": series.name, "labels": dict(series.labels),
                 "points": points, "truncated": truncated,
                 "aggregate": None}
        if req["agg"] is not None:
            entry["aggregate"] = {
                "op": req["agg"],
                "value": _aggregate(req["agg"], req["quantile"] or 0.0,
                                    facts),
                "count": facts["count"]}
        rendered.append(entry)

    pages = max(1, math.ceil(len(rendered) / req["page_size"]))
    page = min(req["page"], pages)
    lo = (page - 1) * req["page_size"]
    page_entries = rendered[lo:lo + req["page_size"]]

    combined = None
    if req["agg"] is not None:
        combined = _combined(req["agg"], req["quantile"] or 0.0,
                             per_series_facts)

    query_echo = {key: req[key] for key in
                  ("metric", "selector", "start", "end", "agg",
                   "quantile", "tier", "page", "page_size")}
    payload = {"schema": "repro.observatory/v1", "kind": "query_result",
               "time": now, "query": query_echo, "tier": tier,
               "total_series": len(rendered), "page": page,
               "pages": pages, "series": page_entries,
               "aggregate": combined}
    validate_query_result(payload)
    return payload
