"""Wire the grid observatory into an assembled MOST deployment.

:func:`attach_observatory` stands the whole history plane up on the
repository host — where the paper's data archive already lives — and
rides the monitoring kit's existing NSDS metrics stream:

* a :class:`~repro.observatory.tsdb.TimeSeriesStore` fed by its own
  :class:`~repro.nsds.subscriber.NSDSReceiver` subscribed to the same
  ``monitor-metrics`` channel the console watches (a second best-effort
  subscriber; the streamer fans out);
* an :class:`~repro.observatory.service.ObservatoryService` in its own
  container on the repo host, so any grid client can run range queries;
* an :class:`~repro.observatory.slo.SLOEvaluator` sweeping the store and
  raising ``slo_burn`` alerts through the console's standard channel;
* a :class:`~repro.observatory.recorder.FlightRecorder` whose rings are
  snapshotted — and NMDS-registered, checkpoint-style — whenever an
  alert escalates to ``critical`` or the run aborts.

Everything crosses the simulated network on the sim clock, so repeated
runs of the same campaign produce byte-identical query results,
snapshots, and postmortems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.monitor.streamer import TelemetryStreamer
from repro.net.rpc import RpcClient, RpcError
from repro.nsds.subscriber import NSDSReceiver
from repro.observatory.query import run_query
from repro.observatory.recorder import FlightRecorder, postmortem_timeline
from repro.observatory.schema import SCHEMA_ID, validate_dump
from repro.observatory.service import ObservatoryService
from repro.observatory.slo import SLOEvaluator, SLOSpec, default_slos
from repro.observatory.tsdb import TimeSeriesStore
from repro.ogsi.container import ServiceContainer
from repro.util.errors import ReproError

#: host the observatory lives on (the paper's NCSA data repository)
OBSERVATORY_HOST = "repo"


@dataclass
class ObservatoryKit:
    """Handles to every piece :func:`attach_observatory` created."""

    kernel: Any
    store: TimeSeriesStore
    service: ObservatoryService
    receiver: NSDSReceiver
    recorder: FlightRecorder
    slo: SLOEvaluator
    container: ServiceContainer
    monitor_kit: Any
    run_id: str
    nmds: Any = None
    rpc: RpcClient | None = None
    registered_snapshots: list = field(default_factory=list)

    def start(self) -> None:
        """Begin the periodic SLO sweep."""
        self.slo.start()

    def stop(self) -> None:
        """Stop the sweep loop and refresh the stats SDE one last time."""
        self.slo.stop()
        self.service.publish_stats()

    # -- the read path --------------------------------------------------------
    def query(self, request: dict[str, Any]) -> dict[str, Any]:
        """Run a range query directly against the local store."""
        return run_query(self.store, request, now=self.kernel.now)

    def postmortem(self, run_id: str | None = None, *,
                   last_steps: int = 5) -> str:
        """Render the newest flight snapshot (for ``run_id``) as text."""
        wanted = run_id or self.run_id
        for snapshot in reversed(self.recorder.snapshots):
            if snapshot["run_id"] == wanted:
                return postmortem_timeline(snapshot, last_steps=last_steps)
        raise ReproError(f"no flight snapshot recorded for run {wanted!r}")

    def dump(self) -> dict[str, Any]:
        """The whole store as a validated ``repro.observatory/v1`` dump."""
        payload = {"schema": SCHEMA_ID, "kind": "dump",
                   "run_id": self.run_id, "time": self.kernel.now,
                   "series": self.store.series_records(),
                   "slo": self.slo.evaluate_quiet(),
                   "snapshots": list(self.recorder.snapshots)}
        validate_dump(payload)
        return payload

    # -- incident capture -----------------------------------------------------
    def record_abort(self, result) -> dict[str, Any]:
        """Snapshot the flight rings for an aborted run.

        Called by the session after the coordinator returns incomplete;
        the NMDS registration is scheduled as a kernel process so the
        session's drain phase carries it to the repository.
        """
        step = result.aborted_at_step
        if step is None:
            step = result.steps_completed
        snapshot = self.recorder.snapshot(
            run_id=result.run_id or self.run_id, reason="abort",
            step=int(step), site=result.aborted_site or None)
        self._register_snapshot(snapshot)
        return snapshot

    def record_escalation(self, alert) -> dict[str, Any]:
        """Snapshot the flight rings when an alert escalates to critical."""
        snapshot = self.recorder.snapshot(
            run_id=self.run_id, reason=f"alert:{alert.kind}",
            step=alert.step, site=alert.site)
        self._register_snapshot(snapshot)
        return snapshot

    def _register_snapshot(self, snapshot: dict[str, Any]) -> None:
        if self.nmds is None or self.rpc is None:
            return

        def register():
            try:
                object_id = yield from self.rpc.call(
                    OBSERVATORY_HOST, "ogsi", "invoke",
                    {"service_id": self.nmds.service_id,
                     "operation": "createObject",
                     "params": {"object_type": "flight-recording",
                                "fields": {"run_id": snapshot["run_id"],
                                           "reason": snapshot["reason"],
                                           "step": snapshot["step"],
                                           "site": snapshot["site"],
                                           "schema": SCHEMA_ID,
                                           "snapshot": snapshot}}})
            except (RpcError, ReproError):
                return  # repo unreachable mid-incident: snapshot stays local
            self.registered_snapshots.append(object_id)

        self.kernel.process(register(), name="observatory-register-snapshot")


def attach_observatory(dep, kit, *, run_id: str,
                       slos: list[SLOSpec] | None = None,
                       slo_interval: float = 60.0,
                       recorder_capacity: int = 256,
                       escalate_on: str = "critical",
                       subscription_lifetime: float = 1e9) -> ObservatoryKit:
    """Deploy the observatory against ``dep``, riding monitoring kit ``kit``.

    Requires :func:`repro.monitor.attach_monitoring` to have run first —
    the observatory subscribes to the same NSDS metrics stream and routes
    its SLO alerts through the console.  The SLO sweep starts with
    :meth:`ObservatoryKit.start`.
    """
    kernel, network = dep.kernel, dep.network

    store = TimeSeriesStore(kernel)
    receiver = NSDSReceiver(network, OBSERVATORY_HOST,
                            callback=store.on_stream_sample)
    recorder = FlightRecorder(kernel, capacity=recorder_capacity)

    # The repo host's "ogsi" port belongs to the repository container in
    # the full deployment; the observatory takes its own port.
    container = ServiceContainer(network, OBSERVATORY_HOST,
                                 port="observatory")
    service = ObservatoryService(store=store, recorder=recorder)
    container.deploy(service)

    evaluator = SLOEvaluator(kernel, store,
                             slos if slos is not None else default_slos(),
                             alert_sink=kit.monitor.raise_alert,
                             interval=slo_interval)

    obs = ObservatoryKit(kernel=kernel, store=store, service=service,
                         receiver=receiver, recorder=recorder,
                         slo=evaluator, container=container,
                         monitor_kit=kit, run_id=run_id,
                         nmds=getattr(dep, "nmds", None),
                         rpc=RpcClient(network, OBSERVATORY_HOST,
                                       default_timeout=30.0))

    # Critical alerts freeze the flight rings — the step-1493 black box.
    previous_on_alert = kit.monitor.on_alert

    def on_alert(alert):
        if alert.severity == escalate_on:
            obs.record_escalation(alert)
        if previous_on_alert is not None:
            previous_on_alert(alert)

    kit.monitor.on_alert = on_alert

    rpc = RpcClient(network, OBSERVATORY_HOST, default_timeout=30.0)

    def subscribe():
        yield from rpc.call(
            "coord", "ogsi", "invoke",
            {"service_id": kit.nsds.service_id, "operation": "subscribe",
             "params": {"sink_host": OBSERVATORY_HOST,
                        "sink_port": receiver.port,
                        "channels": [TelemetryStreamer.CHANNEL],
                        "lifetime": subscription_lifetime}})

    kernel.process(subscribe(), name="observatory-subscription")

    dep.extras["observatory"] = obs
    return obs
