"""Schema validation for ``repro.observatory/v1`` documents.

Everything the grid observatory hands out — query results, store dumps,
flight-recorder snapshots — is a plain dict carrying
``schema: "repro.observatory/v1"`` and a ``kind`` discriminator,
validated at the producing end so a malformed document fails the run
instead of rotting in an archive.  Hand-rolled in the style of
:mod:`repro.telemetry.schema`: stdlib only, JSON-path error messages.

Document kinds:

* ``query_result`` — one :func:`repro.observatory.query.run_query`
  answer: the matched series page plus per-series and combined
  aggregates;
* ``dump`` — a whole :class:`~repro.observatory.tsdb.TimeSeriesStore`
  serialized for offline querying (the ``repro observatory`` CLI reads
  these), including SLO statuses and flight snapshots;
* ``flight`` — one :class:`~repro.observatory.recorder.FlightRecorder`
  snapshot: the bounded per-source event rings frozen at escalation or
  abort time.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.schema import validate_metric_name
from repro.util.errors import ReproError

SCHEMA_ID = "repro.observatory/v1"

#: aggregation operators the query engine understands
AGGREGATIONS = ("count", "sum", "avg", "min", "max", "rate", "quantile")
#: downsampling tiers, finest first (``raw`` -> 10-step -> 100-step)
TIERS = ("raw", "r10", "r100")
#: the per-bucket statistics a finalized rollup carries
BUCKET_KEYS = ("start", "end", "count", "sum", "min", "max", "first",
               "last")
#: event record types a flight snapshot may carry
EVENT_TYPES = ("span", "log")


class ObservatorySchemaError(ReproError):
    """A document does not match the ``repro.observatory/v1`` shape."""


def _fail(path: str, message: str) -> None:
    raise ObservatorySchemaError(f"{path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        _fail(path, message)


def _check_number(value: Any, path: str) -> None:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             path, f"expected a number, got {type(value).__name__}")


def _check_int(value: Any, path: str, *, minimum: int | None = None) -> None:
    _require(isinstance(value, int) and not isinstance(value, bool),
             path, f"expected an integer, got {type(value).__name__}")
    if minimum is not None:
        _require(value >= minimum, path, f"must be >= {minimum}, got {value}")


def _check_labels(labels: Any, path: str) -> None:
    _require(isinstance(labels, dict), path, "labels must be an object")
    for key, value in labels.items():
        _require(isinstance(key, str) and isinstance(value, str),
                 f"{path}.{key}", "labels must map strings to strings")


def _check_envelope(payload: Any, kind: str) -> None:
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == SCHEMA_ID, "$.schema",
             f"expected {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    _require(payload.get("kind") == kind, "$.kind",
             f"expected {kind!r}, got {payload.get('kind')!r}")
    _check_number(payload.get("time"), "$.time")


def _check_points(points: Any, path: str) -> None:
    _require(isinstance(points, list), path, "points must be a list")
    for i, point in enumerate(points):
        _require(isinstance(point, list) and len(point) == 2,
                 f"{path}[{i}]", "each point is a [time, value] pair")
        _check_number(point[0], f"{path}[{i}][0]")
        _check_number(point[1], f"{path}[{i}][1]")


def _check_bucket(bucket: Any, path: str) -> None:
    _require(isinstance(bucket, dict), path, "bucket must be an object")
    for key in BUCKET_KEYS:
        _require(key in bucket, f"{path}.{key}", "missing")
        _check_number(bucket[key], f"{path}.{key}")
    _require(bucket["end"] >= bucket["start"], f"{path}.end",
             "bucket must close at or after its start")
    _require(isinstance(bucket["count"], int) and bucket["count"] >= 1,
             f"{path}.count", "bucket count must be a positive integer")


def _check_aggregate(agg: Any, path: str) -> None:
    if agg is None:
        return
    _require(isinstance(agg, dict), path, "aggregate must be an object")
    _require(agg.get("op") in AGGREGATIONS, f"{path}.op",
             f"op must be one of {AGGREGATIONS}, got {agg.get('op')!r}")
    _check_number(agg.get("value"), f"{path}.value")
    _check_int(agg.get("count"), f"{path}.count", minimum=0)


def validate_query_result(payload: Any) -> None:
    """One query-engine answer.

    Shape::

        {"schema": "repro.observatory/v1", "kind": "query_result",
         "time": 512.0,
         "query": {"metric": "...", "selector": {...}, "start": 0.0,
                   "end": 512.0, "agg": "avg"|null, "quantile": 95.0|null,
                   "tier": "auto", "page": 1, "page_size": 10},
         "tier": "raw", "total_series": 3, "page": 1, "pages": 1,
         "series": [{"name": "...", "labels": {...},
                     "points": [[t, v], ...], "truncated": false,
                     "aggregate": {...}|null}],
         "aggregate": {"op": "avg", "value": 1.0, "count": 40}|null}
    """
    _check_envelope(payload, "query_result")
    query = payload.get("query")
    _require(isinstance(query, dict), "$.query", "query must be an object")
    validate_metric_name(query.get("metric"), "$.query.metric")
    _check_labels(query.get("selector", {}), "$.query.selector")
    _check_number(query.get("start"), "$.query.start")
    _check_number(query.get("end"), "$.query.end")
    agg = query.get("agg")
    _require(agg is None or agg in AGGREGATIONS, "$.query.agg",
             f"agg must be null or one of {AGGREGATIONS}, got {agg!r}")
    tier = payload.get("tier")
    _require(tier in TIERS, "$.tier",
             f"tier must be one of {TIERS}, got {tier!r}")
    _check_int(payload.get("total_series"), "$.total_series", minimum=0)
    _check_int(payload.get("page"), "$.page", minimum=1)
    _check_int(payload.get("pages"), "$.pages", minimum=1)
    series = payload.get("series")
    _require(isinstance(series, list), "$.series", "series must be a list")
    for i, entry in enumerate(series):
        path = f"$.series[{i}]"
        _require(isinstance(entry, dict), path,
                 "series entry must be an object")
        validate_metric_name(entry.get("name"), f"{path}.name")
        _check_labels(entry.get("labels", {}), f"{path}.labels")
        _check_points(entry.get("points"), f"{path}.points")
        _require(isinstance(entry.get("truncated"), bool),
                 f"{path}.truncated", "must be a boolean")
        _check_aggregate(entry.get("aggregate"), f"{path}.aggregate")
    _check_aggregate(payload.get("aggregate"), "$.aggregate")


def validate_flight_snapshot(payload: Any) -> None:
    """One flight-recorder snapshot.

    Shape::

        {"schema": "repro.observatory/v1", "kind": "flight",
         "run_id": "most-obs", "reason": "abort", "time": 481.0,
         "step": 39, "site": "uiuc",
         "sources": {"ntcp-uiuc": [{"time": 470.1, "type": "log",
                                    "what": "transaction.proposed",
                                    "step": 39, "detail": {...}}, ...]}}
    """
    _check_envelope(payload, "flight")
    run_id = payload.get("run_id")
    _require(isinstance(run_id, str) and bool(run_id), "$.run_id",
             "run_id must be a non-empty string")
    reason = payload.get("reason")
    _require(isinstance(reason, str) and bool(reason), "$.reason",
             "reason must be a non-empty string")
    _check_int(payload.get("step"), "$.step", minimum=-1)
    site = payload.get("site")
    _require(site is None or (isinstance(site, str) and bool(site)),
             "$.site", "site must be a non-empty string or null")
    sources = payload.get("sources")
    _require(isinstance(sources, dict), "$.sources",
             "sources must be an object")
    for source, events in sources.items():
        path = f"$.sources.{source}"
        _require(isinstance(source, str) and bool(source), path,
                 "source must be a non-empty string")
        _require(isinstance(events, list), path, "events must be a list")
        for i, event in enumerate(events):
            epath = f"{path}[{i}]"
            _require(isinstance(event, dict), epath,
                     "event must be an object")
            _check_number(event.get("time"), f"{epath}.time")
            _require(event.get("type") in EVENT_TYPES, f"{epath}.type",
                     f"type must be one of {EVENT_TYPES}")
            what = event.get("what")
            _require(isinstance(what, str) and bool(what), f"{epath}.what",
                     "what must be a non-empty string")
            step = event.get("step")
            _require(step is None
                     or (isinstance(step, int)
                         and not isinstance(step, bool)),
                     f"{epath}.step", "step must be an integer or null")
            _require(isinstance(event.get("detail", {}), dict),
                     f"{epath}.detail", "detail must be an object")


def validate_dump(payload: Any) -> None:
    """A whole-store dump for offline querying.

    Shape::

        {"schema": "repro.observatory/v1", "kind": "dump",
         "run_id": "most-obs", "time": 512.0,
         "series": [{"name": "...", "labels": {...}, "appended": 40,
                     "raw": [[t, v], ...], "r10": [bucket, ...],
                     "r100": [bucket, ...]}],
         "slo": [{"name": "...", ...}, ...],
         "snapshots": [<flight doc>, ...]}
    """
    _check_envelope(payload, "dump")
    run_id = payload.get("run_id")
    _require(isinstance(run_id, str) and bool(run_id), "$.run_id",
             "run_id must be a non-empty string")
    series = payload.get("series")
    _require(isinstance(series, list), "$.series", "series must be a list")
    for i, entry in enumerate(series):
        path = f"$.series[{i}]"
        _require(isinstance(entry, dict), path,
                 "series entry must be an object")
        validate_metric_name(entry.get("name"), f"{path}.name")
        _check_labels(entry.get("labels", {}), f"{path}.labels")
        _check_int(entry.get("appended"), f"{path}.appended", minimum=0)
        _check_points(entry.get("raw"), f"{path}.raw")
        for tier in ("r10", "r100"):
            buckets = entry.get(tier)
            _require(isinstance(buckets, list), f"{path}.{tier}",
                     "rollup tier must be a list")
            for j, bucket in enumerate(buckets):
                _check_bucket(bucket, f"{path}.{tier}[{j}]")
    slo = payload.get("slo")
    _require(isinstance(slo, list), "$.slo", "slo must be a list")
    for i, status in enumerate(slo):
        path = f"$.slo[{i}]"
        _require(isinstance(status, dict), path,
                 "SLO status must be an object")
        name = status.get("name")
        _require(isinstance(name, str) and bool(name), f"{path}.name",
                 "name must be a non-empty string")
        _check_number(status.get("budget_remaining"),
                      f"{path}.budget_remaining")
    snapshots = payload.get("snapshots")
    _require(isinstance(snapshots, list), "$.snapshots",
             "snapshots must be a list")
    for i, snapshot in enumerate(snapshots):
        try:
            validate_flight_snapshot(snapshot)
        except ObservatorySchemaError as exc:
            _fail(f"$.snapshots[{i}]", str(exc))
