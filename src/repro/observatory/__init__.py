"""The grid observatory: durable operational history over the fleet.

PR 4 made telemetry *live* (streamed deltas, console alerts) and PR 8
made the grid *shared* (100 tenant experiments over one site pool) —
but everything still evaporated with the kernel.  This package is the
history plane: a grid-hosted time-series + trace store that every
host's :class:`~repro.monitor.streamer.TelemetryStreamer` feeds over
NSDS, with

* a TSDB core of bounded per-series rings and 10-/100-step rollup
  tiers (:mod:`repro.observatory.tsdb`);
* a label-selector query engine with sum/avg/max/rate/quantile
  aggregation and pagination (:mod:`repro.observatory.query`);
* declarative SLOs with fast/slow burn-rate alerting through the
  existing console (:mod:`repro.observatory.slo`);
* a black-box flight recorder snapshotted on escalation or abort, and
  the step-1493-style postmortem renderer
  (:mod:`repro.observatory.recorder`);
* the OGSI service front end and deployment wiring
  (:mod:`repro.observatory.service`, :mod:`repro.observatory.wiring`).

Documents cross the wire as schema-validated ``repro.observatory/v1``
dicts (:mod:`repro.observatory.schema`); everything runs on the sim
clock, so repeated campaigns produce byte-identical query results and
postmortems.
"""

from repro.observatory.query import QueryError, run_query
from repro.observatory.recorder import FlightRecorder, postmortem_timeline
from repro.observatory.schema import (
    AGGREGATIONS,
    SCHEMA_ID,
    TIERS,
    ObservatorySchemaError,
    validate_dump,
    validate_flight_snapshot,
    validate_query_result,
)
from repro.observatory.service import ObservatoryService
from repro.observatory.slo import (
    BurnRateRule,
    SLOEvaluator,
    SLOSpec,
    default_slos,
)
from repro.observatory.tsdb import Series, TimeSeriesStore
from repro.observatory.wiring import ObservatoryKit, attach_observatory

__all__ = [
    "AGGREGATIONS",
    "BurnRateRule",
    "FlightRecorder",
    "ObservatoryKit",
    "ObservatorySchemaError",
    "ObservatoryService",
    "QueryError",
    "SCHEMA_ID",
    "SLOEvaluator",
    "SLOSpec",
    "Series",
    "TIERS",
    "TimeSeriesStore",
    "attach_observatory",
    "default_slos",
    "postmortem_timeline",
    "run_query",
    "validate_dump",
    "validate_flight_snapshot",
    "validate_query_result",
]
