"""The black-box flight recorder.

A bounded per-source ring of recent activity — finished spans, protocol
verb results, and state-machine transitions — kept hot in memory and
frozen into a ``repro.observatory/v1`` flight snapshot the moment an
alert escalates or a run aborts.  The snapshot is what the MOST team
did not have at step 1493: one document saying what every site saw in
the last N steps before the failure, renderable as an incident timeline
by ``repro observatory postmortem``.

Sources are derived from where the event came from: NTCP servers record
under ``ntcp-<site>`` (their OGSI subsystem), coordinator events under
``coordinator``, fleet events under ``fleet``, and coordinator step
spans under their ``site`` attribute when they carry one.  Steps are
recovered from event detail or from transaction names
(``<run>-step<NNNNN>-<site>``), so the timeline can be filtered to the
last N steps before the incident.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Any

from repro.observatory.schema import validate_flight_snapshot

#: event-log subsystems the recorder keeps (prefix match)
RECORDED_SUBSYSTEMS = ("ogsi.", "coordinator.", "fleet.")
#: step number embedded in NTCP transaction names
_STEP_RE = re.compile(r"step(\d+)")


def _jsonable(value: Any) -> Any:
    """Coerce arbitrary event detail into JSON-serializable data."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def extract_step(what: str, detail: dict[str, Any]) -> int | None:
    """Recover a step number from event detail or a transaction name."""
    step = detail.get("step")
    if isinstance(step, int) and not isinstance(step, bool):
        return step
    for key in ("txn", "transaction", "name"):
        candidate = detail.get(key)
        if isinstance(candidate, str):
            found = _STEP_RE.search(candidate)
            if found:
                return int(found.group(1))
    found = _STEP_RE.search(what)
    if found:
        return int(found.group(1))
    return None


class FlightRecorder:
    """Bounded per-source rings of recent spans and protocol events."""

    def __init__(self, kernel, *, capacity: int = 256):
        self.kernel = kernel
        self.capacity = capacity
        self._rings: dict[str, deque] = {}
        self.snapshots: list[dict[str, Any]] = []
        self._tm_events = kernel.telemetry.counter(
            "observatory.flight.events")
        self._tm_snapshots = kernel.telemetry.counter(
            "observatory.flight.snapshots")
        kernel.log.subscribe(self._on_log)
        kernel.telemetry.add_sink(self)

    # -- ingestion ------------------------------------------------------------
    def _ring(self, source: str) -> deque:
        ring = self._rings.get(source)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._rings[source] = ring
        return ring

    def _record(self, source: str, event: dict[str, Any]) -> None:
        self._ring(source).append(event)
        self._tm_events.inc()

    def _on_log(self, record) -> None:
        """EventLog listener: keep protocol/coordinator/fleet events."""
        subsystem = record.subsystem
        if not subsystem.startswith(RECORDED_SUBSYSTEMS):
            return
        if subsystem.startswith("ogsi."):
            source = subsystem[len("ogsi."):]
        elif subsystem.startswith("coordinator."):
            source = "coordinator"
        else:
            source = "fleet"
        detail = _jsonable(record.detail)
        self._record(source, {"time": record.time, "type": "log",
                              "what": record.kind,
                              "step": extract_step(record.kind, detail),
                              "detail": detail})

    def on_span(self, span) -> None:
        """Telemetry sink hook: keep coordinator and per-site spans."""
        attrs = span.attrs or {}
        site = attrs.get("site")
        if span.name.startswith("coordinator."):
            source = "coordinator"
        elif isinstance(site, str) and site:
            source = site
        else:
            return
        detail = _jsonable(dict(attrs))
        detail["duration"] = span.end_time - span.start
        self._record(source, {"time": span.end_time, "type": "span",
                              "what": span.name,
                              "step": extract_step(span.name, detail),
                              "detail": detail})

    # -- snapshots ------------------------------------------------------------
    def snapshot(self, *, run_id: str, reason: str, step: int = -1,
                 site: str | None = None) -> dict[str, Any]:
        """Freeze every ring into a validated flight document."""
        payload = {"schema": "repro.observatory/v1", "kind": "flight",
                   "run_id": run_id, "reason": reason,
                   "time": self.kernel.now, "step": step, "site": site,
                   "sources": {source: list(self._rings[source])
                               for source in sorted(self._rings)}}
        validate_flight_snapshot(payload)
        self.snapshots.append(payload)
        self._tm_snapshots.inc()
        return payload

    def stats(self) -> dict[str, Any]:
        """Recorder accounting for the service's SDE."""
        return {"sources": len(self._rings),
                "events": sum(len(r) for r in self._rings.values()),
                "snapshots": len(self.snapshots),
                "capacity": self.capacity}


def postmortem_timeline(snapshot: dict[str, Any], *,
                        last_steps: int = 5) -> str:
    """Render a flight snapshot as a step-1493-style incident timeline.

    Merges every source's events into one time-ordered listing, filtered
    to the last ``last_steps`` steps before the incident step (events
    with no recoverable step are kept — they are usually the failure
    itself).
    """
    validate_flight_snapshot(snapshot)
    incident_step = snapshot["step"]
    cutoff = incident_step - last_steps + 1 if incident_step >= 0 else None
    merged = []
    for source, events in snapshot["sources"].items():
        for event in events:
            step = event.get("step")
            if (cutoff is not None and step is not None
                    and not cutoff <= step <= incident_step):
                continue
            merged.append((event["time"], source, event))
    merged.sort(key=lambda item: (item[0], item[1]))

    site = snapshot["site"] or "unknown"
    lines = [f"POSTMORTEM  run={snapshot['run_id']}  "
             f"reason={snapshot['reason']}",
             f"incident    step={incident_step}  site={site}  "
             f"t={snapshot['time']:.3f}",
             f"window      last {last_steps} steps, "
             f"{len(merged)} events from "
             f"{len(snapshot['sources'])} sources", ""]
    header = f"{'time':>10}  {'source':<14} {'step':>5}  event"
    lines.append(header)
    lines.append("-" * len(header))
    for time, source, event in merged:
        step = event.get("step")
        step_text = f"{step:>5}" if step is not None else "    -"
        what = event["what"]
        if event["type"] == "span":
            duration = event["detail"].get("duration")
            if isinstance(duration, (int, float)):
                what = f"{what} ({duration:.3f}s)"
        lines.append(f"{time:>10.3f}  {source:<14} {step_text}  {what}")
    return "\n".join(lines)
