"""The observatory's time-series core: bounded rings with rollup tiers.

Every series is keyed by metric name + label set (tenant / site / run /
stat) and holds three tiers:

* ``raw`` — an append-only ring of ``(time, value)`` points, bounded by
  ``raw_capacity``;
* ``r10`` — every 10 raw appends folded into one finalized bucket
  (count / sum / min / max / first / last over the 10 points);
* ``r100`` — the same folding at 100 raw appends per bucket.

Rollups are built *at append time* from the same arithmetic a reader
would apply to the raw ring, so downsampled answers stay consistent with
raw answers wherever both tiers still cover the range (the T-OBS
benchmark asserts this).  When the raw ring has evicted past a query's
start, the query engine falls back to the coarser tier that still
reaches it — "staleness-aware" downsampling with bounded retention at
every tier.

Everything advances on the simulation clock (points carry the streamed
sample's sim time), so two runs of the same campaign produce
byte-identical store contents.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

from repro.monitor.schema import validate_metrics_sample
from repro.observatory.schema import TIERS

#: raw appends folded into one bucket, per rollup tier
ROLLUP_SPANS = {"r10": 10, "r100": 100}
#: the histogram summary statistics stored as ``stat=...`` sub-series
HISTOGRAM_STATS = ("count", "mean", "p50", "p95", "p99")


def series_key(name: str, labels: dict[str, str]) -> tuple:
    """The canonical (hashable, sorted) identity of one series."""
    return (name, tuple(sorted(labels.items())))


class Series:
    """One metric stream: a raw ring plus its finalized rollup tiers."""

    __slots__ = ("name", "labels", "raw", "rollups", "appended",
                 "raw_capacity", "rollup_capacity", "_open")

    def __init__(self, name: str, labels: dict[str, str], *,
                 raw_capacity: int = 512, rollup_capacity: int = 256):
        self.name = name
        self.labels = dict(labels)
        self.raw_capacity = raw_capacity
        self.rollup_capacity = rollup_capacity
        self.raw: deque = deque(maxlen=raw_capacity)
        self.rollups: dict[str, deque] = {
            tier: deque(maxlen=rollup_capacity) for tier in ROLLUP_SPANS}
        self._open: dict[str, dict[str, Any] | None] = {
            tier: None for tier in ROLLUP_SPANS}
        self.appended = 0

    def append(self, time: float, value: float) -> None:
        """Record one point; fold it into every open rollup bucket."""
        self.raw.append((time, value))
        self.appended += 1
        for tier, span in ROLLUP_SPANS.items():
            bucket = self._open[tier]
            if bucket is None:
                bucket = {"start": time, "end": time, "count": 0,
                          "sum": 0.0, "min": value, "max": value,
                          "first": value, "last": value}
                self._open[tier] = bucket
            bucket["end"] = time
            bucket["count"] += 1
            bucket["sum"] += value
            bucket["min"] = min(bucket["min"], value)
            bucket["max"] = max(bucket["max"], value)
            bucket["last"] = value
            if bucket["count"] >= span:
                self.rollups[tier].append(bucket)
                self._open[tier] = None

    def points(self, tier: str) -> list:
        """The finalized contents of one tier, oldest first.

        ``raw`` yields ``(time, value)`` pairs; rollup tiers yield bucket
        dicts.  Open (partially filled) buckets are not visible.
        """
        if tier == "raw":
            return list(self.raw)
        return list(self.rollups[tier])

    def evicted(self, tier: str) -> bool:
        """Whether this tier has dropped points to stay within bounds."""
        if tier == "raw":
            return self.appended > self.raw_capacity
        span = ROLLUP_SPANS[tier]
        return self.appended // span > self.rollup_capacity

    def covers(self, tier: str, start: float) -> bool:
        """Whether the tier still reaches back to sim time ``start``."""
        points = self.points(tier)
        if not points:
            return not self.evicted(tier)
        if not self.evicted(tier):
            return True
        oldest = points[0][0] if tier == "raw" else points[0]["start"]
        return oldest <= start

    def pick_tier(self, start: float) -> str:
        """The finest tier that still covers ``start`` (staleness-aware)."""
        for tier in TIERS:
            if self.covers(tier, start):
                return tier
        return TIERS[-1]

    def to_record(self) -> dict[str, Any]:
        """The dump-document form of this series."""
        return {"name": self.name, "labels": dict(self.labels),
                "appended": self.appended,
                "raw": [[t, v] for t, v in self.raw],
                "r10": [dict(b) for b in self.rollups["r10"]],
                "r100": [dict(b) for b in self.rollups["r100"]]}

    @classmethod
    def from_record(cls, record: dict[str, Any], *,
                    raw_capacity: int = 512,
                    rollup_capacity: int = 256) -> "Series":
        """Rebuild a series from its dump record (open buckets are lost)."""
        series = cls(record["name"], record.get("labels", {}),
                     raw_capacity=raw_capacity,
                     rollup_capacity=rollup_capacity)
        for time, value in record.get("raw", ()):
            series.raw.append((time, value))
        for tier in ROLLUP_SPANS:
            for bucket in record.get(tier, ()):
                series.rollups[tier].append(dict(bucket))
        series.appended = record.get("appended", len(series.raw))
        return series


class TimeSeriesStore:
    """The fleet-wide metrics store every ``TelemetryStreamer`` feeds.

    Construct with the run's kernel to record store telemetry
    (``observatory.store.*``) and stamp dumps with the sim clock, or with
    ``kernel=None`` for an offline store rebuilt from a dump document
    (the CLI's read path).
    """

    def __init__(self, kernel=None, *, raw_capacity: int = 512,
                 rollup_capacity: int = 256):
        self.kernel = kernel
        self.raw_capacity = raw_capacity
        self.rollup_capacity = rollup_capacity
        self._series: dict[tuple, Series] = {}
        self.samples_ingested = 0
        self._tm_appends = None
        self._tm_samples = None
        self._g_series = None
        if kernel is not None:
            telemetry = kernel.telemetry
            self._tm_appends = telemetry.counter("observatory.store.appends")
            self._tm_samples = telemetry.counter("observatory.store.samples")
            self._g_series = telemetry.gauge("observatory.store.series")

    # -- writing --------------------------------------------------------------
    def append(self, name: str, labels: dict[str, str], time: float,
               value: float) -> Series:
        """Append one point, creating the series on first sight."""
        key = series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = Series(name, labels, raw_capacity=self.raw_capacity,
                            rollup_capacity=self.rollup_capacity)
            self._series[key] = series
            if self._g_series is not None:
                self._g_series.set(len(self._series))
        series.append(time, float(value))
        if self._tm_appends is not None:
            self._tm_appends.inc()
        return series

    def ingest_metrics_payload(self, payload: dict[str, Any]) -> int:
        """Absorb one validated ``repro.monitor/v1`` metrics sample.

        Counters store their cumulative ``total`` (so ``rate`` works over
        any window); gauges store their value; histograms fan out into
        ``stat=count/mean/p50/p95/p99`` sub-series.  Returns the number
        of points appended.
        """
        validate_metrics_sample(payload)
        time = payload["time"]
        appended = 0
        for record in payload["metrics"]:
            name = record["name"]
            labels = record.get("labels", {})
            if record["type"] == "counter":
                self.append(name, labels, time, record["total"])
                appended += 1
            elif record["type"] == "gauge":
                self.append(name, labels, time, record["value"])
                appended += 1
            else:
                summary = record["summary"]
                for stat in HISTOGRAM_STATS:
                    self.append(name, {**labels, "stat": stat}, time,
                                summary[stat])
                    appended += 1
        self.samples_ingested += 1
        if self._tm_samples is not None:
            self._tm_samples.inc()
        return appended

    def on_stream_sample(self, sample) -> None:
        """NSDSReceiver callback: absorb one streamed metrics payload."""
        payload = sample.value
        if not isinstance(payload, dict) or payload.get("kind") != "metrics":
            return
        self.ingest_metrics_payload(payload)

    # -- reading --------------------------------------------------------------
    def series(self) -> list[Series]:
        """Every series, in canonical (name, labels) order."""
        return [self._series[key] for key in sorted(self._series)]

    def match(self, metric: str | None = None,
              selector: dict[str, str] | None = None) -> list[Series]:
        """Series matching an exact metric name and label-equality selector."""
        wanted = selector or {}
        out = []
        for series in self.series():
            if metric is not None and series.name != metric:
                continue
            if any(series.labels.get(k) != v for k, v in wanted.items()):
                continue
            out.append(series)
        return out

    def stats(self) -> dict[str, Any]:
        """Store-level accounting for the service's SDE."""
        return {"series": len(self._series),
                "samples_ingested": self.samples_ingested,
                "points": sum(s.appended for s in self._series.values()),
                "raw_capacity": self.raw_capacity,
                "rollup_capacity": self.rollup_capacity}

    # -- dump / load ----------------------------------------------------------
    def series_records(self) -> list[dict[str, Any]]:
        """Every series as dump records, in canonical order."""
        return [series.to_record() for series in self.series()]

    @classmethod
    def from_records(cls, records: Iterable[dict[str, Any]], *,
                     raw_capacity: int = 512,
                     rollup_capacity: int = 256) -> "TimeSeriesStore":
        """Rebuild an offline (kernel-less) store from dump records."""
        store = cls(None, raw_capacity=raw_capacity,
                    rollup_capacity=rollup_capacity)
        for record in records:
            series = Series.from_record(record, raw_capacity=raw_capacity,
                                        rollup_capacity=rollup_capacity)
            store._series[series_key(series.name, series.labels)] = series
        return store
