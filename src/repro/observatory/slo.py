"""Declarative SLOs with fast/slow burn-rate alerting.

An :class:`SLOSpec` names an objective over stored observatory series —
either a *threshold* objective ("step-latency p95 stays under 30 s",
bad = points over the threshold) or a *ratio* objective ("stream gaps
stay under 1% of pushed samples", bad/total = deltas of two cumulative
counters).  The :class:`SLOEvaluator` sweeps the store on the sim clock
and applies multi-window burn-rate rules in the SRE-workbook style: a
*fast* rule (short window, high factor) catches cliff failures in
minutes, a *slow* rule (long window, low factor) catches steady leaks
that would exhaust the error budget over the run.

``burn = bad_fraction / (1 - target)`` — the rate at which the error
budget is being spent, where 1.0 means "exactly on budget".  A rule
fires when its window's burn exceeds its factor; the alert goes through
the existing :class:`repro.monitor.ExperimentMonitor` channel as a typed
``slo_burn`` alert, and whole-history ``budget_remaining`` is surfaced
in the ``fleet.rollup`` SDE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

#: default multi-window burn-rate rules (window sim-seconds, burn factor)
FAST_WINDOW = 120.0
SLOW_WINDOW = 600.0


@dataclass(frozen=True)
class BurnRateRule:
    """One burn-rate alerting rule: a lookback window and a burn factor."""

    name: str
    window: float
    factor: float
    severity: str


DEFAULT_RULES = (BurnRateRule("fast", FAST_WINDOW, 14.0, "critical"),
                 BurnRateRule("slow", SLOW_WINDOW, 2.0, "warning"))


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over stored observatory series.

    ``kind="threshold"`` counts points of ``metric``/``selector`` whose
    value exceeds ``threshold`` as bad events.  ``kind="ratio"`` divides
    window deltas of the cumulative ``bad_metric`` counter by deltas of
    ``total_metric``.  ``target`` is the good fraction the objective
    promises (0.99 → a 1% error budget).
    """

    name: str
    metric: str = ""
    selector: dict[str, str] = field(default_factory=dict)
    kind: str = "threshold"
    threshold: float = 0.0
    target: float = 0.99
    bad_metric: str = ""
    bad_selector: dict[str, str] = field(default_factory=dict)
    total_metric: str = ""
    total_selector: dict[str, str] = field(default_factory=dict)
    rules: tuple = DEFAULT_RULES
    tenant: str | None = None
    min_events: int = 1


def default_slos() -> list[SLOSpec]:
    """The three stock MOST objectives the issue names.

    * ``step-latency-p95`` — the streamed p95 of
      ``coordinator.mspsds.step_time`` stays under 30 sim-seconds;
    * ``breaker-open-ratio`` — no site's circuit breaker sits open
      (``net.breaker.state`` > 0 counts as a bad observation);
    * ``stream-gap-rate`` — NSDS receiver gaps stay under 1% of pushed
      stream samples.
    """
    return [
        SLOSpec(name="step-latency-p95",
                metric="coordinator.mspsds.step_time",
                selector={"stat": "p95"}, threshold=30.0, target=0.99),
        SLOSpec(name="breaker-open-ratio", metric="net.breaker.state",
                threshold=0.0, target=0.95),
        SLOSpec(name="stream-gap-rate", kind="ratio",
                bad_metric="nsds.receiver.gaps",
                total_metric="nsds.stream.pushed", target=0.99),
    ]


def _counter_delta(store, metric: str, selector: dict[str, str],
                   start: float, end: float) -> float:
    """Sum of (last - first) over the window across matching series."""
    total = 0.0
    for series in store.match(metric, selector):
        window = [p for p in series.points("raw") if start <= p[0] <= end]
        if len(window) >= 2:
            total += window[-1][1] - window[0][1]
        elif len(window) == 1:
            total += window[0][1]
    return total


class SLOEvaluator:
    """Periodically evaluates SLO specs over the observatory store."""

    def __init__(self, kernel, store, slos, *,
                 alert_sink: Callable[..., Any] | None = None,
                 interval: float = 60.0):
        self.kernel = kernel
        self.store = store
        self.slos = list(slos)
        self.alert_sink = alert_sink
        self.interval = interval
        self.alerts_raised = 0
        self._firing: set[tuple[str, str]] = set()
        self._proc = None
        self._running = False
        self._tm_sweeps = kernel.telemetry.counter("observatory.slo.sweeps")
        self._tm_alerts = kernel.telemetry.counter("observatory.slo.alerts")

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic sweep loop on the kernel."""
        if self._running:
            return
        self._running = True
        self._proc = self.kernel.process(self._sweep_loop(),
                                         name="observatory-slo")

    def stop(self) -> None:
        self._running = False

    def _sweep_loop(self):
        while self._running:
            yield self.kernel.timeout(self.interval)
            if not self._running:
                return
            self.evaluate()

    # -- evaluation -----------------------------------------------------------
    def _events(self, slo: SLOSpec, start: float,
                end: float) -> tuple[float, float]:
        """(bad, total) event counts for one SLO over [start, end]."""
        if slo.kind == "ratio":
            bad = _counter_delta(self.store, slo.bad_metric,
                                 slo.bad_selector, start, end)
            total = _counter_delta(self.store, slo.total_metric,
                                   slo.total_selector, start, end)
            return bad, total
        bad = 0.0
        total = 0.0
        for series in self.store.match(slo.metric, slo.selector):
            for time, value in series.points("raw"):
                if not start <= time <= end:
                    continue
                total += 1.0
                if value > slo.threshold:
                    bad += 1.0
        return bad, total

    def _burn(self, slo: SLOSpec, bad: float, total: float) -> float:
        if total < slo.min_events:
            return 0.0
        budget = max(1.0 - slo.target, 1e-9)
        return (bad / total) / budget

    def evaluate(self) -> list[dict[str, Any]]:
        """One sweep: burn rates per rule, firing state, typed alerts."""
        now = self.kernel.now
        self._tm_sweeps.inc()
        statuses = []
        for slo in self.slos:
            bad, total = self._events(slo, 0.0, now)
            bad_fraction = bad / total if total else 0.0
            budget = max(1.0 - slo.target, 1e-9)
            remaining = max(0.0, min(1.0, 1.0 - bad_fraction / budget))
            burns: dict[str, float] = {}
            firing: list[str] = []
            for rule in slo.rules:
                w_bad, w_total = self._events(
                    slo, max(0.0, now - rule.window), now)
                burn = self._burn(slo, w_bad, w_total)
                burns[rule.name] = burn
                key = (slo.name, rule.name)
                if burn > rule.factor:
                    firing.append(rule.name)
                    if key not in self._firing:
                        self._firing.add(key)
                        self._raise(slo, rule, burn, remaining)
                else:
                    self._firing.discard(key)
            statuses.append({"name": slo.name, "tenant": slo.tenant,
                             "events": total, "bad": bad,
                             "bad_fraction": bad_fraction,
                             "budget_remaining": remaining,
                             "burn": burns, "firing": firing})
        return statuses

    def _raise(self, slo: SLOSpec, rule: BurnRateRule, burn: float,
               remaining: float) -> None:
        self.alerts_raised += 1
        self._tm_alerts.inc()
        if self.alert_sink is None:
            return
        message = (f"SLO {slo.name}: {rule.name} burn rate "
                   f"{burn:.1f}x exceeds {rule.factor:.1f}x "
                   f"({remaining:.0%} budget left)")
        self.alert_sink("slo_burn", rule.severity, message,
                        detail={"slo": slo.name, "rule": rule.name,
                                "window": rule.window,
                                "factor": rule.factor, "burn": burn,
                                "budget_remaining": remaining,
                                "tenant": slo.tenant})

    # -- budget surfaces ------------------------------------------------------
    def budget_remaining(self) -> dict[str, float]:
        """Whole-history error budget remaining, keyed by SLO name."""
        return {status["name"]: status["budget_remaining"]
                for status in self.evaluate_quiet()}

    def evaluate_quiet(self) -> list[dict[str, Any]]:
        """Status dicts without mutating firing state or raising alerts."""
        now = self.kernel.now
        statuses = []
        for slo in self.slos:
            bad, total = self._events(slo, 0.0, now)
            bad_fraction = bad / total if total else 0.0
            budget = max(1.0 - slo.target, 1e-9)
            remaining = max(0.0, min(1.0, 1.0 - bad_fraction / budget))
            burns = {}
            firing = []
            for rule in slo.rules:
                w_bad, w_total = self._events(
                    slo, max(0.0, now - rule.window), now)
                burn = self._burn(slo, w_bad, w_total)
                burns[rule.name] = burn
                if burn > rule.factor:
                    firing.append(rule.name)
            statuses.append({"name": slo.name, "tenant": slo.tenant,
                             "events": total, "bad": bad,
                             "bad_fraction": bad_fraction,
                             "budget_remaining": remaining,
                             "burn": burns, "firing": firing})
        return statuses

    def budget_for_tenant(self, tenant: str) -> float:
        """The minimum budget remaining across a tenant's SLOs (1.0 if none)."""
        budgets = [status["budget_remaining"]
                   for status in self.evaluate_quiet()
                   if status["tenant"] in (None, tenant)]
        return min(budgets) if budgets else 1.0
