"""The observatory as an OGSI grid service.

Hosted in its own container on the repository host, the service exposes
the query engine and flight recorder to any grid client: ``query`` runs
a label-selector range query and returns the validated
``repro.observatory/v1`` document, ``listSeries`` enumerates what the
store holds, ``getSnapshots`` returns captured flight recordings, and
``stats`` reports store/recorder accounting (also published as the
``observatory.stats`` SDE).
"""

from __future__ import annotations

from typing import Any

from repro.observatory.query import run_query
from repro.ogsi import GridService

#: name of the store-statistics service data element
STATS_SDE = "observatory.stats"


class ObservatoryService(GridService):
    """Grid-service front end over the store, query engine, and recorder."""

    def __init__(self, service_id: str = "observatory", *, store=None,
                 recorder=None):
        super().__init__(service_id)
        self.store = store
        self.recorder = recorder

    def on_attach(self) -> None:
        """Expose the query/series/snapshot operations and the stats SDE."""
        self.service_data.set(STATS_SDE, None)
        self.expose("query", self._op_query)
        self.expose("listSeries", self._op_listSeries)
        self.expose("getSnapshots", self._op_getSnapshots)
        self.expose("stats", self._op_stats)

    def _op_query(self, caller: Any, **params: Any) -> dict[str, Any]:
        """Run one range query; ``params`` is the request document."""
        result = run_query(self.store, params, now=self.kernel.now)
        self.emit("query.served", caller=str(caller),
                  metric=params.get("metric"),
                  total_series=result["total_series"])
        return result

    def _op_listSeries(self, caller: Any, metric: str | None = None,
                       **selector: str) -> list[dict[str, Any]]:
        """Enumerate stored series (name, labels, point count)."""
        return [{"name": series.name, "labels": dict(series.labels),
                 "appended": series.appended}
                for series in self.store.match(metric, selector)]

    def _op_getSnapshots(self, caller: Any,
                         run_id: str | None = None) -> list[dict[str, Any]]:
        """Captured flight recordings, optionally filtered by run."""
        if self.recorder is None:
            return []
        return [snapshot for snapshot in self.recorder.snapshots
                if run_id is None or snapshot["run_id"] == run_id]

    def _op_stats(self, caller: Any) -> dict[str, Any]:
        return self.publish_stats()

    def publish_stats(self) -> dict[str, Any]:
        """Refresh and return the ``observatory.stats`` SDE."""
        stats = dict(self.store.stats()) if self.store is not None else {}
        if self.recorder is not None:
            stats["flight"] = self.recorder.stats()
        self.service_data.set(STATS_SDE, stats)
        return stats
