"""Reusable single-site test harness.

Used by this repository's own tests and benchmarks, and handy for
downstream users writing plugin integration tests: one coordinator host,
one site host, an OGSI container with an NTCP server around the plugin of
your choice, and a retry-capable client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import NTCPClient, NTCPServer
from repro.net import FaultInjector, Network, RpcClient
from repro.ogsi import GridServiceHandle, ServiceContainer
from repro.sim import Kernel


@dataclass
class SiteEnv:
    """One coordinator host + one site host running an NTCP server."""

    kernel: Kernel
    network: Network
    container: ServiceContainer
    server: NTCPServer
    handle: GridServiceHandle
    client: NTCPClient
    faults: FaultInjector
    extra: dict = field(default_factory=dict)

    def run(self, gen):
        """Drive a client generator to completion; return its value."""
        return self.kernel.run(until=self.kernel.process(gen))


def make_site(plugin, *, latency: float = 0.02, loss: float = 0.0,
              seed: int = 0, timeout: float = 30.0, retries: int = 3,
              service_id: str = "ntcp-site") -> SiteEnv:
    """Wire a coordinator host to a single NTCP site over one link."""
    kernel = Kernel()
    network = Network(kernel, seed=seed)
    network.add_host("coord")
    network.add_host("site")
    network.connect("coord", "site", latency=latency, loss=loss)
    container = ServiceContainer(network, "site")
    server = NTCPServer(service_id, plugin)
    handle = container.deploy(server)
    rpc = RpcClient(network, "coord", default_timeout=timeout,
                    default_retries=retries)
    client = NTCPClient(rpc, timeout=timeout, retries=retries)
    return SiteEnv(kernel=kernel, network=network, container=container,
                   server=server, handle=handle, client=client,
                   faults=FaultInjector(network))
