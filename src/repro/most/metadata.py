"""MOST metadata (paper §3.3).

"For MOST, metadata was mostly generated manually and data was generated
automatically from sensors.  Experimenters developed metadata that
described each of the three components of the experiment in terms of the
structural configuration, material properties, and instrumentation, and
uploaded the metadata to the repository prior to the experiment.  The
metadata was designed so that non-participants viewing the stored data can
understand the meaning of the sensor data in the context of the
experiment."

This module defines those three schemas as first-class NMDS objects and
populates the pre-experiment records for each MOST component, deriving the
values from the live deployment (so the catalog always matches what was
actually wired).  :func:`upload_most_metadata` is called by scenarios
before the experiment starts.
"""

from __future__ import annotations

from typing import Any

from repro.most.assembly import MOSTDeployment
from repro.net.rpc import RpcClient

#: the §3.3 schemas: structural configuration, material properties,
#: instrumentation — with enough typing that NMDS validation has teeth.
MOST_SCHEMAS: dict[str, dict[str, Any]] = {
    "structural-configuration": {
        "component": "string",
        "role": "string",                  # physical / simulated
        "substructure": "string",
        "stiffness_n_per_m": "number",
        "dof_indices": "list",
        "boundary_conditions": "string",
    },
    "material-properties": {
        "component": "string",
        "material": "string",
        "yield_force_n": {"type": "number", "required": False},
        "hardening_ratio": {"type": "number", "required": False},
        "notes": {"type": "string", "required": False},
    },
    "instrumentation": {
        "component": "string",
        "channels": "list",
        "daq_sample_interval_s": {"type": "number", "required": False},
        "control_system": "string",
    },
}


def most_component_records(dep: MOSTDeployment) -> list[tuple[str, dict]]:
    """(object_type, fields) for each MOST component, from the deployment."""
    config = dep.config
    records: list[tuple[str, dict]] = []
    descriptions = {
        "uiuc": ("left column, tested horizontally as a cantilever",
                 "Shore-Western servo-hydraulic control system"),
        "cu": ("right column, rigidly connected to a vertical supporting "
               "steel structure suppressing all translational and "
               "rotational degrees of freedom",
               "Matlab xPC real-time target"),
        "ncsa": ("central section of the frame, numerically simulated",
                 "Matlab simulation via poll-based MPlugin"),
    }
    stiffness = {"uiuc": config.k_uiuc, "cu": config.k_cu,
                 "ncsa": config.k_ncsa}
    for name, site in dep.sites.items():
        boundary, control = descriptions[name]
        role = "physical" if site.specimen is not None else "simulated"
        records.append(("structural-configuration", {
            "component": name,
            "role": role,
            "substructure": f"{name}-substructure",
            "stiffness_n_per_m": float(stiffness[name]),
            "dof_indices": [0],
            "boundary_conditions": boundary,
        }))
        material: dict[str, Any] = {"component": name,
                                    "material": "A992 structural steel"
                                    if role == "physical" else "numerical"}
        if role == "physical":
            material["yield_force_n"] = float(config.yield_force)
            material["hardening_ratio"] = float(config.hardening_ratio)
        records.append(("material-properties", material))
        channels = ([c.name for c in site.daq.channels]
                    if site.daq is not None else [])
        instrumentation: dict[str, Any] = {
            "component": name,
            "channels": channels,
            "control_system": control,
        }
        if site.daq is not None:
            instrumentation["daq_sample_interval_s"] = \
                float(site.daq.sample_interval)
        records.append(("instrumentation", instrumentation))
    return records


def upload_most_metadata(dep: MOSTDeployment, *,
                         credential_factory=None):
    """Kernel process: define the schemas and upload the records.

    Returns the list of created object ids.  Runs from the portal host
    (the experimenters' side), like the §3.3 manual uploads.
    """
    rpc = RpcClient(dep.network, "portal", default_timeout=30.0,
                    default_retries=2)
    nmds = dep.extras["nmds_handle"]
    created: list[str] = []

    def call(operation, params):
        credential = (credential_factory("invoke")
                      if credential_factory else None)
        result = yield from rpc.call(
            nmds.host, nmds.port, "invoke",
            {"service_id": nmds.service_id, "operation": operation,
             "params": params}, credential=credential)
        return result

    for name, spec in MOST_SCHEMAS.items():
        yield from call("defineSchema", {"name": name, "spec": spec})
    for object_type, fields in most_component_records(dep):
        oid = yield from call("createObject",
                              {"object_type": object_type,
                               "fields": fields})
        created.append(oid)
    dep.kernel.emit("most.metadata", "uploaded", objects=len(created))
    return created
