"""GSI-secured MOST deployment (paper §2, §4).

The base :func:`~repro.most.assembly.build_most` wiring trusts everyone —
fine for studying the control loop, but the paper's deployment
authenticated *all* communication with GSI and authorized it per site.
This module wraps the assembly with the full security fabric:

* one NEESgrid CA; identity credentials for the coordinator operator, the
  site operators, and remote participants;
* the coordinator runs on a short-lived *proxy* credential (single
  sign-on), as Globus clients did;
* every service container gets a :class:`~repro.gsi.session.GsiChecker`
  validating chains against the CA, with a per-site gridmap — facility
  operators decide who may ``invoke`` at their site (§4: "the usual
  Grid-based authentication and access control");
* the repository additionally requires a CAS right
  (``repository:write``) for ingestion, the §2.3 plan ("We plan to add
  support for the Community Authorization Service").

The control systems themselves are *not* directly reachable — only NTCP
operations are exposed — mirroring §4's "the actual control systems do not
need direct access to the external Internet".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gsi import (
    CertificateAuthority,
    CommunityAuthorizationService,
    Credential,
    Crypto,
    Gridmap,
    GsiAuthenticator,
    GsiChecker,
)
from repro.most.assembly import MOSTDeployment, build_most
from repro.most.config import MOSTConfig

#: the distinguished names used throughout the secured deployment
COORDINATOR_DN = "/O=NEESgrid/OU=MOST/CN=Simulation Coordinator"
OBSERVER_DN = "/O=NEESgrid/OU=MOST/CN=Remote Observer"
OUTSIDER_DN = "/O=Elsewhere/CN=Mallory"


@dataclass
class SecuredMOST:
    """A :class:`MOSTDeployment` plus its security fabric."""

    deployment: MOSTDeployment
    crypto: Crypto
    ca: CertificateAuthority
    cas: CommunityAuthorizationService
    coordinator_identity: Credential
    coordinator_proxy: Credential
    gridmaps: dict[str, Gridmap] = field(default_factory=dict)

    def credential_for(self, subject: str, *, lifetime: float = 1e9) -> Credential:
        """Issue (and trust-map where appropriate) a new identity."""
        return self.ca.issue_credential(subject, not_after=lifetime)

    def authenticator(self, credential: Credential,
                      with_cas: bool = False) -> GsiAuthenticator:
        """Per-request token minting bound to the deployment clock."""
        kernel = self.deployment.kernel

        def clock() -> float:
            return kernel.now

        assertion = None
        if with_cas:
            idx = credential.subject.find("/proxy-")
            subject = credential.subject if idx < 0 else credential.subject[:idx]
            assertion = self.cas.issue_assertion(subject, now=clock())
        return GsiAuthenticator(credential, clock, cas_assertion=assertion)


def build_secured_most(config: MOSTConfig | None = None, *,
                       proxy_lifetime: float = 12 * 3600.0) -> SecuredMOST:
    """Build MOST with GSI on every container and CAS on the repository."""
    dep = build_most(config)
    kernel = dep.kernel

    def clock() -> float:
        return kernel.now

    crypto = Crypto()
    ca = CertificateAuthority(crypto, "/O=NEESgrid/CN=NEESgrid CA")
    coord_identity = ca.issue_credential(COORDINATOR_DN, not_after=1e12)
    coord_proxy = coord_identity.delegate(now=kernel.now,
                                          lifetime=proxy_lifetime)

    cas_cred = ca.issue_credential("/O=NEESgrid/CN=NEES CAS", not_after=1e12)
    cas = CommunityAuthorizationService(crypto, cas_cred)
    cas.define_group("experimenters", {"ntcp:control", "repository:write"})
    cas.define_group("observers", {"repository:read"})
    cas.add_member(COORDINATOR_DN)
    cas.add_to_group(COORDINATOR_DN, "experimenters")
    cas.add_member(OBSERVER_DN)
    cas.add_to_group(OBSERVER_DN, "observers")

    secured = SecuredMOST(deployment=dep, crypto=crypto, ca=ca, cas=cas,
                          coordinator_identity=coord_identity,
                          coordinator_proxy=coord_proxy)

    # Site containers: each site's gridmap admits the coordinator (mapped
    # to a site-local account) and whoever the site later adds.
    for name, site in dep.sites.items():
        gridmap = Gridmap()
        gridmap.add(COORDINATOR_DN, f"{name}-neesop")
        secured.gridmaps[name] = gridmap
        site.container.rpc.checker = GsiChecker(
            crypto, [ca.certificate], gridmap, clock)

    # Repository: gridmap plus CAS — writes need the community right.
    repo_gridmap = Gridmap()
    repo_gridmap.add(COORDINATOR_DN, "neesrepo")
    repo_gridmap.add(OBSERVER_DN, "neesguest")
    secured.gridmaps["repo"] = repo_gridmap
    repo_container = dep.nmds.container
    if repo_container is None:
        raise RuntimeError("repository service is not attached to a "
                           "container; deploy the MOST testbed first")
    repo_container.rpc.checker = GsiChecker(
        crypto, [ca.certificate], repo_gridmap, clock, cas=cas)

    # Portal (CHEF): any CA-issued identity in the portal gridmap may log in.
    portal_gridmap = Gridmap()
    portal_gridmap.add(COORDINATOR_DN, "chef-coord")
    portal_gridmap.add(OBSERVER_DN, "chef-guest")
    secured.gridmaps["portal"] = portal_gridmap
    portal_container = dep.chef.container
    if portal_container is None:
        raise RuntimeError("portal service is not attached to a container; "
                           "deploy the MOST testbed first")
    portal_container.rpc.checker = GsiChecker(
        crypto, [ca.certificate], portal_gridmap, clock)

    # The coordinator's NTCP client signs every request with the proxy.
    dep.ntcp_client.credential_factory = \
        secured.authenticator(coord_proxy).credential_for
    # The ingestion tools act as the coordinator's delegate with CAS rights.
    ingest_auth = secured.authenticator(coord_proxy, with_cas=True)
    for site in dep.sites.values():
        if site.ingest is not None:
            original_call = site.ingest.rpc.call
            site.ingest.rpc.call = _with_credentials(original_call,
                                                     ingest_auth)
    return secured


def _with_credentials(call, authenticator: GsiAuthenticator):
    """Wrap ``RpcClient.call`` to attach a fresh GSI token per request."""

    def secured_call(dst, port, method, params=None, *, credential=None,
                     **kwargs):
        if credential is None:
            credential = authenticator.token(method)
        return call(dst, port, method, params, credential=credential,
                    **kwargs)

    return secured_call
