"""MOST configuration constants.

Defaults are calibrated so the full 1,500-step run takes roughly the
paper's five hours of (simulated) wall time at roughly 12 s/step, with
structural parameters giving a plausible steel test frame: a ~1 Hz
fundamental mode and column stiffnesses in the 10^6 N/m range
(W-section cantilever columns at laboratory scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MOSTConfig:
    """Everything tunable about a MOST run."""

    # -- structural model (1 lateral DOF shared by three substructures) ----
    # T ~= 0.35 s, so peak drift under ~0.35 g stays within the ±7.5 cm
    # actuator stroke while still driving the columns past yield.
    mass: float = 5.0e4          # kg — frame tributary mass
    k_uiuc: float = 5.6e6        # N/m — left (UIUC) column
    k_cu: float = 5.6e6          # N/m — right (CU) column
    k_ncsa: float = 4.8e6        # N/m — middle frame section (simulated)
    damping_ratio: float = 0.05
    # columns yield under strong shaking (gives the hysteresis plots)
    yield_force: float = 8.4e4   # N per physical column (~15 mm yield drift)
    hardening_ratio: float = 0.1

    # -- loading --------------------------------------------------------------
    n_steps: int = 1500
    dt: float = 0.02             # s — record sampling / PSD step
    pga: float = 3.4             # m/s^2 (~0.35 g, El Centro-ish)
    motion_seed: int = 2003      # July 30, 2003

    # -- network (Illinois <-> Colorado <-> coordinator) ----------------------
    latency_uiuc: float = 0.005   # coordinator is at UIUC: campus hop
    latency_ncsa: float = 0.004   # UIUC <-> NCSA are both in Urbana
    latency_cu: float = 0.030     # Illinois <-> Colorado WAN
    jitter: float = 0.002
    network_seed: int = 730

    # -- site timing (dominates the ~12 s/step pace) -----------------------------
    settle_min: float = 10.0      # servo-hydraulic minimum settle [s]
    actuator_rate: float = 0.01   # m/s slew
    actuator_stroke: float = 0.075  # m — facility displacement limit
    tracking_std: float = 2e-5    # m — actuator tracking error
    force_noise: float = 50.0     # N — load-cell noise
    poll_interval: float = 1.0    # MPlugin back-end poll period
    ncsa_compute: float = 1.0     # Matlab model evaluation time
    xpc_comm: float = 0.05        # CU host <-> xPC target hop

    # -- protocol budgets ---------------------------------------------------------
    rpc_timeout: float = 10.0
    rpc_retries: int = 3
    execution_timeout: float = 120.0

    # -- observation / data ---------------------------------------------------------
    daq_interval: float = 5.0     # s between DAQ samples
    daq_block: int = 60           # samples per deposited file
    ingest_interval: float = 60.0
    n_remote_participants: int = 130
    n_stream_viewers: int = 8
    seeds: dict = field(default_factory=lambda: {"uiuc": 11, "cu": 12,
                                                 "daq": 13})

    @property
    def k_total(self) -> float:
        return self.k_uiuc + self.k_cu + self.k_ncsa

    def scaled(self, n_steps: int) -> "MOSTConfig":
        """A copy with a shorter record (fast tests and benches)."""
        import dataclasses

        return dataclasses.replace(
            self, n_steps=n_steps,
            seeds=dict(self.seeds))
