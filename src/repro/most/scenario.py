"""MOST scenarios (paper §3.4 "MOST Results").

Four runs, each a function returning the :class:`ExperimentResult` plus the
deployment for inspection:

* :func:`run_simulation_only` — the rehearsal with three numerical sites;
* :func:`run_dry_run` — full hybrid configuration, clean network, naive
  coordinator: completes all steps ("the dry run ... ran successfully to
  completion", ~5.5 h);
* :func:`run_public_experiment` — transient outages during the day are
  absorbed by NTCP retries, CHEF hosts >130 remote participants, NSDS and
  cameras stream, the repository ingests — and a long outage while step
  1493 is in flight kills the naive coordinator ("exited prematurely at
  step 1493 (out of 1500)");
* :func:`run_with_fault_tolerance` — the counterfactual: identical faults,
  a coordinator that uses NTCP's fault-tolerance features, completion;
* :func:`run_public_with_resume` — the checkpointing counterfactual: the
  naive coordinator still dies at the fatal step, but a second coordinator
  incarnation resumes from the repository checkpoint, reconciles in-flight
  transactions, and completes with bit-identical histories;
* :func:`run_monitored_experiment` — the operations-console run: the live
  monitor (health SDEs + streamed metrics + anomaly detectors) watches a
  fault-tolerant run, optionally with an injected mid-run outage and a
  slow-site drift, and the alert feed is part of the report;
* :func:`run_degraded_experiment` — the graceful-degradation
  counterfactual: the step-1493 outage never clears, retries exhaust a
  per-site circuit breaker, and instead of aborting the coordinator
  hot-swaps the dead site for its numerical surrogate and finishes all
  1,500 steps in clearly-labelled degraded mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.coordinator import (
    ExperimentResult,
    FaultTolerantFaultPolicy,
    NaiveFaultPolicy,
)
from repro.most.assembly import MOSTDeployment, build_most, build_simulation_only
from repro.most.config import MOSTConfig
from repro.net.network import Message
from repro.net.rpc import RpcClient, RpcError, RpcRequest
from repro.util.errors import ConfigurationError, ReproError


@dataclass
class ScenarioReport:
    """Everything a benchmark needs to print a §3.4-style results row."""

    result: ExperimentResult
    deployment: MOSTDeployment
    ntcp_retries: int = 0
    chef_peak_online: int = 0
    files_ingested: int = 0
    stream_samples_pushed: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


def _finish(dep: MOSTDeployment, result: ExperimentResult) -> ScenarioReport:
    dep.stop_observation()
    # Final sweep: upload whatever the DAQ stop-flush staged (the paper's
    # ingestion is incremental *and* complete).
    for site in dep.sites.values():
        if site.ingest is not None:
            drain = dep.kernel.process(site.ingest.drain())
            drain.defuse()  # repo may be unreachable in fault scenarios
    # Let in-flight uploads, streams and notifications drain.
    dep.kernel.run(until=dep.kernel.now + 600.0)
    ingested = sum(len(s.ingest.uploaded) for s in dep.sites.values()
                   if s.ingest is not None)
    pushed = sum(s.nsds.pushed for s in dep.sites.values()
                 if s.nsds is not None)
    return ScenarioReport(result=result, deployment=dep,
                          ntcp_retries=dep.coordinator_rpc.stats.retries,
                          chef_peak_online=dep.chef.peak_online,
                          files_ingested=ingested,
                          stream_samples_pushed=pushed)


def run_simulation_only(config: MOSTConfig | None = None) -> ScenarioReport:
    """The distributed simulation-only rehearsal (§3: built first)."""
    dep = build_simulation_only(config)
    dep.start_backends()
    coordinator = dep.make_coordinator(run_id="most-simonly")
    result = dep.kernel.run(until=dep.kernel.process(coordinator.run()))
    return _finish(dep, result)


def run_dry_run(config: MOSTConfig | None = None) -> ScenarioReport:
    """The hybrid dry run: no injected faults; completes all steps."""
    from repro.most.metadata import upload_most_metadata

    dep = build_most(config)
    dep.start_backends()
    dep.start_observation()
    # §3.3: experimenters upload the component metadata before the run.
    dep.kernel.run(until=dep.kernel.process(upload_most_metadata(dep)))
    coordinator = dep.make_coordinator(run_id="most-dry")
    result = dep.kernel.run(until=dep.kernel.process(coordinator.run()))
    return _finish(dep, result)


def _arm_fatal_outage_at_step(dep: MOSTDeployment, step: int, site: str,
                              duration: float) -> None:
    """Take the coordinator—``site`` link down when step ``step`` first
    goes on the wire, for ``duration`` seconds.

    Watching the traffic (rather than hardcoding a wall-clock time) makes
    the failure land on exactly the paper's step regardless of pacing.
    """
    marker = f"step{step:05d}"
    armed = [False]

    def watch(msg: Message) -> bool:
        if armed[0] or msg.dst != site:
            return False
        payload = msg.payload
        if isinstance(payload, RpcRequest):
            params = payload.params
            text = str(params.get("params", "")) + str(params.get("transaction", ""))
            if marker in text:
                armed[0] = True
                dep.faults.schedule_outage("coord", site,
                                           start=dep.kernel.now,
                                           duration=duration)
        return False  # never drop here; the outage does the damage

    dep.network.add_drop_filter(watch)


def _arm_transient_drop_at_step(dep: MOSTDeployment, step: int,
                                site: str) -> None:
    """When step ``step`` first reaches ``site``, drop that site's next
    RPC reply — one transient network failure, recovered by the NTCP
    client's retransmission (idempotent server-side)."""
    marker = f"step{step:05d}"
    armed = [False]

    def watch(msg: Message) -> bool:
        if armed[0] or msg.dst != site:
            return False
        payload = msg.payload
        if isinstance(payload, RpcRequest) and marker in str(payload.params):
            armed[0] = True
            dep.faults.drop_matching(
                lambda m: m.src == site and m.port.startswith("rpc-reply"),
                count=1)
        return False

    dep.network.add_drop_filter(watch)


def _arm_site_slowdown_at_step(dep: MOSTDeployment, step: int, site: str,
                               factor: float) -> None:
    """When step ``step`` first reaches ``site``, multiply its backend's
    compute time by ``factor`` for the rest of the run — the paper's
    slow-site story (one site's evaluation suddenly dominating every
    step), as a mid-run drift rather than an outage."""
    backend = dep.sites[site].backend
    if backend is None or not hasattr(backend, "compute_time"):
        raise ConfigurationError(
            f"site {site!r} has no backend with a compute_time to slow")
    marker = f"step{step:05d}"
    armed = [False]

    def watch(msg: Message) -> bool:
        if armed[0] or msg.dst != site:
            return False
        payload = msg.payload
        if isinstance(payload, RpcRequest) and marker in str(payload.params):
            armed[0] = True
            backend.compute_time *= factor
        return False

    dep.network.add_drop_filter(watch)


def _inject_standard_faults(dep: MOSTDeployment, config: MOSTConfig,
                            fail_at_step: int, *,
                            outage_duration: float = 1800.0) -> None:
    """The public-run fault schedule: three recoverable transients spread
    through the day, then the long outage at the fatal step."""
    for frac, site in ((0.15, "cu"), (0.40, "uiuc"), (0.65, "cu")):
        step = max(1, min(int(frac * config.n_steps), config.n_steps - 1))
        if step != fail_at_step:
            _arm_transient_drop_at_step(dep, step, site)
    _arm_fatal_outage_at_step(dep, fail_at_step, site="uiuc",
                              duration=outage_duration)


def _add_remote_participants(dep: MOSTDeployment, *, n_chef: int,
                             n_stream: int) -> None:
    """Log participants into CHEF; subscribe a few to each site's NSDS."""
    from repro.nsds import NSDSReceiver

    kernel, network = dep.kernel, dep.network
    portal_rpc = RpcClient(network, "portal", default_timeout=30.0)

    def chef_crowd():
        tokens = []
        for i in range(n_chef):
            token = yield from portal_rpc.call(
                "portal", "ogsi", "invoke",
                {"service_id": dep.chef.service_id, "operation": "login",
                 "params": {"user": f"observer-{i:03d}"}})
            tokens.append(token)
            if i % 25 == 0:
                yield from portal_rpc.call(
                    "portal", "ogsi", "invoke",
                    {"service_id": dep.chef.service_id,
                     "operation": "chatPost",
                     "params": {"token": token,
                                "text": f"observer-{i:03d} joined"}})
        return tokens

    kernel.process(chef_crowd(), name="chef-crowd")

    receivers = []
    # Viewers watch from the portal host (one RPC client each is overkill;
    # one shared client subscribes on their behalf).
    for name in ("uiuc", "cu"):
        site = dep.sites[name]
        if site.nsds is None:
            continue
        if frozenset(("portal", name)) not in network._links:
            network.connect("portal", name, latency=0.03, fifo=False)
        viewer_rpc = RpcClient(network, "portal", default_timeout=30.0)

        def subscribe(site=site, viewer_rpc=viewer_rpc):
            for _ in range(n_stream // 2):
                recv = NSDSReceiver(network, "portal")
                receivers.append(recv)
                yield from viewer_rpc.call(
                    site.name, "ogsi", "invoke",
                    {"service_id": site.nsds.service_id,
                     "operation": "subscribe",
                     "params": {"sink_host": "portal",
                                "sink_port": recv.port,
                                "lifetime": 1e9}})

        kernel.process(subscribe(), name=f"nsds-subscribers-{name}")
    dep.extras["nsds_receivers"] = receivers


def run_public_experiment(config: MOSTConfig | None = None, *,
                          fail_at_step: int | None = None) -> ScenarioReport:
    """The public MOST run: observers, transient faults, death at 1493.

    ``fail_at_step`` defaults to 1493 scaled to shortened configs
    (paper ratio 1493/1500).
    """
    config = config or MOSTConfig()
    if fail_at_step is None:
        fail_at_step = max(1, min(round(config.n_steps * 1493 / 1500),
                                  config.n_steps - 1))
    dep = build_most(config)
    dep.start_backends()
    dep.start_observation()
    from repro.most.metadata import upload_most_metadata

    dep.kernel.run(until=dep.kernel.process(upload_most_metadata(dep)))
    _add_remote_participants(dep, n_chef=config.n_remote_participants,
                             n_stream=config.n_stream_viewers)
    _inject_standard_faults(dep, config, fail_at_step)

    coordinator = dep.make_coordinator(run_id="most-public",
                                       fault_policy=NaiveFaultPolicy())
    result = dep.kernel.run(until=dep.kernel.process(coordinator.run()))
    report = _finish(dep, result)
    report.extras["fail_at_step"] = fail_at_step
    return report


def run_public_with_resume(config: MOSTConfig | None = None, *,
                           fail_at_step: int | None = None,
                           checkpoint_every: int = 25,
                           run_id: str = "most-resume",
                           outage_duration: float = 1800.0) -> ScenarioReport:
    """The public run replayed with checkpoints: abort, then resume.

    The naive coordinator dies at the fatal step exactly as in
    :func:`run_public_experiment`, but it was checkpointing into the
    repository every ``checkpoint_every`` steps (plus the best-effort
    abort-time checkpoint).  The sites, specimens and NTCP servers keep
    their state — the grid does not restart with the coordinator — so once
    the outage clears, a second coordinator incarnation loads the
    checkpoint history, reconciles the in-flight transactions with every
    site, and completes the remaining steps.  At-most-once holds across
    the restart: no specimen re-runs a step.

    ``report.result`` is the *merged* result (the first incarnation's
    committed steps plus the resumed ones) — bit-identical histories to an
    uninterrupted same-seed run.  ``report.extras`` carries
    ``aborted_result``, the ``reconciliation`` report, ``fail_at_step``
    and ``checkpoints`` (sequences written).
    """
    from repro.coordinator import (
        records_from_payloads,
        resume_state_from_checkpoint,
    )
    from repro.most.metadata import upload_most_metadata
    from repro.repository import CheckpointPolicy

    config = config or MOSTConfig()
    if fail_at_step is None:
        fail_at_step = max(1, min(round(config.n_steps * 1493 / 1500),
                                  config.n_steps - 1))
    dep = build_most(config)
    dep.start_backends()
    dep.start_observation()
    dep.kernel.run(until=dep.kernel.process(upload_most_metadata(dep)))
    _inject_standard_faults(dep, config, fail_at_step,
                            outage_duration=outage_duration)
    store = dep.make_checkpoint_store()
    policy = CheckpointPolicy(every_n_steps=checkpoint_every)
    first = dep.make_coordinator(run_id=run_id,
                                 fault_policy=NaiveFaultPolicy(),
                                 checkpoint_store=store,
                                 checkpoint_policy=policy)
    aborted = dep.kernel.run(until=dep.kernel.process(first.run()))
    if aborted.completed:
        # Nothing to resume (e.g. a tiny config where the outage missed).
        report = _finish(dep, aborted)
        report.extras.update(fail_at_step=fail_at_step, aborted_result=None,
                             reconciliation=None,
                             checkpoints=first.state.checkpoint_seq)
        return report
    # Wait out the outage, then bring up the second incarnation.
    dep.kernel.run(until=dep.kernel.now + outage_duration + 1.0)
    doc, payloads = dep.kernel.run(
        until=dep.kernel.process(store.load_history(run_id)))
    if doc is None:
        # The run died before any checkpoint (e.g. initialization failure);
        # there is nothing to resume from.
        report = _finish(dep, aborted)
        report.extras.update(fail_at_step=fail_at_step, aborted_result=None,
                             reconciliation=None, checkpoints=0)
        return report
    state = resume_state_from_checkpoint(doc)
    prior = records_from_payloads(payloads)
    second = dep.make_coordinator(
        run_id=run_id,
        fault_policy=FaultTolerantFaultPolicy(max_attempts=12, backoff=30.0,
                                              backoff_factor=1.5,
                                              max_backoff=600.0),
        checkpoint_store=store, checkpoint_policy=policy,
        state=state, prior_records=prior)
    merged = dep.kernel.run(until=dep.kernel.process(second.run()))
    report = _finish(dep, merged)
    report.extras.update(fail_at_step=fail_at_step, aborted_result=aborted,
                         reconciliation=second.last_reconciliation,
                         checkpoints=second.state.checkpoint_seq)
    return report


def run_with_fault_tolerance(config: MOSTConfig | None = None, *,
                             fail_at_step: int | None = None) -> ScenarioReport:
    """Identical faults to the public run; fault-tolerant coordinator."""
    config = config or MOSTConfig()
    if fail_at_step is None:
        fail_at_step = max(1, min(round(config.n_steps * 1493 / 1500),
                                  config.n_steps - 1))
    dep = build_most(config)
    dep.start_backends()
    dep.start_observation()
    _inject_standard_faults(dep, config, fail_at_step)
    coordinator = dep.make_coordinator(
        run_id="most-ft",
        fault_policy=FaultTolerantFaultPolicy(max_attempts=12, backoff=30.0,
                                              backoff_factor=1.5,
                                              max_backoff=600.0))
    result = dep.kernel.run(until=dep.kernel.process(coordinator.run()))
    report = _finish(dep, result)
    report.extras["fail_at_step"] = fail_at_step
    return report


def run_degraded_experiment(config: MOSTConfig | None = None, *,
                            fail_at_step: int | None = None,
                            outage_duration: float = float("inf"),
                            fault_policy=None,
                            breaker_config=None,
                            degradation_policy=None,
                            monitor: bool = False,
                            thresholds=None,
                            on_alert=None,
                            run_id: str = "most-degraded"
                            ) -> ScenarioReport:
    """The graceful-degradation counterfactual to the step-1493 abort.

    Identical fault schedule to :func:`run_public_experiment`, but the
    fatal outage is **permanent** by default — no amount of retrying or
    resuming brings uiuc back.  The coordinator runs with per-site
    circuit breakers and a :class:`FailoverManager`: once uiuc's breaker
    has been open past the degradation policy's recovery budget, the
    in-flight transaction is cancelled/renamed (§7 discipline), a
    numerical surrogate built from uiuc's design stiffness is deployed on
    the coordinator host, and the run finishes all steps — every
    post-swap step stamped ``degraded`` in its record, checkpoint
    payloads, and telemetry.  The final degradation history is also
    registered as an NMDS metadata object (``extras["metadata_object"]``).

    Pass ``fault_policy=NaiveFaultPolicy()`` to reproduce the paper's
    abort under the same permanent outage (the policy gives up before the
    breaker trips); with ``monitor=True`` the operations console watches
    the run and its alert feed (including the typed ``breaker_open``
    alerts) lands in ``extras["alerts"]``.
    """
    from repro.coordinator import DegradationPolicy
    from repro.most.metadata import upload_most_metadata
    from repro.net import BreakerConfig

    config = config or MOSTConfig()
    if fail_at_step is None:
        fail_at_step = max(1, min(round(config.n_steps * 1493 / 1500),
                                  config.n_steps - 1))
    dep = build_most(config)
    dep.start_backends()
    dep.start_observation()
    dep.kernel.run(until=dep.kernel.process(upload_most_metadata(dep)))
    _inject_standard_faults(dep, config, fail_at_step,
                            outage_duration=outage_duration)
    kit = None
    if monitor:
        from repro.monitor import attach_monitoring

        kit = attach_monitoring(dep, thresholds=thresholds,
                                on_alert=on_alert)
        kit.start()
    breakers = dep.make_breakers(
        breaker_config or BreakerConfig(failure_threshold=3,
                                        open_interval=120.0))
    failover = dep.make_failover(
        policy=degradation_policy or DegradationPolicy(
            recovery_budget=300.0, readmit=True, probe_interval=120.0))
    coordinator = dep.make_coordinator(
        run_id=run_id,
        fault_policy=fault_policy or FaultTolerantFaultPolicy(
            max_attempts=12, backoff=30.0, backoff_factor=1.5,
            max_backoff=600.0),
        breakers=breakers, failover=failover)
    if kit is not None:
        kit.watch_coordinator(coordinator)
    result = dep.kernel.run(until=dep.kernel.process(coordinator.run()))
    if kit is not None:
        kit.stop()

    # Degradation history into the repository's metadata service: the
    # archived run says *which* steps are numerical, not just that some are.
    metadata_object = None
    if failover.events:
        def register():
            object_id = yield from dep.coordinator_rpc.call(
                "repo", "ogsi", "invoke",
                {"service_id": dep.nmds.service_id,
                 "operation": "createObject",
                 "params": {"object_type": "degradation",
                            "fields": {"run_id": run_id,
                                       **failover.report()}}})
            return object_id

        try:
            metadata_object = dep.kernel.run(
                until=dep.kernel.process(register()))
        except (RpcError, ReproError):
            metadata_object = None  # repo unreachable: report-only
    report = _finish(dep, result)
    report.extras.update(
        fail_at_step=fail_at_step,
        breakers={name: b.snapshot() for name, b in breakers.items()},
        failover=failover.report(),
        degraded_steps=result.degraded_steps,
        degraded_spans=result.degraded_spans(),
        metadata_object=metadata_object)
    if kit is not None:
        report.extras.update(monitoring=kit,
                             alerts=list(kit.monitor.alerts),
                             rollups=kit.monitor.rollups())
    return report


def run_monitored_experiment(config: MOSTConfig | None = None, *,
                             inject_faults: bool = False,
                             outage_at_step: int | None = None,
                             outage_duration: float = 600.0,
                             slow_site: str = "ncsa",
                             slow_at_step: int | None = None,
                             slow_factor: float = 40.0,
                             thresholds=None,
                             on_alert=None) -> ScenarioReport:
    """A fault-tolerant MOST run watched by the live operations console.

    With ``inject_faults`` the run gets the two anomalies the detectors
    exist for: ``slow_site``'s backend compute time is multiplied by
    ``slow_factor`` when step ``slow_at_step`` (default: a quarter in)
    first reaches it, and the coordinator—uiuc link goes down for
    ``outage_duration`` seconds at ``outage_at_step`` (default: halfway).
    The fault-tolerant policy rides both out, so the experiment still
    completes — the point is that the monitor *saw* them live.

    The report's extras carry ``alerts`` (typed :class:`Alert` records in
    raise order), ``rollups``, and the :class:`MonitoringKit` under
    ``monitoring``.  Everything is deterministic: same config + faults
    give the same alerts at the same sim times.
    """
    from repro.monitor import attach_monitoring
    from repro.most.metadata import upload_most_metadata

    config = config or MOSTConfig()
    dep = build_most(config)
    dep.start_backends()
    dep.start_observation()
    dep.kernel.run(until=dep.kernel.process(upload_most_metadata(dep)))
    kit = attach_monitoring(dep, thresholds=thresholds, on_alert=on_alert)
    if inject_faults:
        if outage_at_step is None:
            outage_at_step = max(1, min(round(config.n_steps * 0.5),
                                        config.n_steps - 1))
        if slow_at_step is None:
            slow_at_step = max(1, min(round(config.n_steps * 0.25),
                                      config.n_steps - 1))
        if slow_site is not None and slow_at_step != outage_at_step:
            _arm_site_slowdown_at_step(dep, slow_at_step, slow_site,
                                       slow_factor)
        _arm_fatal_outage_at_step(dep, outage_at_step, site="uiuc",
                                  duration=outage_duration)
    kit.start()
    coordinator = dep.make_coordinator(
        run_id="most-monitored",
        fault_policy=FaultTolerantFaultPolicy(max_attempts=12, backoff=30.0,
                                              backoff_factor=1.5,
                                              max_backoff=600.0))
    kit.watch_coordinator(coordinator)
    result = dep.kernel.run(until=dep.kernel.process(coordinator.run()))
    kit.stop()
    report = _finish(dep, result)
    report.extras.update(
        monitoring=kit, alerts=list(kit.monitor.alerts),
        rollups=kit.monitor.rollups(),
        outage_at_step=outage_at_step if inject_faults else None,
        slow_at_step=slow_at_step if inject_faults else None)
    return report
