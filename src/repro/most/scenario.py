"""MOST scenarios (paper §3.4 "MOST Results").

The §3.4 runs, each a function returning a :class:`ScenarioReport`:

* :func:`run_simulation_only` — the rehearsal with three numerical sites;
* :func:`run_dry_run` — full hybrid configuration, clean network, naive
  coordinator: completes all steps ("the dry run ... ran successfully to
  completion", ~5.5 h);
* :func:`run_public_experiment` — transient outages during the day are
  absorbed by NTCP retries, CHEF hosts >130 remote participants, NSDS and
  cameras stream, the repository ingests — and a long outage while step
  1493 is in flight kills the naive coordinator ("exited prematurely at
  step 1493 (out of 1500)");
* :func:`run_with_fault_tolerance` — the counterfactual: identical faults,
  a coordinator that uses NTCP's fault-tolerance features, completion;
* :func:`run_public_with_resume` — the checkpointing counterfactual: the
  naive coordinator still dies at the fatal step, but a second coordinator
  incarnation resumes from the repository checkpoint, reconciles in-flight
  transactions, and completes with bit-identical histories;
* :func:`run_monitored_experiment` — the operations-console run: the live
  monitor (health SDEs + streamed metrics + anomaly alerts) watches a
  fault-tolerant run, optionally with an injected mid-run outage and a
  slow-site drift, and the alert feed is part of the report;
* :func:`run_degraded_experiment` — the graceful-degradation
  counterfactual: the step-1493 outage never clears, retries exhaust a
  per-site circuit breaker, and instead of aborting the coordinator
  hot-swaps the dead site for its numerical surrogate and finishes all
  1,500 steps in clearly-labelled degraded mode.

All of them are thin wrappers over
:class:`~repro.most.session.ExperimentSession` — the composable builder
that replaced the per-scenario copies of the build → observe → fault →
coordinate skeleton.  :func:`run_public_experiment`,
:func:`run_public_with_resume`, :func:`run_degraded_experiment` and
:func:`run_monitored_experiment` are **deprecated**: compose the same
run with ``ExperimentSession`` directly (they emit
:class:`DeprecationWarning` and will be removed one release after the
session API landed).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.coordinator import ExperimentResult
from repro.most.assembly import MOSTDeployment
from repro.most.config import MOSTConfig
from repro.most.session import (  # noqa: F401  (re-exported for chaos/tests)
    ExperimentSession,
    SessionResult,
    _add_remote_participants,
    _arm_fatal_outage_at_step,
    _arm_site_slowdown_at_step,
    _arm_transient_drop_at_step,
    _inject_standard_faults,
    default_fail_step,
)


@dataclass
class ScenarioReport:
    """Everything a benchmark needs to print a §3.4-style results row."""

    result: ExperimentResult
    deployment: MOSTDeployment
    ntcp_retries: int = 0
    chef_peak_online: int = 0
    files_ingested: int = 0
    stream_samples_pushed: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


def _legacy_report(outcome: SessionResult,
                   extras: dict[str, Any] | None = None) -> ScenarioReport:
    """A :class:`SessionResult` repackaged in the historical shape."""
    return ScenarioReport(result=outcome.result,
                          deployment=outcome.deployment,
                          ntcp_retries=outcome.ntcp_retries,
                          chef_peak_online=outcome.chef_peak_online,
                          files_ingested=outcome.files_ingested,
                          stream_samples_pushed=outcome.stream_samples_pushed,
                          extras=dict(extras or {}))


def _deprecated(name: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; compose the run with "
        "repro.most.ExperimentSession instead",
        DeprecationWarning, stacklevel=3)


def run_simulation_only(config: MOSTConfig | None = None) -> ScenarioReport:
    """The distributed simulation-only rehearsal (§3: built first)."""
    outcome = ExperimentSession(config, run_id="most-simonly",
                                simulation_only=True).run()
    return _legacy_report(outcome)


def run_dry_run(config: MOSTConfig | None = None) -> ScenarioReport:
    """The hybrid dry run: no injected faults; completes all steps."""
    outcome = ExperimentSession(config, run_id="most-dry").run()
    return _legacy_report(outcome)


def run_public_experiment(config: MOSTConfig | None = None, *,
                          fail_at_step: int | None = None) -> ScenarioReport:
    """The public MOST run: observers, transient faults, death at 1493.

    .. deprecated:: use ``ExperimentSession(config).with_observers()
       .with_faults(fail_at_step).run()``.

    ``fail_at_step`` defaults to 1493 scaled to shortened configs
    (paper ratio 1493/1500).
    """
    _deprecated("run_public_experiment")
    outcome = (ExperimentSession(config, run_id="most-public")
               .with_observers()
               .with_faults(fail_at_step)
               .run())
    return _legacy_report(outcome, {"fail_at_step": outcome.fail_at_step})


def run_with_fault_tolerance(config: MOSTConfig | None = None, *,
                             fail_at_step: int | None = None) -> ScenarioReport:
    """Identical faults to the public run; fault-tolerant coordinator."""
    outcome = (ExperimentSession(config, run_id="most-ft")
               .with_metadata(False)
               .with_faults(fail_at_step)
               .with_fault_tolerance()
               .run())
    return _legacy_report(outcome, {"fail_at_step": outcome.fail_at_step})


def run_public_with_resume(config: MOSTConfig | None = None, *,
                           fail_at_step: int | None = None,
                           checkpoint_every: int = 25,
                           run_id: str = "most-resume",
                           outage_duration: float = 1800.0) -> ScenarioReport:
    """The public run replayed with checkpoints: abort, then resume.

    .. deprecated:: use ``ExperimentSession(config, run_id=run_id)
       .with_faults(fail_at_step, outage_duration=outage_duration)
       .with_resume(checkpoint_every=checkpoint_every).run()``.

    The naive coordinator dies at the fatal step exactly as in
    :func:`run_public_experiment`, but it was checkpointing into the
    repository every ``checkpoint_every`` steps (plus the best-effort
    abort-time checkpoint).  The sites, specimens and NTCP servers keep
    their state — the grid does not restart with the coordinator — so once
    the outage clears, a second coordinator incarnation loads the
    checkpoint history, reconciles the in-flight transactions with every
    site, and completes the remaining steps.  At-most-once holds across
    the restart: no specimen re-runs a step.

    ``report.result`` is the *merged* result (the first incarnation's
    committed steps plus the resumed ones) — bit-identical histories to an
    uninterrupted same-seed run.  ``report.extras`` carries
    ``aborted_result``, the ``reconciliation`` report, ``fail_at_step``
    and ``checkpoints`` (sequences written).
    """
    _deprecated("run_public_with_resume")
    outcome = (ExperimentSession(config, run_id=run_id)
               .with_faults(fail_at_step, outage_duration=outage_duration)
               .with_resume(checkpoint_every=checkpoint_every)
               .run())
    return _legacy_report(outcome, {"fail_at_step": outcome.fail_at_step,
                                    "aborted_result": outcome.aborted_result,
                                    "reconciliation": outcome.reconciliation,
                                    "checkpoints": outcome.checkpoints})


def run_degraded_experiment(config: MOSTConfig | None = None, *,
                            fail_at_step: int | None = None,
                            outage_duration: float = float("inf"),
                            fault_policy=None,
                            breaker_config=None,
                            degradation_policy=None,
                            monitor: bool = False,
                            thresholds=None,
                            on_alert=None,
                            run_id: str = "most-degraded"
                            ) -> ScenarioReport:
    """The graceful-degradation counterfactual to the step-1493 abort.

    .. deprecated:: use ``ExperimentSession(config, run_id=run_id)
       .with_faults(fail_at_step, outage_duration=float('inf'))
       .with_fault_tolerance().with_degradation(policy).run()``.

    Identical fault schedule to :func:`run_public_experiment`, but the
    fatal outage is **permanent** by default — no amount of retrying or
    resuming brings uiuc back.  The coordinator runs with per-site
    circuit breakers and a :class:`FailoverManager`: once uiuc's breaker
    has been open past the degradation policy's recovery budget, the
    in-flight transaction is cancelled/renamed (§7 discipline), a
    numerical surrogate built from uiuc's design stiffness is deployed on
    the coordinator host, and the run finishes all steps — every
    post-swap step stamped ``degraded`` in its record, checkpoint
    payloads, and telemetry.  The final degradation history is also
    registered as an NMDS metadata object (``extras["metadata_object"]``).

    Pass ``fault_policy=NaiveFaultPolicy()`` to reproduce the paper's
    abort under the same permanent outage (the policy gives up before the
    breaker trips); with ``monitor=True`` the operations console watches
    the run and its alert feed (including the typed ``breaker_open``
    alerts) lands in ``extras["alerts"]``.
    """
    _deprecated("run_degraded_experiment")
    session = (ExperimentSession(config, run_id=run_id)
               .with_faults(fail_at_step, outage_duration=outage_duration)
               .with_degradation(degradation_policy,
                                 breaker_config=breaker_config))
    if fault_policy is not None:
        session.with_fault_policy(fault_policy)
    else:
        session.with_fault_tolerance()
    if monitor:
        session.with_monitoring(thresholds, on_alert)
    outcome = session.run()
    extras = {"fail_at_step": outcome.fail_at_step,
              "breakers": outcome.breakers,
              "failover": outcome.failover,
              "degraded_steps": outcome.degraded_steps,
              "degraded_spans": outcome.degraded_spans,
              "metadata_object": outcome.metadata_object}
    if monitor:
        extras.update(monitoring=outcome.monitoring, alerts=outcome.alerts,
                      rollups=outcome.rollups)
    return _legacy_report(outcome, extras)


def run_monitored_experiment(config: MOSTConfig | None = None, *,
                             inject_faults: bool = False,
                             outage_at_step: int | None = None,
                             outage_duration: float = 600.0,
                             slow_site: str = "ncsa",
                             slow_at_step: int | None = None,
                             slow_factor: float = 40.0,
                             thresholds=None,
                             on_alert=None) -> ScenarioReport:
    """A fault-tolerant MOST run watched by the live operations console.

    .. deprecated:: use ``ExperimentSession(config).with_fault_tolerance()
       .with_monitoring().with_anomalies().run()``.

    With ``inject_faults`` the run gets the two anomalies the detectors
    exist for: ``slow_site``'s backend compute time is multiplied by
    ``slow_factor`` when step ``slow_at_step`` (default: a quarter in)
    first reaches it, and the coordinator—uiuc link goes down for
    ``outage_duration`` seconds at ``outage_at_step`` (default: halfway).
    The fault-tolerant policy rides both out, so the experiment still
    completes — the point is that the monitor *saw* them live.

    The report's extras carry ``alerts`` (typed :class:`Alert` records in
    raise order), ``rollups``, and the :class:`MonitoringKit` under
    ``monitoring``.  Everything is deterministic: same config + faults
    give the same alerts at the same sim times.
    """
    _deprecated("run_monitored_experiment")
    session = (ExperimentSession(config, run_id="most-monitored")
               .with_fault_tolerance()
               .with_monitoring(thresholds, on_alert))
    if inject_faults:
        session.with_anomalies(outage_at_step=outage_at_step,
                               outage_duration=outage_duration,
                               slow_site=slow_site,
                               slow_at_step=slow_at_step,
                               slow_factor=slow_factor)
    outcome = session.run()
    return _legacy_report(outcome, {"monitoring": outcome.monitoring,
                                    "alerts": outcome.alerts,
                                    "rollups": outcome.rollups,
                                    "outage_at_step": outcome.outage_at_step,
                                    "slow_at_step": outcome.slow_at_step})
