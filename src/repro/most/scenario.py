"""MOST scenarios (paper §3.4 "MOST Results").

The §3.4 runs, each a function returning a :class:`ScenarioReport`:

* :func:`run_simulation_only` — the rehearsal with three numerical sites;
* :func:`run_dry_run` — full hybrid configuration, clean network, naive
  coordinator: completes all steps ("the dry run ... ran successfully to
  completion", ~5.5 h);
* :func:`run_with_fault_tolerance` — the counterfactual to the public
  run's step-1493 death: identical faults, a coordinator that uses
  NTCP's fault-tolerance features, completion.

All of them are thin wrappers over
:class:`~repro.most.session.ExperimentSession` — the composable builder
that replaced the per-scenario copies of the build → observe → fault →
coordinate skeleton.  The richer historical entry points
(``run_public_experiment``, ``run_public_with_resume``,
``run_degraded_experiment``, ``run_monitored_experiment``) have been
removed after their deprecation cycle: compose the same runs with
``ExperimentSession`` directly, e.g. ``ExperimentSession(config)
.with_observers().with_faults().run()`` for the public run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.coordinator import ExperimentResult
from repro.most.assembly import MOSTDeployment
from repro.most.config import MOSTConfig
from repro.most.session import (  # noqa: F401  (re-exported for chaos/tests)
    ExperimentSession,
    SessionResult,
    _add_remote_participants,
    _arm_fatal_outage_at_step,
    _arm_site_slowdown_at_step,
    _arm_transient_drop_at_step,
    _inject_standard_faults,
    default_fail_step,
)


@dataclass
class ScenarioReport:
    """Everything a benchmark needs to print a §3.4-style results row."""

    result: ExperimentResult
    deployment: MOSTDeployment
    ntcp_retries: int = 0
    chef_peak_online: int = 0
    files_ingested: int = 0
    stream_samples_pushed: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


def _legacy_report(outcome: SessionResult,
                   extras: dict[str, Any] | None = None) -> ScenarioReport:
    """A :class:`SessionResult` repackaged in the historical shape."""
    return ScenarioReport(result=outcome.result,
                          deployment=outcome.deployment,
                          ntcp_retries=outcome.ntcp_retries,
                          chef_peak_online=outcome.chef_peak_online,
                          files_ingested=outcome.files_ingested,
                          stream_samples_pushed=outcome.stream_samples_pushed,
                          extras=dict(extras or {}))


def run_simulation_only(config: MOSTConfig | None = None) -> ScenarioReport:
    """The distributed simulation-only rehearsal (§3: built first)."""
    outcome = ExperimentSession(config, run_id="most-simonly",
                                simulation_only=True).run()
    return _legacy_report(outcome)


def run_dry_run(config: MOSTConfig | None = None) -> ScenarioReport:
    """The hybrid dry run: no injected faults; completes all steps."""
    outcome = ExperimentSession(config, run_id="most-dry").run()
    return _legacy_report(outcome)


def run_with_fault_tolerance(config: MOSTConfig | None = None, *,
                             fail_at_step: int | None = None) -> ScenarioReport:
    """Identical faults to the public run; fault-tolerant coordinator."""
    outcome = (ExperimentSession(config, run_id="most-ft")
               .with_metadata(False)
               .with_faults(fail_at_step)
               .with_fault_tolerance()
               .run())
    return _legacy_report(outcome, {"fail_at_step": outcome.fail_at_step})
