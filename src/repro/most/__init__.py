"""The MOST experiment (paper §3).

The Multi-Site Online Simulation Test of July 30, 2003: a two-bay
single-story steel frame split into a UIUC physical column, a CU physical
column, and an NCSA numerical middle section, coupled over NTCP for 1,500
pseudo-dynamic steps.

* :class:`~repro.most.config.MOSTConfig` — all tunable constants with
  defaults calibrated to the paper's run statistics (≈12 s/step → ≈5 h);
* :func:`~repro.most.assembly.build_most` — wires the full deployment of
  Figure 9 (plus DAQ, NSDS, repository, CHEF, cameras);
* :class:`~repro.most.session.ExperimentSession` — the composable
  run builder (resume / monitoring / degradation / pipelining /
  ensembles) behind every scenario;
* :mod:`~repro.most.scenario` — the runs of §3.4: simulation-only
  rehearsal, the dry run, the public run (premature exit at step 1493),
  and the fault-tolerant counterfactual.
"""

from repro.most.config import MOSTConfig
from repro.most.assembly import MOSTDeployment, build_most
from repro.most.session import ExperimentSession, SessionResult
from repro.most.scenario import (
    run_dry_run,
    run_simulation_only,
    run_with_fault_tolerance,
)

__all__ = [
    "MOSTConfig",
    "MOSTDeployment",
    "build_most",
    "ExperimentSession",
    "SessionResult",
    "run_simulation_only",
    "run_dry_run",
    "run_with_fault_tolerance",
]
