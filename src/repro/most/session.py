"""One composable entry point for running a MOST experiment.

The §3.4 scenarios accreted as separate ``run_*`` functions, each
re-stating the same build → observe → fault → coordinate → drain
skeleton with one knob changed — and each copy drifting a little.
:class:`ExperimentSession` is that skeleton, once, with every knob a
builder method::

    from repro import ExperimentSession, MOSTConfig

    session = (ExperimentSession(MOSTConfig().scaled(100),
                                 run_id="my-run")
               .with_faults()              # the public-day fault schedule
               .with_fault_tolerance()    # retry through the transients
               .with_monitoring()         # live operations console
               .with_pipeline(1)          # speculative pipelined stepping
               )
    outcome = session.run()               # -> SessionResult
    print(outcome.result.steps_completed, outcome.alerts)

Orthogonal capabilities compose: resume-from-checkpoint
(:meth:`~ExperimentSession.with_resume`), graceful degradation
(:meth:`~ExperimentSession.with_degradation`), remote observers
(:meth:`~ExperimentSession.with_observers`), vectorized ensembles
(:meth:`~ExperimentSession.with_ensemble`).  The legacy functions in
:mod:`repro.most.scenario` are one-release deprecation shims over this
class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.coordinator import (
    ExperimentResult,
    FaultTolerantFaultPolicy,
    NaiveFaultPolicy,
)
from repro.most.assembly import (
    MOSTDeployment,
    build_most,
    build_simulation_only,
)
from repro.most.config import MOSTConfig
from repro.net.network import Message
from repro.net.rpc import RpcError, RpcRequest
from repro.util.errors import ConfigurationError, ReproError

#: The paper's fatal step as a fraction of the record: 1493 of 1500.
PAPER_FAIL_FRACTION = 1493 / 1500


def default_fail_step(config: MOSTConfig) -> int:
    """Step 1493 scaled to shortened configs (paper ratio 1493/1500)."""
    return max(1, min(round(config.n_steps * PAPER_FAIL_FRACTION),
                      config.n_steps - 1))


# ---------------------------------------------------------------------------
# Fault-arming helpers (shared with the chaos campaign machinery)
# ---------------------------------------------------------------------------

def _arm_fatal_outage_at_step(dep: MOSTDeployment, step: int, site: str,
                              duration: float) -> None:
    """Take the coordinator—``site`` link down when step ``step`` first
    goes on the wire, for ``duration`` seconds.

    Watching the traffic (rather than hardcoding a wall-clock time) makes
    the failure land on exactly the paper's step regardless of pacing.
    """
    marker = f"step{step:05d}"
    armed = [False]

    def watch(msg: Message) -> bool:
        if armed[0] or msg.dst != site:
            return False
        payload = msg.payload
        if isinstance(payload, RpcRequest):
            params = payload.params
            text = str(params.get("params", "")) + str(params.get("transaction", ""))
            if marker in text:
                armed[0] = True
                dep.faults.schedule_outage("coord", site,
                                           start=dep.kernel.now,
                                           duration=duration)
        return False  # never drop here; the outage does the damage

    dep.network.add_drop_filter(watch)


def _arm_transient_drop_at_step(dep: MOSTDeployment, step: int,
                                site: str) -> None:
    """When step ``step`` first reaches ``site``, drop that site's next
    RPC reply — one transient network failure, recovered by the NTCP
    client's retransmission (idempotent server-side)."""
    marker = f"step{step:05d}"
    armed = [False]

    def watch(msg: Message) -> bool:
        if armed[0] or msg.dst != site:
            return False
        payload = msg.payload
        if isinstance(payload, RpcRequest) and marker in str(payload.params):
            armed[0] = True
            dep.faults.drop_matching(
                lambda m: m.src == site and m.port.startswith("rpc-reply"),
                count=1)
        return False

    dep.network.add_drop_filter(watch)


def _arm_site_slowdown_at_step(dep: MOSTDeployment, step: int, site: str,
                               factor: float) -> None:
    """When step ``step`` first reaches ``site``, multiply its backend's
    compute time by ``factor`` for the rest of the run — the paper's
    slow-site story (one site's evaluation suddenly dominating every
    step), as a mid-run drift rather than an outage."""
    backend = dep.sites[site].backend
    if backend is None or not hasattr(backend, "compute_time"):
        raise ConfigurationError(
            f"site {site!r} has no backend with a compute_time to slow")
    marker = f"step{step:05d}"
    armed = [False]

    def watch(msg: Message) -> bool:
        if armed[0] or msg.dst != site:
            return False
        payload = msg.payload
        if isinstance(payload, RpcRequest) and marker in str(payload.params):
            armed[0] = True
            backend.compute_time *= factor
        return False

    dep.network.add_drop_filter(watch)


def _inject_standard_faults(dep: MOSTDeployment, config: MOSTConfig,
                            fail_at_step: int, *,
                            outage_duration: float = 1800.0) -> None:
    """The public-run fault schedule: three recoverable transients spread
    through the day, then the long outage at the fatal step."""
    for frac, site in ((0.15, "cu"), (0.40, "uiuc"), (0.65, "cu")):
        step = max(1, min(int(frac * config.n_steps), config.n_steps - 1))
        if step != fail_at_step:
            _arm_transient_drop_at_step(dep, step, site)
    _arm_fatal_outage_at_step(dep, fail_at_step, site="uiuc",
                              duration=outage_duration)


def _add_remote_participants(dep: MOSTDeployment, *, n_chef: int,
                             n_stream: int) -> None:
    """Log participants into CHEF; subscribe a few to each site's NSDS."""
    from repro.net.rpc import RpcClient
    from repro.nsds import NSDSReceiver

    kernel, network = dep.kernel, dep.network
    portal_rpc = RpcClient(network, "portal", default_timeout=30.0)

    def chef_crowd():
        tokens = []
        for i in range(n_chef):
            token = yield from portal_rpc.call(
                "portal", "ogsi", "invoke",
                {"service_id": dep.chef.service_id, "operation": "login",
                 "params": {"user": f"observer-{i:03d}"}})
            tokens.append(token)
            if i % 25 == 0:
                yield from portal_rpc.call(
                    "portal", "ogsi", "invoke",
                    {"service_id": dep.chef.service_id,
                     "operation": "chatPost",
                     "params": {"token": token,
                                "text": f"observer-{i:03d} joined"}})
        return tokens

    kernel.process(chef_crowd(), name="chef-crowd")

    receivers = []
    # Viewers watch from the portal host (one RPC client each is overkill;
    # one shared client subscribes on their behalf).
    for name in ("uiuc", "cu"):
        site = dep.sites[name]
        if site.nsds is None:
            continue
        if frozenset(("portal", name)) not in network._links:
            network.connect("portal", name, latency=0.03, fifo=False)
        viewer_rpc = RpcClient(network, "portal", default_timeout=30.0)

        def subscribe(site=site, viewer_rpc=viewer_rpc):
            for _ in range(n_stream // 2):
                recv = NSDSReceiver(network, "portal")
                receivers.append(recv)
                yield from viewer_rpc.call(
                    site.name, "ogsi", "invoke",
                    {"service_id": site.nsds.service_id,
                     "operation": "subscribe",
                     "params": {"sink_host": "portal",
                                "sink_port": recv.port,
                                "lifetime": 1e9}})

        kernel.process(subscribe(), name=f"nsds-subscribers-{name}")
    dep.extras["nsds_receivers"] = receivers


# ---------------------------------------------------------------------------
# The session itself
# ---------------------------------------------------------------------------

@dataclass
class SessionResult:
    """Everything a finished :class:`ExperimentSession` has to report.

    ``result`` and ``deployment`` are always set; the remaining fields
    are populated by the capabilities that were composed in — e.g.
    ``alerts``/``rollups`` only when monitoring was attached,
    ``reconciliation`` only when a resume actually happened.
    """

    result: ExperimentResult
    deployment: MOSTDeployment
    run_id: str
    ntcp_retries: int = 0
    chef_peak_online: int = 0
    files_ingested: int = 0
    stream_samples_pushed: int = 0
    fail_at_step: int | None = None
    aborted_result: ExperimentResult | None = None
    reconciliation: Any = None
    checkpoints: int = 0
    monitoring: Any = None
    alerts: list = field(default_factory=list)
    rollups: dict[str, Any] = field(default_factory=dict)
    breakers: dict[str, Any] = field(default_factory=dict)
    failover: dict[str, Any] | None = None
    degraded_steps: int = 0
    degraded_spans: list = field(default_factory=list)
    metadata_object: Any = None
    outage_at_step: int | None = None
    slow_at_step: int | None = None
    observatory: Any = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return self.result.completed

    @property
    def steps_completed(self) -> int:
        return self.result.steps_completed


class ExperimentSession:
    """Composable builder for one MOST experiment run.

    Construct with a :class:`MOSTConfig` (or ``None`` for the paper's
    full-length defaults), chain ``with_*`` methods to opt into
    capabilities, then call :meth:`run` exactly once.  Every builder
    method returns ``self`` so calls chain; calling one twice replaces
    the earlier setting.
    """

    def __init__(self, config: MOSTConfig | None = None, *,
                 run_id: str = "most-session",
                 simulation_only: bool = False):
        self.config = config or MOSTConfig()
        self.run_id = run_id
        self.simulation_only = simulation_only
        self._fault_policy = None
        self._metadata = True
        self._observers: dict[str, Any] | None = None
        self._faults: dict[str, Any] | None = None
        self._anomalies: dict[str, Any] | None = None
        self._resume: dict[str, Any] | None = None
        self._monitoring: dict[str, Any] | None = None
        self._observatory: dict[str, Any] | None = None
        self._degradation: dict[str, Any] | None = None
        self._pipeline: dict[str, Any] | None = None
        self._variants: list | None = None
        self._ran = False

    # -- fault handling ----------------------------------------------------
    def with_fault_policy(self, policy) -> "ExperimentSession":
        """Use an explicit coordinator fault policy (default: naive)."""
        self._fault_policy = policy
        return self

    def with_fault_tolerance(self, policy=None) -> "ExperimentSession":
        """Retry steps through transient failures (§4 features).

        ``policy=None`` gives the standard schedule every fault-tolerant
        scenario uses: 12 attempts, 30 s backoff growing 1.5× to 600 s.
        """
        self._fault_policy = policy or FaultTolerantFaultPolicy(
            max_attempts=12, backoff=30.0, backoff_factor=1.5,
            max_backoff=600.0)
        return self

    def with_faults(self, fail_at_step: int | None = None, *,
                    outage_duration: float = 1800.0) -> "ExperimentSession":
        """Arm the public-day fault schedule: three transients plus the
        long uiuc outage at ``fail_at_step`` (default: the paper's 1493,
        scaled).  ``outage_duration=float('inf')`` makes it permanent —
        the graceful-degradation counterfactual."""
        self._faults = {"fail_at_step": fail_at_step,
                        "outage_duration": outage_duration}
        return self

    def with_anomalies(self, *, outage_at_step: int | None = None,
                       outage_duration: float = 600.0,
                       slow_site: str | None = "ncsa",
                       slow_at_step: int | None = None,
                       slow_factor: float = 40.0) -> "ExperimentSession":
        """Arm the monitored-run anomalies: a mid-run outage (default:
        halfway) and a slow-site drift (default: a quarter in) — the two
        events the console's detectors exist for."""
        self._anomalies = {"outage_at_step": outage_at_step,
                           "outage_duration": outage_duration,
                           "slow_site": slow_site,
                           "slow_at_step": slow_at_step,
                           "slow_factor": slow_factor}
        return self

    # -- observation & participants ---------------------------------------
    def with_observers(self, n_chef: int | None = None,
                       n_stream: int | None = None) -> "ExperimentSession":
        """Log remote participants into CHEF and subscribe NSDS viewers
        (defaults: the config's public-day head-counts)."""
        self._observers = {"n_chef": n_chef, "n_stream": n_stream}
        return self

    def with_metadata(self, enabled: bool = True) -> "ExperimentSession":
        """Upload the §3.3 component metadata before the run (default on
        for full deployments; simulation-only never uploads)."""
        self._metadata = enabled
        return self

    def with_monitoring(self, thresholds=None,
                        on_alert=None) -> "ExperimentSession":
        """Attach the live operations console; its alert feed and metric
        rollups land on the :class:`SessionResult`."""
        self._monitoring = {"thresholds": thresholds, "on_alert": on_alert}
        return self

    def with_observatory(self, slos=None, *,
                         slo_interval: float = 60.0) -> "ExperimentSession":
        """Attach the grid observatory (see :mod:`repro.observatory`):
        a repo-hosted time-series store fed by the monitoring stream,
        SLO burn-rate alerting through the console, and a flight
        recorder snapshotted on escalation or abort.  Implies
        :meth:`with_monitoring` if it was not requested explicitly."""
        self._observatory = {"slos": slos, "slo_interval": slo_interval}
        if self._monitoring is None:
            self._monitoring = {"thresholds": None, "on_alert": None}
        return self

    # -- durability & degradation ------------------------------------------
    def with_resume(self, store=None, *, checkpoint_every: int = 25,
                    resume_policy=None) -> "ExperimentSession":
        """Checkpoint into the repository (``store=None`` builds the
        deployment's own store) and, if the run aborts, bring up a second
        coordinator incarnation that reconciles in-flight transactions
        and completes the remaining steps."""
        self._resume = {"store": store, "checkpoint_every": checkpoint_every,
                        "resume_policy": resume_policy}
        return self

    def with_degradation(self, policy=None, *,
                         breaker_config=None) -> "ExperimentSession":
        """Per-site circuit breakers plus surrogate failover: a site whose
        breaker stays open past the policy's recovery budget is hot-swapped
        for its numerical surrogate instead of aborting the run."""
        self._degradation = {"policy": policy,
                             "breaker_config": breaker_config}
        return self

    # -- performance --------------------------------------------------------
    def with_pipeline(self, depth: int = 1, *, predictor=None,
                      tolerance: float = 0.0) -> "ExperimentSession":
        """Speculative pipelined stepping: while step *n* executes, the
        coordinator proposes *n+1* from predicted forces
        (``predictor=None`` builds the deployment's design-stiffness
        predictor).  ``tolerance`` is the max-abs mispredict bound;
        0 demands bit-exact predictions."""
        self._pipeline = {"depth": depth, "predictor": predictor,
                          "tolerance": tolerance}
        return self

    def with_ensemble(self, variants: Sequence) -> "ExperimentSession":
        """Drive N ground-motion variants through one coordinator, one
        protocol cycle advancing every variant (see
        :class:`~repro.coordinator.ensemble.EnsembleCoordinator`)."""
        self._variants = list(variants)
        return self

    def fleet_spec(self) -> dict[str, Any]:
        """Export the composed knobs for fleet scheduling.

        :meth:`repro.fleet.scheduler.FleetScheduler.submit_session` turns
        this into an :class:`~repro.fleet.scheduler.ExperimentRequest`,
        so the same builder that scripts a solo run can describe one
        tenant's experiment in a multi-tenant campaign.  The session
        itself stays runnable — exporting a spec does not consume it.
        """
        resume = self._resume or {}
        degradation = self._degradation or {}
        pipeline = self._pipeline or {}
        return {
            "run_id": self.run_id,
            "config": self.config,
            "n_steps": self.config.n_steps,
            "fault_policy": self._fault_policy,
            "checkpoint_every": resume.get("checkpoint_every", 0)
            if self._resume is not None else 0,
            "degradation": self._degradation is not None,
            "breaker_config": degradation.get("breaker_config"),
            "pipeline_depth": pipeline.get("depth", 0),
        }

    # -- execution ----------------------------------------------------------
    def _make_coordinator(self, dep: MOSTDeployment, *, fault_policy,
                          checkpoint_store=None, checkpoint_policy=None,
                          breakers=None, failover=None, state=None,
                          prior_records=()):
        kwargs = dict(run_id=self.run_id, fault_policy=fault_policy,
                      checkpoint_store=checkpoint_store,
                      checkpoint_policy=checkpoint_policy,
                      state=state, prior_records=prior_records,
                      breakers=breakers, failover=failover)
        if self._pipeline is not None:
            predictor = self._pipeline["predictor"] or dep.make_predictor()
            kwargs.update(pipeline_depth=self._pipeline["depth"],
                          predictor=predictor,
                          mispredict_tolerance=self._pipeline["tolerance"])
        if self._variants is not None:
            return dep.make_ensemble_coordinator(variants=self._variants,
                                                 **kwargs)
        return dep.make_coordinator(**kwargs)

    def run(self) -> SessionResult:
        """Build the deployment, run the composed experiment, drain, report."""
        if self._ran:
            raise ConfigurationError(
                "an ExperimentSession runs once; build a new one")
        self._ran = True
        config = self.config
        fail_at_step = None
        if self._faults is not None:
            fail_at_step = self._faults["fail_at_step"]
            if fail_at_step is None:
                fail_at_step = default_fail_step(config)

        dep = (build_simulation_only(config) if self.simulation_only
               else build_most(config))
        dep.start_backends()
        if not self.simulation_only:
            dep.start_observation()
            if self._metadata:
                from repro.most.metadata import upload_most_metadata

                dep.kernel.run(
                    until=dep.kernel.process(upload_most_metadata(dep)))
        if self._observers is not None:
            _add_remote_participants(
                dep,
                n_chef=(self._observers["n_chef"]
                        if self._observers["n_chef"] is not None
                        else config.n_remote_participants),
                n_stream=(self._observers["n_stream"]
                          if self._observers["n_stream"] is not None
                          else config.n_stream_viewers))
        if self._faults is not None:
            _inject_standard_faults(
                dep, config, fail_at_step,
                outage_duration=self._faults["outage_duration"])

        kit = None
        if self._monitoring is not None:
            from repro.monitor import attach_monitoring

            kit = attach_monitoring(dep,
                                    thresholds=self._monitoring["thresholds"],
                                    on_alert=self._monitoring["on_alert"])
        obs = None
        if self._observatory is not None:
            from repro.observatory import attach_observatory

            obs = attach_observatory(
                dep, kit, run_id=self.run_id,
                slos=self._observatory["slos"],
                slo_interval=self._observatory["slo_interval"])
        outage_at_step = slow_at_step = None
        if self._anomalies is not None:
            a = self._anomalies
            outage_at_step = a["outage_at_step"]
            if outage_at_step is None:
                outage_at_step = max(1, min(round(config.n_steps * 0.5),
                                            config.n_steps - 1))
            slow_at_step = a["slow_at_step"]
            if slow_at_step is None:
                slow_at_step = max(1, min(round(config.n_steps * 0.25),
                                          config.n_steps - 1))
            if a["slow_site"] is not None and slow_at_step != outage_at_step:
                _arm_site_slowdown_at_step(dep, slow_at_step, a["slow_site"],
                                           a["slow_factor"])
            _arm_fatal_outage_at_step(dep, outage_at_step, site="uiuc",
                                      duration=a["outage_duration"])
        if kit is not None:
            kit.start()
        if obs is not None:
            obs.start()

        breakers = failover = None
        if self._degradation is not None:
            from repro.coordinator import DegradationPolicy
            from repro.net import BreakerConfig

            breakers = dep.make_breakers(
                self._degradation["breaker_config"]
                or BreakerConfig(failure_threshold=3, open_interval=120.0))
            failover = dep.make_failover(
                policy=self._degradation["policy"]
                or DegradationPolicy(recovery_budget=300.0, readmit=True,
                                     probe_interval=120.0))

        store = ckpt_policy = None
        if self._resume is not None:
            from repro.repository import CheckpointPolicy

            store = self._resume["store"] or dep.make_checkpoint_store()
            ckpt_policy = CheckpointPolicy(
                every_n_steps=self._resume["checkpoint_every"])

        coordinator = self._make_coordinator(
            dep, fault_policy=self._fault_policy or NaiveFaultPolicy(),
            checkpoint_store=store, checkpoint_policy=ckpt_policy,
            breakers=breakers, failover=failover)
        if kit is not None:
            kit.watch_coordinator(coordinator)
        result = dep.kernel.run(until=dep.kernel.process(coordinator.run()))

        aborted = reconciliation = None
        checkpoints = coordinator.state.checkpoint_seq if store else 0
        if self._resume is not None and not result.completed:
            from repro.coordinator import (
                records_from_payloads,
                resume_state_from_checkpoint,
            )

            # Wait out the (public-schedule) outage, then bring up the
            # second incarnation against the same still-running grid.
            outage = (self._faults["outage_duration"]
                      if self._faults is not None else 1800.0)
            dep.kernel.run(until=dep.kernel.now + outage + 1.0)
            doc, payloads = dep.kernel.run(
                until=dep.kernel.process(store.load_history(self.run_id)))
            if doc is None:
                # Died before any checkpoint: nothing to resume from.
                checkpoints = 0
            else:
                aborted = result
                state = resume_state_from_checkpoint(doc)
                prior = records_from_payloads(payloads)
                second = self._make_coordinator(
                    dep,
                    fault_policy=(self._resume["resume_policy"]
                                  or FaultTolerantFaultPolicy(
                                      max_attempts=12, backoff=30.0,
                                      backoff_factor=1.5, max_backoff=600.0)),
                    checkpoint_store=store, checkpoint_policy=ckpt_policy,
                    breakers=breakers, failover=failover,
                    state=state, prior_records=prior)
                result = dep.kernel.run(
                    until=dep.kernel.process(second.run()))
                reconciliation = second.last_reconciliation
                checkpoints = second.state.checkpoint_seq
        if obs is not None:
            if not result.completed:
                # Freeze the black box before anything else drains — the
                # step-1493 snapshot the paper's operators never had.
                obs.record_abort(result)
            obs.stop()
        if kit is not None:
            kit.stop()

        # Degradation history into the repository's metadata service: the
        # archived run says *which* steps are numerical, not just that
        # some are.
        metadata_object = None
        if failover is not None and failover.events:
            def register():
                object_id = yield from dep.coordinator_rpc.call(
                    "repo", "ogsi", "invoke",
                    {"service_id": dep.nmds.service_id,
                     "operation": "createObject",
                     "params": {"object_type": "degradation",
                                "fields": {"run_id": self.run_id,
                                           **failover.report()}}})
                return object_id

            try:
                metadata_object = dep.kernel.run(
                    until=dep.kernel.process(register()))
            except (RpcError, ReproError):
                metadata_object = None  # repo unreachable: report-only

        dep.stop_observation()
        # Final sweep: upload whatever the DAQ stop-flush staged (the
        # paper's ingestion is incremental *and* complete).
        for site in dep.sites.values():
            if site.ingest is not None:
                drain = dep.kernel.process(site.ingest.drain())
                drain.defuse()  # repo may be unreachable in fault scenarios
        # Let in-flight uploads, streams and notifications drain.
        dep.kernel.run(until=dep.kernel.now + 600.0)
        ingested = sum(len(s.ingest.uploaded) for s in dep.sites.values()
                       if s.ingest is not None)
        pushed = sum(s.nsds.pushed for s in dep.sites.values()
                     if s.nsds is not None)

        outcome = SessionResult(
            result=result, deployment=dep, run_id=self.run_id,
            ntcp_retries=dep.coordinator_rpc.stats.retries,
            chef_peak_online=dep.chef.peak_online,
            files_ingested=ingested, stream_samples_pushed=pushed,
            fail_at_step=fail_at_step, aborted_result=aborted,
            reconciliation=reconciliation, checkpoints=checkpoints,
            outage_at_step=outage_at_step, slow_at_step=slow_at_step,
            metadata_object=metadata_object,
            degraded_steps=result.degraded_steps,
            degraded_spans=result.degraded_spans())
        if breakers is not None:
            outcome.breakers = {name: b.snapshot()
                                for name, b in breakers.items()}
            outcome.failover = failover.report()
        if kit is not None:
            outcome.monitoring = kit
            outcome.alerts = list(kit.monitor.alerts)
            outcome.rollups = kit.monitor.rollups()
        if obs is not None:
            outcome.observatory = obs
        return outcome
