"""Wiring the full MOST deployment (paper Figures 5, 9, 10).

Hosts: ``coord`` (the simulation coordinator, run from UIUC), ``uiuc``,
``cu``, ``ncsa`` (the three substructure sites), ``repo`` (data/metadata
repository at NCSA), and ``portal`` (the CHEF server remote participants
log in to).  Site back-ends follow Figure 9 exactly:

* UIUC: NTCP server → Shore-Western plugin → simulated controller →
  servo-hydraulics on a yielding steel column specimen;
* NCSA: NTCP server → MPlugin → polling Matlab backend → numerical middle
  section;
* CU: NTCP server → the *same* MPlugin code → polling Matlab application →
  xPC real-time target → servo-hydraulics on the second column.

DAQ systems at UIUC and CU (and a pseudo-DAQ capturing the NCSA
simulation output, §3.2) deposit files into staging stores; ingestion
tools upload them through NFMS/GridFTP; NSDS services stream live samples;
cameras stream frames; the CHEF worksite hosts chat/notebook/viewers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chef import ChefWorksite
from repro.control import (
    MatlabBackend,
    MPlugin,
    ShoreWesternController,
    ShoreWesternPlugin,
    SimulationPlugin,
    XPCBackend,
    XPCTarget,
)
from repro.coordinator import (
    DegradationPolicy,
    EnsembleCoordinator,
    FailoverManager,
    FaultPolicy,
    NaiveFaultPolicy,
    SimulationCoordinator,
    SiteBinding,
    SubstructurePredictor,
    SurrogateSpec,
)
from repro.core import NTCPClient, NTCPServer
from repro.core.policy import SitePolicy as _SitePolicy
from repro.daq import DAQSystem, SensorChannel, StagingStore
from repro.daq.filestore import RepositoryFileStore
from repro.most.config import MOSTConfig
from repro.net import (
    BreakerConfig,
    CircuitBreaker,
    FaultInjector,
    Network,
    RpcClient,
)
from repro.nsds import NSDSService
from repro.ogsi import GridServiceHandle, ServiceContainer
from repro.repository import (
    GridFTPTransport,
    HttpsBridgeTransport,
    IngestionTool,
    NFMSService,
    NMDSService,
    RepositoryCheckpointStore,
)
from repro.sim import Kernel
from repro.structural import (
    BilinearSpring,
    GroundMotion,
    LinearSubstructure,
    PhysicalSpecimen,
    StructuralModel,
    kanai_tajimi_record,
)
from repro.structural.specimen import Actuator, Sensor
from repro.telepresence import CameraService, ReferralService


@dataclass
class SiteDeployment:
    """One site's moving parts, for tests and scenario scripting."""

    name: str
    container: ServiceContainer
    server: NTCPServer
    handle: GridServiceHandle
    specimen: PhysicalSpecimen | None = None
    backend: Any = None
    daq: DAQSystem | None = None
    staging: StagingStore | None = None
    nsds: NSDSService | None = None
    ingest: IngestionTool | None = None
    camera: CameraService | None = None


@dataclass
class MOSTDeployment:
    """The assembled experiment, ready for a scenario to drive."""

    config: MOSTConfig
    kernel: Kernel
    network: Network
    faults: FaultInjector
    motion: GroundMotion
    model: StructuralModel
    sites: dict[str, SiteDeployment]
    coordinator_rpc: RpcClient
    ntcp_client: NTCPClient
    repo_store: RepositoryFileStore
    nmds: NMDSService
    nfms: NFMSService
    chef: ChefWorksite
    extras: dict = field(default_factory=dict)

    def make_coordinator(self, *, run_id: str,
                         fault_policy: FaultPolicy | None = None,
                         on_step=None, checkpoint_store=None,
                         checkpoint_policy=None, state=None,
                         prior_records=(), breakers=None,
                         failover=None, pipeline_depth: int = 0,
                         predictor=None,
                         mispredict_tolerance: float = 0.0,
                         ) -> SimulationCoordinator:
        """A coordinator bound to the three sites (Figure 5).

        Pass ``checkpoint_store``/``checkpoint_policy`` to persist
        experiment state, and ``state``/``prior_records`` (from
        :func:`~repro.coordinator.state.resume_state_from_checkpoint` /
        :func:`~repro.coordinator.state.records_from_payloads`) to resume
        an aborted run in a new coordinator incarnation.  ``breakers``
        (see :meth:`make_breakers`) and ``failover`` (see
        :meth:`make_failover`) enable graceful degradation.
        ``pipeline_depth=1`` with a ``predictor`` (see
        :meth:`make_predictor`) enables speculative pipelined stepping.
        """
        bindings = [SiteBinding(name, site.handle, dof_indices=[0])
                    for name, site in self.sites.items()]
        return SimulationCoordinator(
            run_id=run_id, client=self.ntcp_client, model=self.model,
            motion=self.motion, sites=bindings,
            fault_policy=fault_policy or NaiveFaultPolicy(),
            execution_timeout=self.config.execution_timeout,
            on_step=on_step, checkpoint_store=checkpoint_store,
            checkpoint_policy=checkpoint_policy, state=state,
            prior_records=prior_records, breakers=breakers,
            failover=failover, pipeline_depth=pipeline_depth,
            predictor=predictor,
            mispredict_tolerance=mispredict_tolerance)

    def make_ensemble_coordinator(self, *, run_id: str,
                                  variants,
                                  fault_policy: FaultPolicy | None = None,
                                  on_step=None, checkpoint_store=None,
                                  checkpoint_policy=None, state=None,
                                  prior_records=(), breakers=None,
                                  failover=None, pipeline_depth: int = 0,
                                  predictor=None,
                                  mispredict_tolerance: float = 0.0,
                                  ) -> EnsembleCoordinator:
        """An ensemble coordinator stepping N scenario variants at once.

        ``variants`` is the list of ground-motion records (shared time
        grid); everything else matches :meth:`make_coordinator`.  The
        deployment's own ``motion`` is ignored — the variants define the
        record.
        """
        bindings = [SiteBinding(name, site.handle, dof_indices=[0])
                    for name, site in self.sites.items()]
        return EnsembleCoordinator(
            run_id=run_id, client=self.ntcp_client, model=self.model,
            variants=variants, sites=bindings,
            fault_policy=fault_policy or NaiveFaultPolicy(),
            execution_timeout=self.config.execution_timeout,
            on_step=on_step, checkpoint_store=checkpoint_store,
            checkpoint_policy=checkpoint_policy, state=state,
            prior_records=prior_records, breakers=breakers,
            failover=failover, pipeline_depth=pipeline_depth,
            predictor=predictor,
            mispredict_tolerance=mispredict_tolerance)

    def make_predictor(self) -> SubstructurePredictor:
        """A force predictor for pipelined stepping, one model per site.

        Each site gets its *design* substructure — exactly what the
        simulation-only deployment evaluates, so speculation there is
        bit-exact and never rolls back; against physical specimens the
        prediction is the nominal linear response (pair with a
        ``mispredict_tolerance``).
        """
        config = self.config
        stiffness = {"uiuc": config.k_uiuc, "cu": config.k_cu,
                     "ncsa": config.k_ncsa}
        return SubstructurePredictor({
            name: LinearSubstructure(f"{name}-predictor", [[k]], [0])
            for name, k in stiffness.items() if name in self.sites})

    def make_breakers(self, config: BreakerConfig | None = None,
                      ) -> dict[str, CircuitBreaker]:
        """One circuit breaker per site, for the coordinator to consult."""
        return {name: CircuitBreaker(self.kernel, name, config)
                for name in sorted(self.sites)}

    def make_failover(self, *, policy: DegradationPolicy | None = None,
                      compute_time: float | None = None,
                      port: str = "ogsi-failover") -> FailoverManager:
        """A failover manager with one numerical surrogate per site.

        Each surrogate is a fresh :class:`LinearSubstructure` built from
        the site's design stiffness — exactly the model the simulation-only
        rehearsal ran — behind the same displacement-limit policy the real
        site enforces.  Surrogates deploy in a dedicated container on the
        coordinator host (its ``ogsi`` port belongs to other kit in
        monitored runs).
        """
        config = self.config
        stroke = config.actuator_stroke
        site_policy = (_SitePolicy()
                       .limit("set-displacement", "value",
                              minimum=-stroke, maximum=stroke))
        stiffness = {"uiuc": config.k_uiuc, "cu": config.k_cu,
                     "ncsa": config.k_ncsa}
        specs = [
            SurrogateSpec(
                site=name,
                substructure_factory=(
                    lambda name=name, k=k: LinearSubstructure(
                        f"{name}-surrogate", [[k]], [0])),
                compute_time=(compute_time if compute_time is not None
                              else config.ncsa_compute),
                policy=site_policy)
            for name, k in sorted(stiffness.items()) if name in self.sites]
        container = ServiceContainer(self.network, "coord", port=port)
        return FailoverManager(container=container, specs=specs,
                               policy=policy)

    def make_checkpoint_store(self) -> RepositoryCheckpointStore:
        """A checkpoint store writing through NFMS/GridFTP to ``repo``."""
        rpc = RpcClient(self.network, "coord", default_timeout=30.0,
                        default_retries=2)
        return RepositoryCheckpointStore(
            host="coord", repo_host="repo", repo_store=self.repo_store,
            transport=GridFTPTransport(self.network), rpc=rpc,
            nfms=self.extras["nfms_handle"])

    def start_backends(self) -> None:
        for site in self.sites.values():
            if site.backend is not None and not site.backend.running:
                site.backend.start(self.kernel)

    def start_observation(self) -> None:
        """Start DAQ sampling and ingestion at the physical sites."""
        for site in self.sites.values():
            if site.daq is not None and not site.daq.running:
                site.daq.start()
            if site.ingest is not None and not site.ingest.running:
                site.ingest.start()

    def stop_observation(self) -> None:
        for site in self.sites.values():
            if site.daq is not None:
                site.daq.stop()
            if site.ingest is not None:
                site.ingest.stop()
            if site.backend is not None:
                site.backend.stop()


def _physical_site(dep: "MOSTDeployment", name: str, host: str,
                   config: MOSTConfig, k: float, seed: int) -> tuple:
    """Common physical-site kit: specimen, DAQ, staging, NSDS, camera."""
    specimen = PhysicalSpecimen(
        f"{name}-column",
        BilinearSpring(k=k, fy=config.yield_force,
                       alpha=config.hardening_ratio),
        actuator=Actuator(min_settle=config.settle_min,
                          max_rate=config.actuator_rate,
                          max_stroke=config.actuator_stroke,
                          tracking_std=config.tracking_std),
        lvdt=Sensor(noise_std=1e-5),
        load_cell=Sensor(noise_std=config.force_noise),
        strain_gauge=Sensor(gain=1e3, noise_std=1e-3),
        seed=seed)
    staging = StagingStore(name=f"{name}-staging")
    daq = DAQSystem(host, dep.kernel, staging,
                    sample_interval=config.daq_interval,
                    block_size=config.daq_block,
                    seed=config.seeds.get("daq", 0) + seed)
    daq.add_channel(SensorChannel(
        f"{name}-displacement", lambda s=specimen: s.actuator.position,
        Sensor(noise_std=1e-5), units="m"))
    # The force channel reports the last load-cell measurement: re-probing
    # the element would advance its hysteresis state, which a sensor must
    # never do.
    daq.add_channel(SensorChannel(
        f"{name}-force",
        lambda s=specimen: s.history[-1].force if s.history else 0.0,
        Sensor(noise_std=0.0), units="N"))
    return specimen, staging, daq


def build_most(config: MOSTConfig | None = None) -> MOSTDeployment:
    """Construct the full MOST deployment; nothing is running yet."""
    config = config or MOSTConfig()
    kernel = Kernel()
    network = Network(kernel, seed=config.network_seed)
    for host in ("coord", "uiuc", "cu", "ncsa", "repo", "portal"):
        network.add_host(host)
    # Coordinator at UIUC; NCSA and the repository share the Urbana campus;
    # CU is across the WAN.  Star topology from the coordinator plus the
    # repo links the uploaders need.
    network.connect("coord", "uiuc", latency=config.latency_uiuc,
                    jitter=config.jitter)
    network.connect("coord", "ncsa", latency=config.latency_ncsa,
                    jitter=config.jitter)
    network.connect("coord", "cu", latency=config.latency_cu,
                    jitter=config.jitter)
    network.connect("uiuc", "repo", latency=config.latency_ncsa)
    network.connect("cu", "repo", latency=config.latency_cu)
    network.connect("ncsa", "repo", latency=0.001)
    # The coordinator writes experiment checkpoints into the repository;
    # this link is distinct from the coordinator-site links, so an outage
    # that kills a step usually leaves the abort-time checkpoint reachable.
    network.connect("coord", "repo", latency=config.latency_ncsa)
    network.connect("portal", "repo", latency=0.02)
    network.connect("coord", "portal", latency=0.02)

    motion = kanai_tajimi_record(
        duration=config.n_steps * config.dt, dt=config.dt, pga=config.pga,
        seed=config.motion_seed)
    model = StructuralModel(
        mass=[[config.mass]], stiffness=[[config.k_total]]
    ).with_rayleigh_damping(config.damping_ratio)

    dep = MOSTDeployment(
        config=config, kernel=kernel, network=network,
        faults=FaultInjector(network), motion=motion, model=model,
        sites={}, coordinator_rpc=None, ntcp_client=None,  # type: ignore
        repo_store=RepositoryFileStore(), nmds=NMDSService(),
        nfms=NFMSService(), chef=ChefWorksite())

    policy = (_SitePolicy()
              .limit("set-displacement", "value",
                     minimum=-config.actuator_stroke,
                     maximum=config.actuator_stroke))

    # ---- UIUC: Shore-Western ------------------------------------------------
    uiuc_container = ServiceContainer(network, "uiuc")
    uiuc_spec, uiuc_staging, uiuc_daq = _physical_site(
        dep, "uiuc", "uiuc", config, config.k_uiuc, config.seeds["uiuc"])
    uiuc_controller = ShoreWesternController({0: uiuc_spec})
    uiuc_server = NTCPServer("ntcp-uiuc", ShoreWesternPlugin(
        uiuc_controller, link_delay=0.002, policy=policy))
    uiuc_handle = uiuc_container.deploy(uiuc_server)
    uiuc_nsds = NSDSService("nsds-uiuc")
    uiuc_container.deploy(uiuc_nsds)
    uiuc_daq.on_sample(uiuc_nsds.ingest)
    uiuc_camera = CameraService("camera-uiuc")
    uiuc_container.deploy(uiuc_camera)
    dep.sites["uiuc"] = SiteDeployment(
        name="uiuc", container=uiuc_container, server=uiuc_server,
        handle=uiuc_handle, specimen=uiuc_spec, daq=uiuc_daq,
        staging=uiuc_staging, nsds=uiuc_nsds, camera=uiuc_camera)
    dep.extras["uiuc_controller"] = uiuc_controller

    # ---- NCSA: MPlugin + Matlab simulation ----------------------------------
    ncsa_container = ServiceContainer(network, "ncsa")
    ncsa_plugin = MPlugin(policy=policy)
    ncsa_backend = MatlabBackend(
        ncsa_plugin, LinearSubstructure("ncsa-middle", [[config.k_ncsa]], [0]),
        poll_interval=config.poll_interval, compute_time=config.ncsa_compute)
    ncsa_server = NTCPServer("ntcp-ncsa", ncsa_plugin)
    ncsa_handle = ncsa_container.deploy(ncsa_server)
    dep.sites["ncsa"] = SiteDeployment(
        name="ncsa", container=ncsa_container, server=ncsa_server,
        handle=ncsa_handle, backend=ncsa_backend)

    # ---- CU: MPlugin + Matlab + xPC target -----------------------------------
    cu_container = ServiceContainer(network, "cu")
    cu_spec, cu_staging, cu_daq = _physical_site(
        dep, "cu", "cu", config, config.k_cu, config.seeds["cu"])
    cu_plugin = MPlugin(policy=policy)
    cu_target = XPCTarget({0: cu_spec}, comm_latency=config.xpc_comm)
    cu_backend = XPCBackend(cu_plugin, cu_target,
                            poll_interval=config.poll_interval)
    cu_server = NTCPServer("ntcp-cu", cu_plugin)
    cu_handle = cu_container.deploy(cu_server)
    cu_nsds = NSDSService("nsds-cu")
    cu_container.deploy(cu_nsds)
    cu_daq.on_sample(cu_nsds.ingest)
    cu_camera = CameraService("camera-cu")
    cu_container.deploy(cu_camera)
    dep.sites["cu"] = SiteDeployment(
        name="cu", container=cu_container, server=cu_server,
        handle=cu_handle, specimen=cu_spec, backend=cu_backend, daq=cu_daq,
        staging=cu_staging, nsds=cu_nsds, camera=cu_camera)
    dep.extras["cu_target"] = cu_target

    # ---- repository + portal ----------------------------------------------------
    repo_container = ServiceContainer(network, "repo")
    repo_container.deploy(dep.nmds)
    repo_container.deploy(dep.nfms)
    dep.nfms.install_transport("gridftp")
    dep.nfms.install_transport("https")
    nfms_handle = GridServiceHandle("repo", "ogsi", "nfms")
    nmds_handle = GridServiceHandle("repo", "ogsi", "nmds")
    for name in ("uiuc", "cu"):
        site = dep.sites[name]
        site_rpc = RpcClient(network, name, default_timeout=30.0,
                             default_retries=2)
        site.ingest = IngestionTool(
            site=name, staging=site.staging, repo_host="repo",
            repo_store=dep.repo_store, transport=GridFTPTransport(network),
            rpc=site_rpc, nfms=nfms_handle, nmds=nmds_handle,
            experiment="most", sweep_interval=config.ingest_interval)
    portal_container = ServiceContainer(network, "portal")
    portal_container.deploy(dep.chef)
    # Telepresence referral (TR 2003-09): the portal's directory of what a
    # remote participant can watch — the CHEF "Video buttons" render this.
    referral = ReferralService("referral-most")
    portal_container.deploy(referral)
    referral._op_register(None, experiment="most", kind="worksite",
                          label="MOST collaboration worksite",
                          handle=str(GridServiceHandle(
                              "portal", "ogsi", dep.chef.service_id)),
                          site="portal")
    referral._op_register(None, experiment="most", kind="repository",
                          label="MOST data and metadata repository",
                          handle=str(nmds_handle), site="repo")
    for name in ("uiuc", "cu"):
        site = dep.sites[name]
        referral._op_register(
            None, experiment="most", kind="camera",
            label=f"{name.upper()} laboratory camera",
            handle=str(GridServiceHandle(name, "ogsi",
                                         site.camera.service_id)),
            site=name)
        referral._op_register(
            None, experiment="most", kind="stream",
            label=f"{name.upper()} structural response stream",
            handle=str(GridServiceHandle(name, "ogsi",
                                         site.nsds.service_id)),
            site=name)
    dep.extras["referral"] = referral
    dep.extras["https_bridge"] = HttpsBridgeTransport(network)
    dep.extras["nfms_handle"] = nfms_handle
    dep.extras["nmds_handle"] = nmds_handle

    # ---- coordinator client -------------------------------------------------------
    dep.coordinator_rpc = RpcClient(network, "coord",
                                    default_timeout=config.rpc_timeout,
                                    default_retries=config.rpc_retries)
    dep.ntcp_client = NTCPClient(dep.coordinator_rpc,
                                 timeout=config.rpc_timeout,
                                 retries=config.rpc_retries)
    return dep


def provision_simulation_site(site: SiteDeployment, kernel: Kernel,
                              substructure: LinearSubstructure, *,
                              compute_time: float = 1.0,
                              policy: Any = None) -> SimulationPlugin:
    """Put a fresh :class:`SimulationPlugin` behind ``site``'s NTCP server.

    The swap happens behind the *same* server and grid handle, so a
    coordinator cannot tell the difference — the paper's "the use of NTCP
    made this substitution transparent".  Both the simulation-only
    rehearsal and the fleet's per-lease site provisioning go through
    here: a lease always gets brand-new substructure state, so nothing
    numerical leaks from one tenant's run into the next.
    """
    sim = SimulationPlugin(substructure, compute_time=compute_time,
                           policy=(policy if policy is not None
                                   else getattr(site.server.plugin,
                                                "policy", None)))
    site.server.plugin = sim
    sim.attach(kernel, site=site.server.service_id)
    site.server.service_data.set("plugin", sim.plugin_type)
    return sim


def build_simulation_only(config: MOSTConfig | None = None) -> MOSTDeployment:
    """The incremental-development variant: all three sites are simulations.

    "First, we implemented and tested a distributed simulation-only
    experiment.  Once the correctness of the distributed simulation was
    verified, two of the numerical simulations were replaced with physical
    substructures.  The use of NTCP made this substitution transparent to
    the coordinator."  Everything (hosts, links, coordinator) is identical
    to :func:`build_most` except the plugins behind the NTCP servers.
    """
    config = config or MOSTConfig()
    dep = build_most(config)
    for name, k in (("uiuc", config.k_uiuc), ("cu", config.k_cu)):
        site = dep.sites[name]
        provision_simulation_site(
            site, dep.kernel, LinearSubstructure(f"{name}-sim", [[k]], [0]),
            compute_time=config.ncsa_compute)
        site.specimen = None
        site.backend = None
    return dep
