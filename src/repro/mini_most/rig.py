"""Building and running the Mini-MOST rig."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.control import LabVIEWPlugin, StepperMotor
from repro.coordinator import (
    FaultPolicy,
    NaiveFaultPolicy,
    SimulationCoordinator,
    SiteBinding,
)
from repro.core import NTCPClient, NTCPServer
from repro.core.policy import SitePolicy
from repro.daq import DAQSystem, SensorChannel, StagingStore
from repro.mini_most.beam import BeamProperties, FirstOrderKineticBeam
from repro.net import Network, RpcClient
from repro.ogsi import ServiceContainer
from repro.sim import Kernel
from repro.structural import StructuralModel, kanai_tajimi_record
from repro.structural.elements import LinearSpring
from repro.structural.specimen import Sensor


@dataclass
class MiniMOSTConfig:
    """Mini-MOST constants — the paper's "small changes to the MATLAB code
    to accommodate these differences" (mass, spring constant, inertia...)."""

    beam: BeamProperties = field(default_factory=BeamProperties)
    damping_ratio: float = 0.02
    n_steps: int = 200
    dt: float = 0.02
    pga: float = 0.5             # m/s^2 — tabletop-scale shaking
    motion_seed: int = 7
    step_size: float = 5e-5      # m per motor step
    step_rate: float = 400.0     # steps/s
    max_travel: float = 0.02     # m
    daq_read_time: float = 0.05
    # Kinetic relaxation per command: a lagging restoring force acts like
    # negative damping in a PSD loop, so the rate is kept high enough that
    # the simulator tracks the elastic rig instead of blowing up.
    kinetic_rate: float = 0.9
    rpc_timeout: float = 30.0
    execution_timeout: float = 60.0


@dataclass
class MiniMOSTDeployment:
    """The single-PC deployment: everything on host ``pc``."""

    config: MiniMOSTConfig
    kernel: Kernel
    network: Network
    server: NTCPServer
    motor: StepperMotor
    element: Any
    daq: DAQSystem
    staging: StagingStore
    client: NTCPClient
    coordinator: SimulationCoordinator


def build_mini_most(config: MiniMOSTConfig | None = None, *,
                    use_kinetic_simulator: bool = False,
                    fault_policy: FaultPolicy | None = None,
                    ) -> MiniMOSTDeployment:
    """Wire the tabletop rig (optionally with the beam replaced by the
    first-order kinetic simulator) and its coordinator, all on one PC."""
    config = config or MiniMOSTConfig()
    kernel = Kernel()
    network = Network(kernel, seed=0)
    network.add_host("pc")
    container = ServiceContainer(network, "pc")

    k_beam = config.beam.stiffness
    element = (FirstOrderKineticBeam(k_beam, rate=config.kinetic_rate)
               if use_kinetic_simulator else LinearSpring(k_beam))
    motor = StepperMotor(step_size=config.step_size,
                         step_rate=config.step_rate,
                         max_travel=config.max_travel)
    policy = SitePolicy().limit("set-displacement", "value",
                                minimum=-config.max_travel,
                                maximum=config.max_travel)
    plugin = LabVIEWPlugin({0: (motor, element)},
                           daq_read_time=config.daq_read_time, policy=policy)
    server = NTCPServer("ntcp-minimost", plugin)
    handle = container.deploy(server)

    staging = StagingStore("minimost-staging")
    daq = DAQSystem("pc", kernel, staging, sample_interval=1.0,
                    block_size=30)
    daq.add_channel(SensorChannel("beam-position", lambda: motor.position,
                                  Sensor(noise_std=1e-6), units="m"))
    daq.add_channel(SensorChannel(
        "beam-strain", lambda: motor.position / config.beam.length,
        Sensor(gain=1e3, noise_std=1e-4), units="ustrain"))

    motion = kanai_tajimi_record(duration=config.n_steps * config.dt,
                                 dt=config.dt, pga=config.pga,
                                 seed=config.motion_seed)
    model = StructuralModel(
        mass=[[config.beam.tip_mass]], stiffness=[[k_beam]]
    ).with_rayleigh_damping(config.damping_ratio)

    rpc = RpcClient(network, "pc", default_timeout=config.rpc_timeout,
                    default_retries=2)
    client = NTCPClient(rpc, timeout=config.rpc_timeout, retries=2)
    coordinator = SimulationCoordinator(
        run_id="minimost", client=client, model=model, motion=motion,
        sites=[SiteBinding("beam", handle, dof_indices=[0])],
        fault_policy=fault_policy or NaiveFaultPolicy(),
        execution_timeout=config.execution_timeout)
    return MiniMOSTDeployment(config=config, kernel=kernel, network=network,
                              server=server, motor=motor, element=element,
                              daq=daq, staging=staging, client=client,
                              coordinator=coordinator)


def run_mini_most(config: MiniMOSTConfig | None = None, *,
                  use_kinetic_simulator: bool = False):
    """Build, run to completion, return ``(result, deployment)``."""
    dep = build_mini_most(config, use_kinetic_simulator=use_kinetic_simulator)
    dep.daq.start()
    result = dep.kernel.run(until=dep.kernel.process(dep.coordinator.run()))
    dep.daq.stop()
    return result, dep
