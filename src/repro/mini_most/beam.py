"""The Mini-MOST beam and its first-order kinetic stand-in."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.structural.elements import cantilever_stiffness


@dataclass(frozen=True)
class BeamProperties:
    """Physical properties of the 1 m × 10 cm tabletop beam.

    Defaults approximate a 1 m aluminium strip, 100 mm wide and 6 mm thick:
    ``I = b t^3 / 12``; tip stiffness ``3 E I / L^3`` ≈ 250 N/m — soft
    enough for a 24 lb stepper to drive.
    """

    length: float = 1.0          # m
    width: float = 0.10          # m
    thickness: float = 0.006     # m
    e_modulus: float = 69e9      # Pa (aluminium)
    tip_mass: float = 2.0        # kg lumped at the tip

    @property
    def inertia(self) -> float:
        return self.width * self.thickness ** 3 / 12.0

    @property
    def stiffness(self) -> float:
        return cantilever_stiffness(self.e_modulus, self.inertia, self.length)

    @property
    def natural_frequency(self) -> float:
        """rad/s of the tip-mass idealization."""
        return float(np.sqrt(self.stiffness / self.tip_mass))


class FirstOrderKineticBeam:
    """The beam replaced by a first-order kinetic simulator.

    Used "for testing when the actual hardware is not available": instead
    of elastic statics, the state relaxes toward the commanded displacement
    with first-order kinetics (rate constant ``rate``), and the reported
    force is the elastic force at the *current* (lagging) state.  The same
    ``force(d)``/``reset()`` interface as the spring elements lets it slot
    straight into :class:`~repro.control.labview.LabVIEWPlugin`.
    """

    def __init__(self, stiffness: float, *, rate: float = 0.6):
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        self.k = stiffness
        self.rate = rate
        self.state = 0.0

    @property
    def initial_stiffness(self) -> float:
        return self.k

    def force(self, d: float) -> float:
        """Relax one kinetic step toward ``d``; return the lagging force."""
        self.state += self.rate * (d - self.state)
        return self.k * self.state

    def reset(self) -> None:
        self.state = 0.0
