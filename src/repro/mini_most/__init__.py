"""Mini-MOST (paper §3.5, Figure 11).

The tabletop, single-beam, stepper-motor emulation of the UIUC portion of
MOST: "a tabletop-sized system, with a single (1 m by 10 cm) beam, using
stepper motors ... The control and DAQ are run from a single Windows-based
PC, which can also host the MATLAB simulation coordinator."  The software
deltas from MOST are exactly the paper's: a new NTCP plugin for LabVIEW,
and re-scaled constants in the coordinator.  For hardware-free testing "we
also have a program where the beam is replaced by a first-order kinetic
simulator" — :class:`~repro.mini_most.beam.FirstOrderKineticBeam`.
"""

from repro.mini_most.beam import BeamProperties, FirstOrderKineticBeam
from repro.mini_most.rig import MiniMOSTConfig, build_mini_most, run_mini_most

__all__ = [
    "BeamProperties",
    "FirstOrderKineticBeam",
    "MiniMOSTConfig",
    "build_mini_most",
    "run_mini_most",
]
