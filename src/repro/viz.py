"""Terminal visualization helpers.

The paper's figures are response histories and hysteresis loops; these
helpers render both as ASCII so the examples and benchmark reports can
show *the actual curves* without any plotting dependency.  All functions
return strings (no printing), so tests can assert on their structure.
"""

from __future__ import annotations

import numpy as np

#: glyphs from low to high for sparklines
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values, *, width: int = 60) -> str:
    """A one-line sparkline of ``values``, resampled to ``width`` columns.

    >>> sparkline([0, 1, 0, -1, 0], width=5)
    '▅█▅▁▅'
    """
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        return ""
    if values.size > width:
        idx = np.linspace(0, values.size - 1, width).round().astype(int)
        values = values[idx]
    lo, hi = float(np.min(values)), float(np.max(values))
    if hi == lo:
        return _SPARK[0] * len(values)
    scaled = (values - lo) / (hi - lo) * (len(_SPARK) - 1)
    return "".join(_SPARK[int(round(s))] for s in scaled)


def time_series_plot(times, values, *, width: int = 64, height: int = 12,
                     title: str = "", y_label: str = "") -> str:
    """A block-character time-series plot with axis annotations."""
    times = np.asarray(list(times), dtype=float)
    values = np.asarray(list(values), dtype=float)
    if times.size == 0:
        return f"{title}\n(no data)"
    if times.size > width:
        idx = np.linspace(0, times.size - 1, width).round().astype(int)
        times, values = times[idx], values[idx]
    lo, hi = float(np.min(values)), float(np.max(values))
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * len(values) for _ in range(height)]
    for col, v in enumerate(values):
        row = int(round((v - lo) / span * (height - 1)))
        grid[height - 1 - row][col] = "•"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = f"{hi:+.3g}"
        elif i == height - 1:
            label = f"{lo:+.3g}"
        lines.append(f"{label:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * len(values))
    lines.append(f"{'':>11} t={times[0]:.3g} .. {times[-1]:.3g}"
                 + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)


def scatter_plot(xs, ys, *, width: int = 56, height: int = 20,
                 title: str = "", x_label: str = "",
                 y_label: str = "") -> str:
    """An ASCII scatter (for hysteresis loops: displacement vs force)."""
    xs = np.asarray(list(xs), dtype=float)
    ys = np.asarray(list(ys), dtype=float)
    if xs.size == 0:
        return f"{title}\n(no data)"
    x_lo, x_hi = float(np.min(xs)), float(np.max(xs))
    y_lo, y_hi = float(np.min(ys)), float(np.max(ys))
    x_span = x_hi - x_lo if x_hi > x_lo else 1.0
    y_span = y_hi - y_lo if y_hi > y_lo else 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = int(round((y - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "·"
    # densify repeat hits
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = f"{y_hi:+.3g}"
        elif i == height - 1:
            label = f"{y_lo:+.3g}"
        lines.append(f"{label:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':>12}{x_lo:+.3g}"
                 + " " * max(1, width - 18) + f"{x_hi:+.3g}")
    footer = []
    if x_label:
        footer.append(f"x: {x_label}")
    if y_label:
        footer.append(f"y: {y_label}")
    if footer:
        lines.append(" " * 12 + "   ".join(footer))
    return "\n".join(lines)


def comparison_table(rows: list[dict], columns: list[str], *,
                     title: str = "", float_format: str = "{:.3g}") -> str:
    """A fixed-width table from dict rows (benchmark report helper)."""
    widths = {c: max(len(c), *(len(_fmt(r.get(c, ""), float_format))
                               for r in rows)) if rows else len(c)
              for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(
            _fmt(row.get(c, ""), float_format).ljust(widths[c])
            for c in columns))
    return "\n".join(lines)


def _fmt(value, float_format: str) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return float_format.format(value)
