"""Request/response RPC over the simulated network.

Every grid service in this reproduction (NTCP servers, the repository, NSDS,
CHEF, telepresence) is exposed through :class:`RpcService` and called through
:class:`RpcClient`.  The layer provides:

* request/response correlation by request id;
* per-call timeout with bounded retransmission (at-least-once) — exactness
  (at-most-once) is the job of the layer above, as in NTCP's design;
* remote exception propagation (:class:`RemoteException` wraps the server
  side error without smuggling live exception objects across "the wire");
* an optional security hook: services may install a ``checker`` that
  authenticates/authorizes each request's credential before dispatch.

Client calls are written in the process style::

    result = yield from client.call("uiuc", "ntcp", "propose", {...})
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.net.network import Message, Network
from repro.net.retry import RetryPolicy
from repro.telemetry.spans import TraceContext
from repro.util.errors import ReproError, SecurityError
from repro.util.ids import IdFactory


class RpcError(ReproError):
    """Base class for RPC-layer failures."""


class RpcTimeout(RpcError):
    """No response arrived within the timeout across all retries."""


class RemoteException(RpcError):
    """The remote handler raised; carries the remote type name and message."""

    def __init__(self, remote_type: str, message: str, data: Any = None):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message
        self.data = data


@dataclass(frozen=True)
class RpcRequest:
    request_id: str
    method: str
    params: dict[str, Any]
    reply_port: str
    credential: Any = None
    #: trace context of the calling span (a plain ``{"trace_id", "span_id"}``
    #: dict, so nothing live crosses the wire) — lets the receiving side
    #: parent its server span under the caller's trace.
    trace: dict[str, str] | None = None


@dataclass(frozen=True)
class RpcResponse:
    request_id: str
    ok: bool
    value: Any = None
    error_type: str = ""
    error_message: str = ""
    error_data: Any = None


@dataclass
class RpcStats:
    """Counters surfaced by benchmarks (retry/latency accounting)."""

    calls: int = 0
    retries: int = 0
    timeouts: int = 0
    remote_errors: int = 0
    latencies: list[float] = field(default_factory=list)


class RpcService:
    """Server side: binds a port and dispatches methods to handlers.

    A handler is ``fn(caller, **params)``.  It may return a plain value or a
    generator — generators are run as kernel processes, so a handler can take
    simulation time (e.g. a servo-hydraulic actuator settling).
    """

    def __init__(self, network: Network, host: str, port: str, *,
                 name: str | None = None,
                 checker: Callable[[Any, str], Any] | None = None):
        self.network = network
        self.kernel = network.kernel
        self.host = host
        self.port = port
        self.name = name or f"{host}:{port}"
        self.checker = checker
        self._methods: dict[str, Callable[..., Any]] = {}
        self.telemetry = network.kernel.telemetry
        self._requests = self.telemetry.counter("net.rpc.requests",
                                                service=self.name)
        self._handle_time = self.telemetry.histogram("net.rpc.handle_time",
                                                     service=self.name)
        network.host(host).bind(port, self._on_message)

    def register(self, method: str, fn: Callable[..., Any]) -> None:
        """Expose ``fn`` as ``method``; replaces any previous registration."""
        self._methods[method] = fn

    def _on_message(self, msg: Message) -> None:
        req = msg.payload
        if not isinstance(req, RpcRequest):
            self.kernel.emit(self.name, "rpc.bad_message", msg_id=msg.msg_id)
            return
        self.kernel.emit(self.name, "rpc.request", method=req.method,
                         request_id=req.request_id, src=msg.src)
        self._requests.inc()
        tracer = self.telemetry.tracer
        span = tracer.start_span(
            "net.rpc.server",
            parent=(TraceContext.from_dict(req.trace) if req.trace else None),
            method=req.method, service=self.name)

        def reply(response: RpcResponse) -> None:
            span.end(ok=response.ok)
            self._handle_time.observe(span.duration)
            self._reply(msg, response)

        caller: Any = None
        if self.checker is not None:
            try:
                caller = self.checker(req.credential, req.method)
            except SecurityError as exc:
                reply(RpcResponse(
                    request_id=req.request_id, ok=False,
                    error_type="SecurityError", error_message=str(exc)))
                return
        else:
            caller = req.credential
        fn = self._methods.get(req.method)
        if fn is None:
            reply(RpcResponse(
                request_id=req.request_id, ok=False,
                error_type="NoSuchMethod",
                error_message=f"{req.method!r} on {self.name}"))
            return
        try:
            # Ambient trace context: synchronous handler code (and the
            # synchronous prefix of generator handlers) parents its spans
            # under this hop's server span.
            previous = tracer.activate(span.context)
            try:
                result = fn(caller, **req.params)
            finally:
                tracer.activate(previous)
        except ReproError as exc:
            # Expected protocol-level failures (policy rejections, state
            # errors, ...) travel to the caller as wire errors.
            reply(self._error_response(req, exc))
            return
        except Exception as exc:
            # A handler bug is still converted to a wire error — the caller
            # must not hang — but it is logged loudly first.
            self.kernel.emit(self.name, "rpc.handler_error",
                             method=req.method, request_id=req.request_id,
                             error=f"{type(exc).__name__}: {exc}")
            reply(self._error_response(req, exc))
            return
        if hasattr(result, "send") and hasattr(result, "throw"):
            # Handler is a process: reply when it finishes.
            proc = self.kernel.process(result, name=f"{self.name}.{req.method}")

            def finish(evt, req=req):
                if evt.ok:
                    reply(RpcResponse(
                        request_id=req.request_id, ok=True, value=evt._value))
                else:
                    evt.defuse()
                    reply(self._error_response(req, evt._value))

            proc.add_callback(finish)
        else:
            reply(RpcResponse(
                request_id=req.request_id, ok=True, value=result))

    def _error_response(self, req: RpcRequest, exc: BaseException) -> RpcResponse:
        data = getattr(exc, "__dict__", None)
        return RpcResponse(request_id=req.request_id, ok=False,
                           error_type=type(exc).__name__,
                           error_message=str(exc), error_data=data)

    def _reply(self, msg: Message, response: RpcResponse) -> None:
        self.network.send(self.host, msg.src, msg.payload.reply_port, response)


class RpcClient:
    """Client side: issues calls from a host, with timeout and retries.

    ``labels`` adds extra telemetry labels (e.g. ``tenant=...``/``run=...``)
    to this client's ``net.rpc.*`` series: two clients on the same host —
    normal when concurrent experiments multiplex one kernel — would
    otherwise increment one shared set of counters.
    """

    _port_ids = IdFactory("rpc-reply")

    def __init__(self, network: Network, host: str, *,
                 default_timeout: float = 5.0, default_retries: int = 0,
                 retry_policy: RetryPolicy | None = None,
                 labels: dict[str, str] | None = None):
        self.network = network
        self.kernel = network.kernel
        self.host = host
        self.default_timeout = default_timeout
        self.default_retries = default_retries
        #: inter-retransmission schedule; ``None`` keeps the classic
        #: back-to-back retransmit (equivalent to a zero-delay policy)
        self.retry_policy = retry_policy
        self.reply_port = RpcClient._port_ids()
        self._request_ids = IdFactory(f"{host}.req")
        self._pending: dict[str, Any] = {}
        self.stats = RpcStats()
        self.telemetry = network.kernel.telemetry
        extra = dict(labels or {})
        self._tm = {key: self.telemetry.counter(f"net.rpc.{key}", host=host,
                                                **extra)
                    for key in ("calls", "retries", "timeouts",
                                "remote_errors")}
        self._latency = self.telemetry.histogram("net.rpc.latency", host=host,
                                                 **extra)
        network.host(host).bind(self.reply_port, self._on_reply)

    def _on_reply(self, msg: Message) -> None:
        resp = msg.payload
        if not isinstance(resp, RpcResponse):
            return
        evt = self._pending.pop(resp.request_id, None)
        if evt is None:
            # Late or duplicate response after a retry already won: ignore.
            self.kernel.emit(f"rpc.client.{self.host}", "rpc.late_reply",
                             request_id=resp.request_id)
            return
        evt.succeed(resp)

    def call(self, dst: str, port: str, method: str,
             params: dict[str, Any] | None = None, *,
             credential: Any = None, timeout: float | None = None,
             retries: int | None = None,
             ctx: Any = None) -> Generator[Any, Any, Any]:
        """Invoke ``method`` on ``dst:port``; use as ``yield from client.call(...)``.

        Each retransmission reuses the same request id, so an idempotent (or
        deduplicating) server observes a single logical request.  Raises
        :class:`RpcTimeout` after the final attempt, or
        :class:`RemoteException` if the handler raised.

        ``ctx`` (a span or trace context) parents the call's client span,
        and the span's own context rides to the server in
        :attr:`RpcRequest.trace` — one trace covers both sides of the hop.
        """
        params = params or {}
        timeout = self.default_timeout if timeout is None else timeout
        retries = self.default_retries if retries is None else retries
        parenting = {} if ctx is None else {"parent": ctx}
        span = self.telemetry.tracer.start_span(
            "net.rpc.call", method=method, dst=dst, port=port, **parenting)
        req = RpcRequest(request_id=self._request_ids(), method=method,
                         params=params, reply_port=self.reply_port,
                         credential=credential,
                         trace=span.context.to_dict())
        self.stats.calls += 1
        self._tm["calls"].inc()
        started = self.kernel.now
        last_attempt = retries  # attempts are 0..retries inclusive
        for attempt in range(retries + 1):
            evt = self.kernel.event(name=f"reply({req.request_id})")
            self._pending[req.request_id] = evt
            self.network.send(self.host, dst, port, req)
            if attempt > 0:
                self.stats.retries += 1
                self._tm["retries"].inc()
                self.kernel.emit(f"rpc.client.{self.host}", "rpc.retry",
                                 request_id=req.request_id, attempt=attempt,
                                 method=method, dst=dst)
            timer = self.kernel.timeout(timeout)
            fired = yield self.kernel.any_of([evt, timer])
            if evt in fired:
                resp: RpcResponse = evt.value
                latency = self.kernel.now - started
                self.stats.latencies.append(latency)
                self._latency.observe(latency)
                if resp.ok:
                    span.end(ok=True, attempts=attempt + 1)
                    return resp.value
                self.stats.remote_errors += 1
                self._tm["remote_errors"].inc()
                span.end(ok=False, attempts=attempt + 1,
                         error=resp.error_type)
                raise RemoteException(resp.error_type, resp.error_message,
                                      resp.error_data)
            # timed out: abandon this wait and (maybe) retransmit
            self._pending.pop(req.request_id, None)
            if attempt == last_attempt:
                self.stats.timeouts += 1
                self._tm["timeouts"].inc()
                span.end(ok=False, attempts=attempt + 1, error="timeout")
                raise RpcTimeout(
                    f"{method} on {dst}:{port} after {retries + 1} attempt(s)")
            if self.retry_policy is not None:
                # Space retransmissions per the shared schedule; the
                # default (no policy) keeps back-to-back retransmits so
                # existing deployments' event timing is unchanged.
                delay = self.retry_policy.delay_for(attempt + 1,
                                                    key=req.request_id)
                if delay > 0:
                    yield self.kernel.timeout(delay)
