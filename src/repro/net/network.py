"""Hosts, links, and message delivery."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.sim import Kernel
from repro.util.errors import ConfigurationError
from repro.util.ids import IdFactory


@dataclass(frozen=True)
class Message:
    """One datagram in flight.

    Attributes:
        src/dst: host names.
        port: destination port (a string label, e.g. ``"ntcp"``).
        payload: arbitrary application object.
        msg_id: unique id (for tracing and drop filters).
        send_time: simulation time the message entered the network.
    """

    src: str
    dst: str
    port: str
    payload: Any
    msg_id: str
    send_time: float


class Host:
    """A named endpoint that binds port handlers."""

    def __init__(self, name: str, network: "Network"):
        self.name = name
        self.network = network
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self.up = True

    def bind(self, port: str, handler: Callable[[Message], None]) -> None:
        """Register ``handler(message)`` for datagrams addressed to ``port``."""
        if port in self._handlers:
            raise ConfigurationError(f"port {port!r} already bound on {self.name}")
        self._handlers[port] = handler

    def unbind(self, port: str) -> None:
        self._handlers.pop(port, None)

    def deliver(self, msg: Message) -> bool:
        """Deliver a message to the bound handler; False if no listener."""
        handler = self._handlers.get(msg.port)
        if handler is None or not self.up:
            return False
        handler(msg)
        return True


@dataclass
class Link:
    """A bidirectional connection between two hosts.

    Latency per message is ``latency + Exponential(jitter)``; each message is
    independently lost with probability ``loss``.  With ``fifo=True``
    (TCP-like, the default) delivery order per direction is preserved even
    when jitter would reorder; with ``fifo=False`` (UDP-like, used by the
    best-effort streaming service) messages may overtake each other.
    """

    a: str
    b: str
    latency: float = 0.01
    jitter: float = 0.0
    loss: float = 0.0
    fifo: bool = True
    up: bool = True
    # last scheduled delivery time per direction, for FIFO enforcement
    _last_delivery: dict[str, float] = field(default_factory=dict)

    def endpoints(self) -> frozenset[str]:
        return frozenset((self.a, self.b))

    def sample_delay(self, rng: np.random.Generator) -> float | None:
        """Propagation delay for one message, or None if the message is lost."""
        if not self.up:
            return None
        if self.loss > 0 and rng.random() < self.loss:
            return None
        delay = self.latency
        if self.jitter > 0:
            delay += rng.exponential(self.jitter)
        return delay


class Network:
    """The simulated WAN: topology + message delivery on the kernel clock.

    Drop filters allow scripted faults: any registered predicate that returns
    True for a message causes it to be silently lost (and logged), which is
    how benchmarks reproduce targeted failures such as "lose the response to
    the step-1493 execute".
    """

    def __init__(self, kernel: Kernel, seed: int = 0):
        self.kernel = kernel
        self.rng = np.random.default_rng(seed)
        self.hosts: dict[str, Host] = {}
        self._links: dict[frozenset[str], Link] = {}
        self._drop_filters: list[Callable[[Message], bool]] = []
        self._msg_ids = IdFactory("msg")
        self.stats = {"sent": 0, "delivered": 0, "dropped": 0, "no_route": 0,
                      "no_listener": 0}
        telemetry = kernel.telemetry
        self._counters = {key: telemetry.counter(f"net.network.{key}")
                          for key in self.stats}
        self._transit_time = telemetry.histogram("net.network.transit_time")
        self._payload_bytes = telemetry.histogram("net.network.payload_bytes")

    def _count(self, key: str) -> None:
        self.stats[key] += 1
        self._counters[key].inc()

    # -- topology -----------------------------------------------------------
    def add_host(self, name: str) -> Host:
        """Create a host; names must be unique."""
        if name in self.hosts:
            raise ConfigurationError(f"duplicate host {name!r}")
        host = Host(name, self)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def connect(self, a: str, b: str, *, latency: float = 0.01,
                jitter: float = 0.0, loss: float = 0.0,
                fifo: bool = True) -> Link:
        """Create a bidirectional link between existing hosts ``a`` and ``b``."""
        for name in (a, b):
            if name not in self.hosts:
                raise ConfigurationError(f"unknown host {name!r}")
        if a == b:
            raise ConfigurationError("cannot link a host to itself")
        key = frozenset((a, b))
        if key in self._links:
            raise ConfigurationError(f"hosts {a!r} and {b!r} already linked")
        link = Link(a=a, b=b, latency=latency, jitter=jitter, loss=loss, fifo=fifo)
        self._links[key] = link
        return link

    def link(self, a: str, b: str) -> Link:
        """The link between ``a`` and ``b`` (raises KeyError if absent)."""
        return self._links[frozenset((a, b))]

    def links(self) -> list[Link]:
        return list(self._links.values())

    # -- faults ---------------------------------------------------------------
    def set_link_state(self, a: str, b: str, up: bool) -> None:
        """Bring a link down (partition the pair) or back up."""
        link = self.link(a, b)
        link.up = up
        self.kernel.emit("net", "link.up" if up else "link.down", a=a, b=b)

    def add_drop_filter(self, predicate: Callable[[Message], bool]) -> None:
        """Drop every in-flight message for which ``predicate(msg)`` is True."""
        self._drop_filters.append(predicate)

    def remove_drop_filter(self, predicate: Callable[[Message], bool]) -> None:
        self._drop_filters.remove(predicate)

    # -- data plane -----------------------------------------------------------
    def send(self, src: str, dst: str, port: str, payload: Any) -> Message:
        """Inject a message; delivery (or loss) is scheduled on the kernel.

        Returns the :class:`Message` for tracing.  Loss is silent to the
        sender, exactly like a datagram network; reliability is built above
        this layer (RPC retries, NTCP at-most-once).
        """
        msg = Message(src=src, dst=dst, port=port, payload=payload,
                      msg_id=self._msg_ids(), send_time=self.kernel.now)
        self._count("sent")
        # repr length is a cheap, deterministic proxy for serialized size.
        self._payload_bytes.observe(len(repr(payload)))
        if src == dst:
            # Loopback: same-host services (e.g. the Mini-MOST single-PC
            # deployment) talk through the stack with negligible delay.
            self.kernel.timeout(0.0).add_callback(
                lambda _evt, m=msg: self._arrive(m))
            return msg
        link = self._links.get(frozenset((src, dst)))
        if link is None:
            self._count("no_route")
            self.kernel.emit("net", "msg.no_route", src=src, dst=dst, port=port)
            return msg
        if any(f(msg) for f in self._drop_filters):
            self._count("dropped")
            self.kernel.emit("net", "msg.dropped", msg_id=msg.msg_id,
                             reason="drop_filter", src=src, dst=dst, port=port)
            return msg
        delay = link.sample_delay(self.rng)
        if delay is None:
            self._count("dropped")
            reason = "link_down" if not link.up else "loss"
            self.kernel.emit("net", "msg.dropped", msg_id=msg.msg_id,
                             reason=reason, src=src, dst=dst, port=port)
            return msg
        if link.fifo:
            # TCP-like: never deliver before an earlier message on the same
            # direction; stretch the delay to preserve ordering.
            direction = f"{src}->{dst}"
            floor = link._last_delivery.get(direction, 0.0)
            arrival = max(self.kernel.now + delay, floor)
            link._last_delivery[direction] = arrival
            delay = arrival - self.kernel.now
        self.kernel.timeout(delay).add_callback(lambda _evt, m=msg: self._arrive(m))
        return msg

    def _arrive(self, msg: Message) -> None:
        host = self.hosts.get(msg.dst)
        if host is None or not host.deliver(msg):
            self._count("no_listener")
            self.kernel.emit("net", "msg.no_listener", msg_id=msg.msg_id,
                             dst=msg.dst, port=msg.port)
            return
        self._count("delivered")
        self._transit_time.observe(self.kernel.now - msg.send_time)
