"""A shared retry schedule: bounded exponential backoff, deterministic jitter.

The reproduction grew three ad-hoc retry loops — the RPC client's fixed-
interval retransmission, the coordinator fault policy's exponential
backoff, and (new with the durable queue) journal appends that must ride
out repository outages.  :class:`RetryPolicy` is the one shape under all
of them: a frozen description of the schedule (attempt budget, base
delay, growth factor, cap, jitter fraction) plus two ways to consume it —
:meth:`delay_for` for callers that keep their own loop, and :meth:`call`
for generator-shaped operations retried as a kernel process.

Jitter is *deterministic*: it is derived from a CRC of ``(key, attempt)``,
not from a random source, so the same key retried at the same attempt
always backs off by the same amount.  That keeps every retry schedule
reproducible under the simulation kernel (rule RPR001: nothing in sim
scope may consume wall clocks or nondeterministic randomness) while still
decorrelating distinct keys, which is all jitter exists to do.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterator

from repro.net.breaker import BreakerOpen
from repro.util.errors import FencingError, ReproError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries.

    ``max_attempts`` counts total attempts (first try included); the delay
    after failed attempt ``n`` (1-based) is
    ``min(base_delay * factor ** (n - 1), max_delay)``, stretched by up to
    ``jitter`` of itself using the deterministic per-key hash.  A policy
    with ``base_delay=0`` retries back-to-back (the RPC retransmission
    shape); ``jitter=0`` reproduces a classic exponential schedule (the
    coordinator fault-policy shape).
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    factor: float = 2.0
    max_delay: float = 120.0
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.factor <= 0:
            raise ValueError("factor must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    @staticmethod
    def _unit(key: str, attempt: int) -> float:
        """Deterministic uniform-ish value in [0, 1) for (key, attempt)."""
        return zlib.crc32(f"{key}:{attempt}".encode()) / 2**32

    def delay_for(self, attempt: int, *, key: str = "") -> float:
        """Backoff after failed attempt ``attempt`` (1-based), jittered."""
        if attempt < 1:
            return 0.0
        delay = min(self.base_delay * self.factor ** (attempt - 1),
                    self.max_delay)
        if self.jitter and delay:
            delay *= 1.0 + self.jitter * self._unit(key, attempt)
        return delay

    def delays(self, *, key: str = "") -> Iterator[float]:
        """The full inter-attempt delay sequence (``max_attempts - 1`` long)."""
        for attempt in range(1, self.max_attempts):
            yield self.delay_for(attempt, key=key)

    def call(self, kernel: Any, make_attempt: Callable[[], Any], *,
             key: str = "", retry_on: tuple = (ReproError,),
             breaker: Any = None) -> Generator[Any, Any, Any]:
        """Kernel process: run ``make_attempt()`` under this schedule.

        ``make_attempt`` must return a *fresh* generator per call (the
        usual ``lambda: client.call(...)`` shape).  Retries sleep on the
        simulation clock between attempts.  Exhausting the budget re-raises
        the **last** underlying error — the diagnosis the operator needs is
        what finally failed, not what failed first.  Two errors are never
        retried: :class:`~repro.net.breaker.BreakerOpen` (an open circuit
        breaker is a deliberate short-circuit — burning the retry budget
        against it defeats its purpose) and
        :class:`~repro.util.errors.FencingError` (a superseded epoch can
        never become current again by waiting).
        """
        last_error: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            if breaker is not None:
                breaker.check()
            try:
                result = yield from make_attempt()
            except (BreakerOpen, FencingError):
                raise
            except retry_on as exc:
                last_error = exc
                if attempt == self.max_attempts:
                    raise
                delay = self.delay_for(attempt, key=key)
                kernel.emit("net.retry", "retry.backoff", key=key,
                            attempt=attempt, delay=delay,
                            error=f"{type(exc).__name__}: {exc}")
                if delay > 0:
                    yield kernel.timeout(delay)
            else:
                return result
        raise last_error  # pragma: no cover - loop always returns or raises
