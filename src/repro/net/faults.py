"""Scripted fault injection.

The MOST public run saw "several transient network failures throughout the
day" that NTCP's retry machinery recovered from, and one final failure that
terminated the experiment at step 1493.  :class:`FaultInjector` reproduces
both: timed link outages (transient or permanent) and targeted message
drops — plus the wider chaos vocabulary the campaign harness
(:mod:`repro.chaos`) composes: message duplication, reordering, latency
jitter bursts, payload corruption, and host crash/restart.

All primitives are deterministic given the schedule that arms them: the
duplication/reordering/corruption paths clone or mutate the intercepted
:class:`~repro.net.network.Message` and schedule its arrival directly, so
no extra draws are taken from the network's RNG stream.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.net.network import Message, Network


@dataclass(frozen=True)
class OutageRecord:
    """Book-keeping for one injected outage (used by benchmark reports)."""

    a: str
    b: str
    start: float
    duration: float


@dataclass(frozen=True)
class ChaosRecord:
    """Book-keeping for one message-level chaos intervention."""

    kind: str       # "duplicate" | "reorder" | "corrupt" | "crash"
    target: str     # host or port the intervention hit
    time: float
    detail: str = ""


class FaultInjector:
    """Schedules outages and message-level drops on a :class:`Network`."""

    def __init__(self, network: Network):
        self.network = network
        self.kernel = network.kernel
        self.outages: list[OutageRecord] = []
        self.chaos: list[ChaosRecord] = []
        self._active: dict[tuple[str, str], int] = {}
        self._clone_ids = 0

    def _link_key(self, a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def schedule_outage(self, a: str, b: str, start: float,
                        duration: float = float("inf")) -> OutageRecord:
        """Take the a—b link down at ``start``; restore after ``duration``.

        An infinite duration models the paper's final, unrecovered failure.
        Overlapping outages on the same link are reference-counted: the
        link comes back up only when the *last* active outage ends, not
        when the first-expiring one does.
        """
        record = OutageRecord(a=a, b=b, start=start, duration=duration)
        self.outages.append(record)
        key = self._link_key(a, b)

        def run(kernel):
            yield kernel.timeout(max(0.0, start - kernel.now))
            self._active[key] = self._active.get(key, 0) + 1
            if self._active[key] == 1:
                self.network.set_link_state(a, b, up=False)
            if duration != float("inf"):
                yield kernel.timeout(duration)
                self._active[key] -= 1
                if self._active[key] == 0:
                    self.network.set_link_state(a, b, up=True)

        self.kernel.process(run(self.kernel), name=f"outage({a},{b})")
        return record

    def drop_matching(self, predicate: Callable[[Message], bool],
                      count: int | None = None) -> Callable[[Message], bool]:
        """Drop messages matching ``predicate`` (at most ``count`` of them).

        Returns the installed filter so callers can remove it early via
        :meth:`Network.remove_drop_filter`.
        """
        remaining = [count]

        def _filter(msg: Message) -> bool:
            if not predicate(msg):
                return False
            if remaining[0] is None:
                return True
            if remaining[0] > 0:
                remaining[0] -= 1
                return True
            return False

        self.network.add_drop_filter(_filter)
        return _filter

    def drop_next_on_port(self, port: str, count: int = 1) -> Callable[[Message], bool]:
        """Drop the next ``count`` messages addressed to ``port`` (any host)."""
        return self.drop_matching(lambda m: m.port == port, count=count)

    def transient_loss(self, a: str, b: str, loss: float,
                       start: float, duration: float) -> None:
        """Raise the a—b link's loss rate to ``loss`` during a window."""

        def run(kernel):
            link = self.network.link(a, b)
            yield kernel.timeout(max(0.0, start - kernel.now))
            previous = link.loss
            link.loss = loss
            kernel.emit("net", "loss.raised", a=a, b=b, loss=loss)
            yield kernel.timeout(duration)
            link.loss = previous
            kernel.emit("net", "loss.restored", a=a, b=b, loss=previous)

        self.kernel.process(run(self.kernel), name=f"lossburst({a},{b})")

    def jitter_burst(self, a: str, b: str, jitter: float,
                     start: float, duration: float) -> None:
        """Raise the a—b link's latency jitter during a window."""

        def run(kernel):
            link = self.network.link(a, b)
            yield kernel.timeout(max(0.0, start - kernel.now))
            previous = link.jitter
            link.jitter = jitter
            kernel.emit("net", "jitter.raised", a=a, b=b, jitter=jitter)
            yield kernel.timeout(duration)
            link.jitter = previous
            kernel.emit("net", "jitter.restored", a=a, b=b, jitter=previous)

        self.kernel.process(run(self.kernel), name=f"jitterburst({a},{b})")

    # -- message-level chaos ---------------------------------------------------
    def _clone(self, msg: Message, tag: str, **changes) -> Message:
        self._clone_ids += 1
        return dataclasses.replace(
            msg, msg_id=f"{msg.msg_id}+{tag}{self._clone_ids}", **changes)

    def duplicate_matching(self, predicate: Callable[[Message], bool],
                           count: int | None = 1,
                           delay: float = 0.05) -> Callable[[Message], bool]:
        """Deliver an extra copy of matching messages ``delay`` s later.

        The original is untouched (the installed filter never drops);
        the clone is scheduled straight into delivery, so at-least-once
        RPC sees a duplicated request and NTCP's at-most-once layer must
        absorb it.  Returns the filter for early removal.
        """
        remaining = [count]

        def _filter(msg: Message) -> bool:
            if predicate(msg) and (remaining[0] is None or remaining[0] > 0):
                if remaining[0] is not None:
                    remaining[0] -= 1
                clone = self._clone(msg, "dup")
                self.chaos.append(ChaosRecord(
                    kind="duplicate", target=msg.dst, time=self.kernel.now,
                    detail=f"port={msg.port}"))
                self.kernel.emit("net", "chaos.duplicate", dst=msg.dst,
                                 port=msg.port, msg_id=msg.msg_id)
                self.kernel.timeout(delay).add_callback(
                    lambda _evt, m=clone: self.network._arrive(m))
            return False

        self.network.add_drop_filter(_filter)
        return _filter

    def reorder_matching(self, predicate: Callable[[Message], bool],
                         count: int = 2,
                         hold: float = 0.2) -> Callable[[Message], bool]:
        """Capture the next ``count`` matching messages and release them in
        reverse order.

        Each captured message is withheld (dropped at the send side) and
        re-injected ``hold`` seconds after its capture, spaced so the
        last-captured arrives first — a deterministic reordering that
        bypasses the links' FIFO guarantee.
        """
        remaining = [count]

        def _filter(msg: Message) -> bool:
            if not predicate(msg) or remaining[0] <= 0:
                return False
            remaining[0] -= 1
            slot = remaining[0]  # later captures get earlier release slots
            clone = self._clone(msg, "reord")
            self.chaos.append(ChaosRecord(
                kind="reorder", target=msg.dst, time=self.kernel.now,
                detail=f"port={msg.port} slot={slot}"))
            self.kernel.emit("net", "chaos.reorder", dst=msg.dst,
                             port=msg.port, msg_id=msg.msg_id)
            self.kernel.timeout(hold + 0.001 * slot).add_callback(
                lambda _evt, m=clone: self.network._arrive(m))
            return True

        self.network.add_drop_filter(_filter)
        return _filter

    def corrupt_matching(self, predicate: Callable[[Message], bool],
                         count: int | None = 1,
                         delay: float = 0.05) -> Callable[[Message], bool]:
        """Replace matching messages' payloads with junk bytes.

        The original is dropped and a corrupted copy is delivered in its
        place.  RPC endpoints discard unparseable payloads, so the caller
        observes a lost message and retransmits — the paper's "garbled on
        the wire" case, distinct from a clean drop because the receiver
        still spends a delivery on it.
        """
        remaining = [count]

        def _filter(msg: Message) -> bool:
            if not predicate(msg) or not (remaining[0] is None
                                          or remaining[0] > 0):
                return False
            if remaining[0] is not None:
                remaining[0] -= 1
            garbled = self._clone(msg, "corrupt",
                                  payload=f"\x00corrupt:{msg.msg_id}")
            self.chaos.append(ChaosRecord(
                kind="corrupt", target=msg.dst, time=self.kernel.now,
                detail=f"port={msg.port}"))
            self.kernel.emit("net", "chaos.corrupt", dst=msg.dst,
                             port=msg.port, msg_id=msg.msg_id)
            self.kernel.timeout(delay).add_callback(
                lambda _evt, m=garbled: self.network._arrive(m))
            return True

        self.network.add_drop_filter(_filter)
        return _filter

    def crash_host(self, host: str, start: float,
                   duration: float = float("inf")) -> None:
        """Take a host down at ``start``; restart it after ``duration``.

        A down host silently discards deliveries (its processes keep
        running — this models the network interface, not the OS), which
        is how a site crash looks from the coordinator: every request
        times out until the restart.
        """

        def run(kernel):
            yield kernel.timeout(max(0.0, start - kernel.now))
            self.network.host(host).up = False
            self.chaos.append(ChaosRecord(
                kind="crash", target=host, time=kernel.now,
                detail=f"duration={duration:g}"))
            kernel.emit("net", "chaos.crash", host=host, duration=duration)
            if duration != float("inf"):
                yield kernel.timeout(duration)
                self.network.host(host).up = True
                kernel.emit("net", "chaos.restart", host=host)

        self.kernel.process(run(self.kernel), name=f"crash({host})")
