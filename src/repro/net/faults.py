"""Scripted fault injection.

The MOST public run saw "several transient network failures throughout the
day" that NTCP's retry machinery recovered from, and one final failure that
terminated the experiment at step 1493.  :class:`FaultInjector` reproduces
both: timed link outages (transient or permanent) and targeted message drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.network import Message, Network


@dataclass(frozen=True)
class OutageRecord:
    """Book-keeping for one injected outage (used by benchmark reports)."""

    a: str
    b: str
    start: float
    duration: float


class FaultInjector:
    """Schedules outages and message-level drops on a :class:`Network`."""

    def __init__(self, network: Network):
        self.network = network
        self.kernel = network.kernel
        self.outages: list[OutageRecord] = []
        self._active: dict[tuple[str, str], int] = {}

    def _link_key(self, a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def schedule_outage(self, a: str, b: str, start: float,
                        duration: float = float("inf")) -> OutageRecord:
        """Take the a—b link down at ``start``; restore after ``duration``.

        An infinite duration models the paper's final, unrecovered failure.
        Overlapping outages on the same link are reference-counted: the
        link comes back up only when the *last* active outage ends, not
        when the first-expiring one does.
        """
        record = OutageRecord(a=a, b=b, start=start, duration=duration)
        self.outages.append(record)
        key = self._link_key(a, b)

        def run(kernel):
            yield kernel.timeout(max(0.0, start - kernel.now))
            self._active[key] = self._active.get(key, 0) + 1
            if self._active[key] == 1:
                self.network.set_link_state(a, b, up=False)
            if duration != float("inf"):
                yield kernel.timeout(duration)
                self._active[key] -= 1
                if self._active[key] == 0:
                    self.network.set_link_state(a, b, up=True)

        self.kernel.process(run(self.kernel), name=f"outage({a},{b})")
        return record

    def drop_matching(self, predicate: Callable[[Message], bool],
                      count: int | None = None) -> Callable[[Message], bool]:
        """Drop messages matching ``predicate`` (at most ``count`` of them).

        Returns the installed filter so callers can remove it early via
        :meth:`Network.remove_drop_filter`.
        """
        remaining = [count]

        def _filter(msg: Message) -> bool:
            if not predicate(msg):
                return False
            if remaining[0] is None:
                return True
            if remaining[0] > 0:
                remaining[0] -= 1
                return True
            return False

        self.network.add_drop_filter(_filter)
        return _filter

    def drop_next_on_port(self, port: str, count: int = 1) -> Callable[[Message], bool]:
        """Drop the next ``count`` messages addressed to ``port`` (any host)."""
        return self.drop_matching(lambda m: m.port == port, count=count)

    def transient_loss(self, a: str, b: str, loss: float,
                       start: float, duration: float) -> None:
        """Raise the a—b link's loss rate to ``loss`` during a window."""

        def run(kernel):
            link = self.network.link(a, b)
            yield kernel.timeout(max(0.0, start - kernel.now))
            previous = link.loss
            link.loss = loss
            kernel.emit("net", "loss.raised", a=a, b=b, loss=loss)
            yield kernel.timeout(duration)
            link.loss = previous
            kernel.emit("net", "loss.restored", a=a, b=b, loss=previous)

        self.kernel.process(run(self.kernel), name=f"lossburst({a},{b})")
