"""Per-site circuit breakers over the simulated clock.

MOST's retry story (§3.4) masks *transient* weather, but a site that has
stopped answering turns every step attempt into a full timeout ladder —
tens of simulated seconds burned per attempt against a peer that is
plainly down.  A :class:`CircuitBreaker` sits between the coordinator and
one site's NTCP client and converts that ladder into the classic three
states:

* **closed** — traffic flows; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures the breaker
  trips: calls fail immediately with :class:`BreakerOpen` (no network
  traffic) until ``open_interval`` simulated seconds have passed;
* **half-open** — the next ``half_open_probes`` calls are let through as
  probes.  Any probe failure re-opens the breaker; ``half_open_probes``
  consecutive successes close it again.

The breaker never retries on its own and never touches the network — it
only gates whether the caller's attempt is worth sending.  All timing is
kernel time, so breaker behaviour replays bit-exactly with the run.

State, trips, and probes are published as ``net.breaker.*`` telemetry
(labelled by site), and the coordinator mirrors breaker state into its
health SDE so the operations console can raise a ``breaker_open`` alert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.util.errors import ConfigurationError, ReproError

#: breaker states, in gauge-encoding order (0, 1, 2)
BREAKER_STATES = ("closed", "open", "half_open")

CLOSED, OPEN, HALF_OPEN = BREAKER_STATES


class BreakerOpen(ReproError):
    """An attempt was refused because the site's breaker is open.

    Carries ``site`` so the coordinator's fault policy (which keys its
    decisions on the failing site) sees the same shape as a network
    error, and ``retry_after`` — the simulated seconds until the breaker
    would next admit a half-open probe.
    """

    def __init__(self, site: str, retry_after: float):
        super().__init__(
            f"breaker open for site {site}; next probe in {retry_after:g} s")
        self.site = site
        self.retry_after = retry_after


@dataclass(frozen=True)
class BreakerConfig:
    """Tunable thresholds for one :class:`CircuitBreaker`.

    ``failure_threshold`` consecutive failures trip the breaker;
    ``open_interval`` simulated seconds must pass before half-open probes
    are admitted; ``half_open_probes`` consecutive probe successes close
    it again.
    """

    failure_threshold: int = 3
    open_interval: float = 60.0
    half_open_probes: int = 1

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.open_interval <= 0:
            raise ConfigurationError("open_interval must be positive")
        if self.half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be >= 1")


class CircuitBreaker:
    """One site's breaker; the coordinator holds one per
    :class:`~repro.coordinator.mspsds.SiteBinding`.

    Protocol: call :meth:`allow` before an attempt (raising
    :class:`BreakerOpen` via :meth:`check` is the usual form), then
    exactly one of :meth:`record_success` / :meth:`record_failure` with
    the outcome.  ``on_state_change(breaker, old, new)`` fires on every
    transition — the failover layer listens for ``open``.
    """

    def __init__(self, kernel, site: str,
                 config: BreakerConfig | None = None, *,
                 on_state_change: Callable[["CircuitBreaker", str, str],
                                           None] | None = None):
        self.kernel = kernel
        self.site = site
        self.config = config or BreakerConfig()
        self.on_state_change = on_state_change
        self.state = CLOSED
        self.failures = 0           # consecutive failures while closed
        self.probe_successes = 0    # consecutive successes while half-open
        self.opened_at: float | None = None   # latest trip (re-arms probes)
        self.open_since: float | None = None  # first trip of this episode
        self.trips = 0
        telemetry = kernel.telemetry
        self._tm_state = telemetry.gauge("net.breaker.state", site=site)
        self._tm_trips = telemetry.counter("net.breaker.trips", site=site)
        self._tm_probes = telemetry.counter("net.breaker.probes", site=site)
        self._tm_state.set(BREAKER_STATES.index(CLOSED))

    # -- state machine -------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        old = self.state
        if new_state == old:
            return
        self.state = new_state
        self._tm_state.set(BREAKER_STATES.index(new_state))
        self.kernel.emit(f"breaker.{self.site}", "breaker." + new_state,
                         site=self.site, previous=old)
        if self.on_state_change is not None:
            self.on_state_change(self, old, new_state)

    def allow(self) -> bool:
        """May an attempt be sent now?  (May transition open → half-open.)"""
        if self.state == CLOSED:
            return True
        assert self.opened_at is not None
        if self.state == OPEN:
            if self.kernel.now - self.opened_at < self.config.open_interval:
                return False
            self.probe_successes = 0
            self._transition(HALF_OPEN)
        # half-open: every admitted attempt is a probe
        self._tm_probes.inc()
        return True

    def check(self) -> None:
        """Raise :class:`BreakerOpen` unless :meth:`allow` admits the call."""
        if not self.allow():
            assert self.opened_at is not None
            remaining = (self.opened_at + self.config.open_interval
                         - self.kernel.now)
            raise BreakerOpen(self.site, max(0.0, remaining))

    def record_success(self) -> None:
        """An admitted attempt succeeded."""
        if self.state == HALF_OPEN:
            self.probe_successes += 1
            if self.probe_successes >= self.config.half_open_probes:
                self._reset()
            return
        self.failures = 0

    def record_failure(self) -> None:
        """An admitted attempt failed."""
        if self.state == HALF_OPEN:
            # A failed probe re-opens immediately and restarts the interval.
            self.opened_at = self.kernel.now
            self._transition(OPEN)
            return
        self.failures += 1
        if self.state == CLOSED and \
                self.failures >= self.config.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.trips += 1
        self._tm_trips.inc()
        self.opened_at = self.kernel.now
        if self.open_since is None:
            self.open_since = self.kernel.now
        self._transition(OPEN)

    def _reset(self) -> None:
        self.failures = 0
        self.probe_successes = 0
        self.opened_at = None
        self.open_since = None
        self._transition(CLOSED)

    # -- inspection --------------------------------------------------------
    @property
    def open_duration(self) -> float:
        """Simulated seconds since the first trip of the current episode
        (0.0 while closed) — what a recovery budget is measured against."""
        if self.open_since is None:
            return 0.0
        return self.kernel.now - self.open_since

    def snapshot(self) -> dict[str, Any]:
        """JSON-friendly state for health SDEs and reports."""
        return {"site": self.site, "state": self.state,
                "failures": self.failures, "trips": self.trips,
                "open_duration": self.open_duration}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CircuitBreaker {self.site} {self.state}>"
