"""Simulated wide-area network.

This package stands in for the real Internet links between UIUC, CU and NCSA
in the MOST experiment.  It provides named :class:`Host`\\ s joined by
:class:`Link`\\ s with configurable latency, jitter and loss; partitions and
scheduled outages for fault injection; and a request/response :mod:`RPC
<repro.net.rpc>` layer that every grid service in the reproduction speaks.

The failure modes modelled here — transient packet loss, link outages,
partitions — are exactly the ones the paper's NTCP fault-tolerance features
(retry with at-most-once semantics) were designed to mask, and the ones that
terminated the public MOST run at step 1493.
"""

from repro.net.network import Host, Link, Message, Network
from repro.net.breaker import (
    BREAKER_STATES,
    BreakerConfig,
    BreakerOpen,
    CircuitBreaker,
)
from repro.net.faults import ChaosRecord, FaultInjector
from repro.net.retry import RetryPolicy
from repro.net.rpc import (
    RemoteException,
    RpcClient,
    RpcRequest,
    RpcResponse,
    RpcService,
    RpcTimeout,
)

__all__ = [
    "Network",
    "Host",
    "Link",
    "Message",
    "FaultInjector",
    "ChaosRecord",
    "CircuitBreaker",
    "BreakerConfig",
    "BreakerOpen",
    "BREAKER_STATES",
    "RetryPolicy",
    "RpcClient",
    "RpcService",
    "RpcRequest",
    "RpcResponse",
    "RpcTimeout",
    "RemoteException",
]
