"""The event loop: a deterministic priority-queue scheduler."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.telemetry import TelemetryHub
from repro.util.log import EventLog


class Kernel:
    """Deterministic discrete-event scheduler.

    Events scheduled for the same time fire in insertion order (a strictly
    increasing sequence number breaks ties), so runs are exactly repeatable.
    The kernel also owns the run-wide :class:`~repro.util.log.EventLog` that
    all subsystems emit structured records to, and the run-wide
    :class:`~repro.telemetry.TelemetryHub` — wired to the simulation clock —
    that every layer reaches as ``kernel.telemetry``.
    """

    def __init__(self, log: EventLog | None = None,
                 telemetry: TelemetryHub | None = None):
        self.now: float = 0.0
        self.log = log if log is not None else EventLog()
        self.telemetry = (telemetry if telemetry is not None
                          else TelemetryHub(clock=lambda: self.now))
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._events_fired = self.telemetry.counter("sim.kernel.events")
        self._queue_depth = self.telemetry.gauge("sim.kernel.queue_depth")

    # -- factories ---------------------------------------------------------
    def event(self, name: str | None = None) -> Event:
        """A pending event to be succeeded/failed manually."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str | None = None) -> Process:
        """Start a generator as a process; returns its completion event."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` succeeds."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, list(events))

    def emit(self, subsystem: str, kind: str, **detail: Any):
        """Convenience: log a structured record stamped with ``self.now``."""
        return self.log.emit(self.now, subsystem, kind, **detail)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing ``now`` to its time)."""
        time, _, event = heapq.heappop(self._queue)
        self.now = time
        self._events_fired.inc()
        self._queue_depth.set(len(self._queue))
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks:
            fn(event)
        if not event.ok and not event._defused:
            # A failure nobody observed (or defused): surface it rather than
            # losing it.  Processes and conditions defuse failures they relay.
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or event fires.

        Returns the value of ``until`` when it is an event, else ``None``.
        """
        if isinstance(until, Event):
            stop = until
            while self._queue and not stop.processed:
                self.step()
            if not stop.triggered:
                raise RuntimeError(
                    f"run() ran out of events before {stop!r} triggered")
            if not stop.ok:
                stop.defuse()
                raise stop._value
            return stop._value
        horizon = float("inf") if until is None else float(until)
        if horizon < self.now:
            raise ValueError(f"until={horizon} is in the past (now={self.now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        if horizon != float("inf"):
            self.now = horizon
        return None
