"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence with a value or an exception.
Processes wait on events by yielding them; arbitrary code can wait by
registering callbacks.  :class:`Timeout` fires after a delay; :class:`AnyOf`
and :class:`AllOf` compose events.
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

PENDING = object()
"""Sentinel: the event has no value yet."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    Attributes:
        cause: the object passed to ``interrupt()``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Life cycle: *pending* → *triggered* (scheduled on the kernel queue) →
    *processed* (callbacks ran).  An event succeeds with a value or fails
    with an exception; failed events propagate their exception into every
    waiting process.  A failed event that nobody waits on is re-raised by
    the kernel so failures are never silently lost (call :meth:`defuse` to
    opt out for fire-and-forget operations).
    """

    def __init__(self, kernel: "Kernel", name: str | None = None):
        self.kernel = kernel
        self.name = name
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if still pending."""
        if self._value is PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = value
        self._ok = True
        self.kernel._enqueue(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.kernel._enqueue(self, delay=0.0)
        return self

    def defuse(self) -> "Event":
        """Mark a failure as intentionally unobserved (no re-raise)."""
        self._defused = True
        return self

    # -- waiting ---------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or self.__class__.__name__
        state = ("processed" if self.processed
                 else "triggered" if self.triggered else "pending")
        return f"<{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None,
                 name: str | None = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(kernel, name=name or f"timeout({delay})")
        self.delay = delay
        self._value = value
        self._ok = True
        kernel._enqueue(self, delay=delay)


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    def __init__(self, kernel: "Kernel", events: list[Event], name: str):
        super().__init__(kernel, name=name)
        self.events = list(events)
        self._pending = 0
        for evt in self.events:
            if not isinstance(evt, Event):
                raise TypeError(f"not an Event: {evt!r}")
        for evt in self.events:
            self._pending += 1
            evt.add_callback(self._on_child)
        if not self.events and not self.triggered:
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        # Collect *processed* children: a Timeout pre-sets its value at
        # creation (so ``triggered`` is immediately true), but it has not
        # occurred until the kernel processes it.
        return {e: e._value for e in self.events if e.processed and e.ok}

    def _on_child(self, evt: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds as soon as any child event succeeds (fails on first failure)."""

    def __init__(self, kernel: "Kernel", events: list[Event]):
        super().__init__(kernel, events, name="AnyOf")

    def _on_child(self, evt: Event) -> None:
        if self.triggered:
            if not evt.ok:
                evt.defuse()
            return
        if evt.ok:
            self.succeed(self._collect())
        else:
            evt.defuse()
            self.fail(evt._value)


class AllOf(_Condition):
    """Succeeds when every child event has succeeded (fails on first failure)."""

    def __init__(self, kernel: "Kernel", events: list[Event]):
        super().__init__(kernel, events, name="AllOf")

    def _on_child(self, evt: Event) -> None:
        if self.triggered:
            if not evt.ok:
                evt.defuse()
            return
        if not evt.ok:
            evt.defuse()
            self.fail(evt._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())
