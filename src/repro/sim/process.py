"""Generator-driven simulation processes."""

from __future__ import annotations

from typing import Any, Generator, TYPE_CHECKING

from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class Process(Event):
    """A running generator; also an Event that fires when the generator ends.

    The process's value is the generator's return value; if the generator
    raises, the process fails with that exception (propagating to waiters
    or, with none, aborting the run).
    """

    def __init__(self, kernel: "Kernel", generator: Generator[Event, Any, Any],
                 name: str | None = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(kernel, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Bootstrap: resume the generator at the current simulation time.
        boot = Event(kernel, name=f"{self.name}.boot")
        boot.add_callback(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its callback is
        removed); the process decides in its ``except Interrupt`` handler
        whether to re-wait, retry, or bail out.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        poke = Event(self.kernel, name=f"{self.name}.interrupt")
        poke.add_callback(lambda evt: self._step(throw=Interrupt(cause)))
        poke.succeed()

    # -- internal ---------------------------------------------------------
    def _resume(self, evt: Event) -> None:
        self._waiting_on = None
        if evt.ok:
            self._step(send=evt._value)
        else:
            evt.defuse()
            self._step(throw=evt._value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        if self.triggered:  # interrupted after termination race; nothing to do
            return  # pragma: no cover - defensive
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # The trampoline's job is to capture the process's failure and
            # route it into the event graph; fail() re-delivers it to
            # whoever waits on us.
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(TypeError(
                f"process {self.name!r} yielded a non-Event: {target!r}"))
            return
        if target.kernel is not self.kernel:
            self.fail(ValueError("yielded event belongs to a different kernel"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)
