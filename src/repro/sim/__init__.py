"""Discrete-event simulation kernel.

All NEESgrid components in this reproduction — network links, NTCP servers,
control plugins, DAQ sampling loops, the simulation coordinator — execute as
cooperating processes on a single deterministic event kernel, so a 1,500-step
five-hour experiment replays in milliseconds of wall time while preserving
the paper's timing structure (round trips, settle times, poll intervals).

The programming model is generator-based: a *process* is a Python generator
that ``yield``\\ s :class:`~repro.sim.events.Event` objects (most commonly
timeouts or other processes) and is resumed when they fire.

>>> from repro.sim import Kernel
>>> k = Kernel()
>>> def hello(kernel, out):
...     yield kernel.timeout(5.0)
...     out.append(kernel.now)
>>> out = []
>>> _ = k.process(hello(k, out))
>>> k.run()
>>> out
[5.0]
"""

from repro.sim.events import Event, Timeout, AnyOf, AllOf, Interrupt
from repro.sim.process import Process
from repro.sim.kernel import Kernel

__all__ = ["Kernel", "Event", "Timeout", "AnyOf", "AllOf", "Interrupt", "Process"]
