"""Stream telemetry deltas over NSDS, next to the sensor data.

The paper's operators read site metrics over the same best-effort
streaming fabric that carried DAQ channels; :class:`TelemetryStreamer`
reproduces that: every ``interval`` simulated seconds it snapshots the
kernel's :class:`~repro.telemetry.metrics.MetricRegistry`, packages the
delta as a validated ``repro.monitor/v1`` ``metrics`` payload, and
ingests it into an :class:`~repro.nsds.service.NSDSService` channel.
Downstream, the payload inherits NSDS semantics wholesale — sequence
numbers, ring-buffer history, drops, gaps, reordering — which is exactly
what the monitor's stream-health detector then measures.

Counters are shipped as (delta, cumulative total) pairs so a consumer
that missed flushes can resynchronise from the totals; histograms ship
cumulative summaries including the operator-facing p95.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.monitor.schema import SCHEMA_ID, validate_metrics_sample
from repro.sim.kernel import Kernel
from repro.telemetry.metrics import Counter, Gauge, Histogram


class TelemetryStreamer:
    """Periodically publish metric snapshots as NSDS samples."""

    #: the NSDS channel all metric samples ride on
    CHANNEL = "monitor-metrics"

    def __init__(self, kernel: Kernel, nsds, *, source: str,
                 interval: float = 30.0,
                 prefixes: Iterable[str] | None = None):
        self.kernel = kernel
        self.nsds = nsds
        self.source = source
        self.interval = interval
        self.prefixes = tuple(prefixes) if prefixes is not None else None
        self.running = False
        self.seq = 0
        self._last_counts: dict[tuple[str, tuple], float] = {}
        self._tm_flushes = kernel.telemetry.counter(
            "monitor.stream.flushes", source=source)

    def _wanted(self, name: str) -> bool:
        if self.prefixes is None:
            return True
        return name.startswith(self.prefixes)

    def snapshot_records(self) -> list[dict[str, Any]]:
        """Describe every matching instrument; counters as deltas."""
        records: list[dict[str, Any]] = []
        for metric in self.kernel.telemetry.registry:
            if not self._wanted(metric.name):
                continue
            key = (metric.name, tuple(sorted(metric.labels.items())))
            if isinstance(metric, Counter):
                total = metric.value
                delta = total - self._last_counts.get(key, 0)
                self._last_counts[key] = total
                records.append({"name": metric.name, "type": "counter",
                                "labels": dict(metric.labels),
                                "value": delta, "total": total})
            elif isinstance(metric, Gauge):
                records.append({"name": metric.name, "type": "gauge",
                                "labels": dict(metric.labels),
                                "value": metric.value})
            elif isinstance(metric, Histogram):
                summary = {"count": metric.count, "sum": metric.sum,
                           "mean": metric.mean,
                           "min": metric.percentile(0.0),
                           "max": metric.percentile(100.0),
                           "p50": metric.percentile(50.0),
                           "p95": metric.percentile(95.0),
                           "p99": metric.percentile(99.0)}
                records.append({"name": metric.name, "type": "histogram",
                                "labels": dict(metric.labels),
                                "summary": summary})
        records.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return records

    def flush(self) -> dict[str, Any]:
        """Build, validate, and ingest one metrics sample; returns it."""
        self.seq += 1
        payload = {"schema": SCHEMA_ID, "kind": "metrics",
                   "source": self.source, "time": self.kernel.now,
                   "seq": self.seq, "metrics": self.snapshot_records()}
        validate_metrics_sample(payload)
        self.nsds.ingest(self.kernel.now, {self.CHANNEL: payload})
        self._tm_flushes.inc()
        return payload

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.kernel.process(self._run(), name=f"streamer.{self.source}")

    def stop(self, *, final_flush: bool = True) -> None:
        """Stop the loop; by default push one last snapshot first."""
        was_running = self.running
        self.running = False
        if final_flush and was_running:
            self.flush()

    def _run(self):
        # First flush one interval in, not immediately: a flush issued
        # before the console's subscribe RPC lands would burn a sequence
        # number no subscriber can receive — a phantom gap on every run.
        while self.running:
            yield self.kernel.timeout(self.interval)
            if self.running:
                self.flush()
