"""Schema validation for ``repro.monitor/v1`` payloads.

Everything the operations console moves over the wire — health SDEs,
streamed metric snapshots, alerts — is a plain dict carrying
``schema: "repro.monitor/v1"`` and a ``kind`` discriminator, validated at
both the publishing and the consuming end.  Hand-rolled in the style of
:mod:`repro.telemetry.schema`: stdlib only, JSON-path error messages.

Payload kinds:

* ``health`` — one service's liveness snapshot, published as the
  ``health`` SDE (status, open-transaction backlog, last committed step);
* ``metrics`` — one :class:`~repro.monitor.streamer.TelemetryStreamer`
  flush: counter deltas + cumulative totals, gauge values, histogram
  summaries (with the operator-facing p95), sequenced per source;
* ``alert`` — one typed anomaly record (stall / slow_site /
  stream_health / breaker_open / slo_burn) raised by the monitor's
  deterministic detectors or by the observatory's SLO burn-rate rules.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.schema import validate_metric_name
from repro.util.errors import ReproError

SCHEMA_ID = "repro.monitor/v1"

HEALTH_STATUSES = ("starting", "running", "degraded", "stopped")
ALERT_KINDS = ("stall", "slow_site", "stream_health", "breaker_open",
               "slo_burn", "queue_redelivery")
ALERT_SEVERITIES = ("info", "warning", "critical")

_METRIC_TYPES = ("counter", "gauge", "histogram")
# Streamed summaries carry p95 (the slow-site detector's budget input)
# instead of the exporter's p90.
_SUMMARY_KEYS = ("count", "sum", "mean", "min", "max", "p50", "p95", "p99")


class MonitorSchemaError(ReproError):
    """A monitor payload does not match the ``repro.monitor/v1`` shape."""


def _fail(path: str, message: str) -> None:
    raise MonitorSchemaError(f"{path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        _fail(path, message)


def _check_number(value: Any, path: str) -> None:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             path, f"expected a number, got {type(value).__name__}")


def _check_int(value: Any, path: str, *, minimum: int | None = None) -> None:
    _require(isinstance(value, int) and not isinstance(value, bool),
             path, f"expected an integer, got {type(value).__name__}")
    if minimum is not None:
        _require(value >= minimum, path, f"must be >= {minimum}, got {value}")


def _check_envelope(payload: Any, kind: str) -> None:
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == SCHEMA_ID, "$.schema",
             f"expected {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    _require(payload.get("kind") == kind, "$.kind",
             f"expected {kind!r}, got {payload.get('kind')!r}")
    source = payload.get("source")
    _require(isinstance(source, str) and bool(source), "$.source",
             "source must be a non-empty string")
    _check_number(payload.get("time"), "$.time")


def validate_health_payload(payload: Any) -> None:
    """A ``health`` SDE value.

    Shape::

        {"schema": "repro.monitor/v1", "kind": "health",
         "source": "ntcp-uiuc", "time": 42.0, "status": "running",
         "backlog": 0, "step"?: 17, "plugin"?: "matlab", "detail": {...}}
    """
    _check_envelope(payload, "health")
    status = payload.get("status")
    _require(status in HEALTH_STATUSES, "$.status",
             f"status must be one of {HEALTH_STATUSES}, got {status!r}")
    _check_int(payload.get("backlog"), "$.backlog", minimum=0)
    if "step" in payload:
        _check_int(payload["step"], "$.step", minimum=-1)
    if "plugin" in payload:
        _require(isinstance(payload["plugin"], str), "$.plugin",
                 "plugin must be a string")
    _require(isinstance(payload.get("detail", {}), dict), "$.detail",
             "detail must be an object")


def _check_metric_record(record: Any, path: str) -> None:
    _require(isinstance(record, dict), path, "metric record must be an object")
    validate_metric_name(record.get("name"), f"{path}.name")
    mtype = record.get("type")
    _require(mtype in _METRIC_TYPES, f"{path}.type",
             f"metric type must be one of {_METRIC_TYPES}, got {mtype!r}")
    labels = record.get("labels", {})
    _require(isinstance(labels, dict), f"{path}.labels",
             "labels must be an object")
    for key, value in labels.items():
        _require(isinstance(key, str) and isinstance(value, str),
                 f"{path}.labels.{key}", "labels must map strings to strings")
    if mtype == "histogram":
        summary = record.get("summary")
        _require(isinstance(summary, dict), f"{path}.summary",
                 "histogram requires a summary object")
        for key in _SUMMARY_KEYS:
            _require(key in summary, f"{path}.summary.{key}", "missing")
            _check_number(summary[key], f"{path}.summary.{key}")
    else:
        _require("value" in record, f"{path}.value",
                 f"{mtype} requires a value")
        _check_number(record["value"], f"{path}.value")
        if mtype == "counter":
            _check_number(record.get("total"), f"{path}.total")
            _require(record["total"] + 1e-9 >= record["value"],
                     f"{path}.total", "cumulative total below the delta")


def validate_metrics_sample(payload: Any) -> None:
    """One streamed metrics snapshot (an NSDS sample value).

    Shape::

        {"schema": "repro.monitor/v1", "kind": "metrics",
         "source": "coord", "time": 120.0, "seq": 4, "metrics": [...]}

    Counters carry the delta since the previous flush in ``value`` plus
    the cumulative ``total`` (so a consumer behind a lossy stream can
    resynchronise); histograms carry a cumulative summary.
    """
    _check_envelope(payload, "metrics")
    _check_int(payload.get("seq"), "$.seq", minimum=1)
    metrics = payload.get("metrics")
    _require(isinstance(metrics, list), "$.metrics", "metrics must be a list")
    for i, record in enumerate(metrics):
        _check_metric_record(record, f"$.metrics[{i}]")


def validate_alert_payload(payload: Any) -> None:
    """One typed alert record.

    Shape::

        {"schema": "repro.monitor/v1", "kind": "alert",
         "source": "monitor-console", "time": 310.0,
         "alert_id": "monitor-console-0001", "alert": "stall",
         "severity": "critical", "step": 24, "site": null,
         "message": "...", "detail": {...}}
    """
    _check_envelope(payload, "alert")
    alert_id = payload.get("alert_id")
    _require(isinstance(alert_id, str) and bool(alert_id), "$.alert_id",
             "alert_id must be a non-empty string")
    taxonomy = payload.get("alert")
    _require(taxonomy in ALERT_KINDS, "$.alert",
             f"alert must be one of {ALERT_KINDS}, got {taxonomy!r}")
    severity = payload.get("severity")
    _require(severity in ALERT_SEVERITIES, "$.severity",
             f"severity must be one of {ALERT_SEVERITIES}, got {severity!r}")
    _check_int(payload.get("step"), "$.step", minimum=-1)
    site = payload.get("site")
    _require(site is None or (isinstance(site, str) and bool(site)),
             "$.site", "site must be a non-empty string or null")
    message = payload.get("message")
    _require(isinstance(message, str) and bool(message), "$.message",
             "message must be a non-empty string")
    _require(isinstance(payload.get("detail", {}), dict), "$.detail",
             "detail must be an object")
