"""Wire the operations console into an assembled MOST deployment.

:func:`attach_monitoring` stands up the whole observation path the way
the paper's operators had it: health publishers on every NTCP server, a
status anchor + NSDS metrics stream on the coordinator host, and the
:class:`~repro.monitor.monitor.ExperimentMonitor` console on the portal
host, subscribed to both — metrics over NSDS datagrams, health over
OGSI SDE notifications.  Everything crosses the simulated network;
nothing peeks at coordinator internals directly.

The function is deployment-shape agnostic: it only needs ``kernel``,
``network``, ``sites`` (name -> site with an attached ``server``) and
``extras``, so it works on :func:`~repro.most.assembly.build_most` and
:func:`~repro.most.assembly.build_simulation_only` alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.monitor.health import (
    HealthPublisher,
    StatusService,
    coordinator_health_probe,
    ntcp_health_probe,
)
from repro.monitor.monitor import Alert, AlertThresholds, ExperimentMonitor
from repro.monitor.streamer import TelemetryStreamer
from repro.net.rpc import RpcClient
from repro.nsds.service import NSDSService
from repro.nsds.subscriber import NSDSReceiver
from repro.ogsi.container import ServiceContainer
from repro.ogsi.notification import NotificationSink

#: metric-name prefixes the streamer ships by default — the operational
#: surface (steps, retries, site latencies, rpc health, stream health)
DEFAULT_STREAM_PREFIXES = ("coordinator.", "core.server.", "net.rpc.",
                           "net.breaker.", "nsds.", "monitor.health.")


@dataclass
class MonitoringKit:
    """Handles to every piece :func:`attach_monitoring` created."""

    monitor: ExperimentMonitor
    streamer: TelemetryStreamer
    nsds: NSDSService
    status: StatusService
    receiver: NSDSReceiver
    sink: NotificationSink
    publishers: dict[str, HealthPublisher]
    coord_container: ServiceContainer
    console_container: ServiceContainer
    coordinator_publisher: HealthPublisher | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    def start(self) -> None:
        """Begin publishing, streaming, and watching."""
        for publisher in self.publishers.values():
            publisher.start()
        self.streamer.start()
        self.monitor.start()

    def watch_coordinator(self, coordinator, *,
                          interval: float = 10.0) -> HealthPublisher:
        """Publish the coordinator's health through the status service."""
        publisher = HealthPublisher(
            coordinator.kernel, self.status.service_data,
            source="coordinator", probe=coordinator_health_probe(coordinator),
            interval=interval)
        self.coordinator_publisher = publisher
        publisher.start()
        return publisher

    def stop(self) -> None:
        """Stop every periodic loop (so a bounded drain can finish)."""
        self.monitor.stop()
        self.streamer.stop()
        if self.coordinator_publisher is not None:
            self.coordinator_publisher.stop(final_status="stopped")
        for publisher in self.publishers.values():
            publisher.stop()


def attach_monitoring(dep, *, thresholds: AlertThresholds | None = None,
                      on_alert: Callable[[Alert], None] | None = None,
                      health_interval: float = 10.0,
                      stream_interval: float = 30.0,
                      tick_interval: float = 15.0,
                      subscription_lifetime: float = 1e9) -> MonitoringKit:
    """Deploy the console against ``dep`` and wire its subscriptions.

    Nothing runs until :meth:`MonitoringKit.start`; the subscription
    RPCs themselves are issued by a kernel process, so they land a few
    network round-trips into the run.
    """
    kernel, network = dep.kernel, dep.network

    # Health notifications travel site -> portal; give the portal the
    # same best-effort links the stream viewers use.
    for name in dep.sites:
        if frozenset(("portal", name)) not in network._links:
            network.connect("portal", name, latency=0.03, fifo=False)

    coord_container = ServiceContainer(network, "coord")
    nsds = NSDSService("nsds-monitor")
    coord_container.deploy(nsds)
    status = StatusService("status-coord")
    coord_container.deploy(status)
    streamer = TelemetryStreamer(kernel, nsds, source="coord",
                                 interval=stream_interval,
                                 prefixes=DEFAULT_STREAM_PREFIXES)

    # The portal's "ogsi" port belongs to the CHEF container in the full
    # deployment; the console container takes its own port.
    console_container = ServiceContainer(network, "portal", port="monitor")
    monitor = ExperimentMonitor(thresholds=thresholds,
                                interval=tick_interval, on_alert=on_alert)
    console_container.deploy(monitor)
    receiver = NSDSReceiver(network, "portal",
                            callback=monitor.on_stream_sample)
    monitor.bind_receiver(receiver)
    sink = NotificationSink(network, "portal",
                            callback=monitor.on_notification)

    publishers = {name: HealthPublisher(kernel, site.server.service_data,
                                        source=site.server.service_id,
                                        probe=ntcp_health_probe(site.server),
                                        interval=health_interval)
                  for name, site in dep.sites.items()}

    rpc = RpcClient(network, "portal", default_timeout=30.0)

    def subscribe():
        yield from rpc.call(
            "coord", "ogsi", "invoke",
            {"service_id": nsds.service_id, "operation": "subscribe",
             "params": {"sink_host": "portal", "sink_port": receiver.port,
                        "channels": [TelemetryStreamer.CHANNEL],
                        "lifetime": subscription_lifetime}})
        yield from rpc.call(
            "coord", "ogsi", "subscribe",
            {"service_id": status.service_id, "sde_name": "health",
             "sink_host": "portal", "sink_port": sink.port,
             "lifetime": subscription_lifetime})
        for name, site in dep.sites.items():
            yield from rpc.call(
                name, "ogsi", "subscribe",
                {"service_id": site.server.service_id, "sde_name": "health",
                 "sink_host": "portal", "sink_port": sink.port,
                 "lifetime": subscription_lifetime})

    kernel.process(subscribe(), name="monitor-subscriptions")

    kit = MonitoringKit(monitor=monitor, streamer=streamer, nsds=nsds,
                        status=status, receiver=receiver, sink=sink,
                        publishers=publishers,
                        coord_container=coord_container,
                        console_container=console_container)
    dep.extras["monitoring"] = kit
    return kit
