"""Periodic health SDEs — service-data inspection as the paper ran it.

The MOST operators watched the experiment through OGSI service data:
each NTCP server already publishes ``lastChanged`` and per-transaction
SDEs, but nothing summarises *liveness*.  :class:`HealthPublisher`
closes that gap: attached to any :class:`~repro.ogsi.sde.ServiceDataSet`,
it periodically writes a versioned ``health`` SDE (a validated
``repro.monitor/v1`` payload) so remote clients can subscribe to one
name and receive status, open-transaction backlog, and — for the
coordinator — the last committed step, over the normal OGSI
notification path.

The coordinator is not a grid service, so :class:`StatusService` gives
it one: a bare service deployed on the coordinator host whose only job
is owning the service-data set the coordinator's health lands in.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.monitor.schema import SCHEMA_ID, validate_health_payload
from repro.ogsi.sde import ServiceDataSet
from repro.ogsi.service import GridService
from repro.sim.kernel import Kernel

Probe = Callable[[], dict[str, Any]]


class StatusService(GridService):
    """A service-data anchor for components that are not grid services.

    Deployed next to the coordinator so its health SDE rides the same
    container/subscription machinery as every site's.
    """

    def on_attach(self) -> None:
        self.service_data.set("health", None)
        self.expose("getHealth",
                    lambda caller: self.service_data.value("health"))


class HealthPublisher:
    """Writes a ``health`` SDE every ``interval`` simulated seconds.

    ``probe`` returns the variable part of the payload (``status``,
    ``backlog``, optional ``step``/``plugin``/``detail``); the publisher
    adds the envelope, validates, and stores it — each write bumps the
    SDE version, so subscribers see a monotone stream.
    """

    def __init__(self, kernel: Kernel, service_data: ServiceDataSet, *,
                 source: str, probe: Probe, interval: float = 10.0):
        self.kernel = kernel
        self.service_data = service_data
        self.source = source
        self.probe = probe
        self.interval = interval
        self.running = False
        self.published = 0
        self._tm_published = kernel.telemetry.counter(
            "monitor.health.published", source=source)

    def publish_now(self, **overrides: Any) -> dict[str, Any]:
        """Build, validate, and store one health payload; returns it."""
        payload = {"schema": SCHEMA_ID, "kind": "health",
                   "source": self.source, "time": self.kernel.now}
        payload.update(self.probe())
        payload.update(overrides)
        payload.setdefault("detail", {})
        validate_health_payload(payload)
        self.service_data.set("health", payload)
        self.published += 1
        self._tm_published.inc()
        return payload

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.kernel.process(self._run(), name=f"health.{self.source}")

    def stop(self, *, final_status: str | None = None) -> None:
        """Stop the loop; optionally publish one last terminal status."""
        was_running = self.running
        self.running = False
        if final_status is not None and was_running:
            self.publish_now(status=final_status)

    def _run(self):
        while self.running:
            self.publish_now()
            yield self.kernel.timeout(self.interval)


def ntcp_health_probe(server) -> Probe:
    """Health probe over an :class:`~repro.core.server.NTCPServer`.

    Backlog counts transactions still in a non-terminal state — the
    paper's "how far behind is this site" question.
    """
    def probe() -> dict[str, Any]:
        backlog = sum(1 for txn in server.transactions.values()
                      if not txn.state.terminal)
        metrics = server.metrics()
        return {"status": "running", "backlog": backlog,
                "plugin": server.plugin.plugin_type,
                "detail": {"lastChanged": server.service_data.value(
                               "lastChanged"),
                           "executed": metrics["executed"],
                           "failed": metrics["failed"]}}
    return probe


def coordinator_health_probe(coordinator) -> Probe:
    """Health probe over a :class:`SimulationCoordinator`.

    ``step`` is the last *committed* step (``state.step`` is the next
    one to run); backlog is the number of in-flight transactions.
    """
    def probe() -> dict[str, Any]:
        state = coordinator.state
        detail: dict[str, Any] = {"phase": state.phase,
                                  "generation": state.generation}
        breakers = getattr(coordinator, "breakers", {})
        if breakers:
            detail["breakers"] = {site: breaker.snapshot()
                                  for site, breaker in sorted(
                                      breakers.items())}
        status = "running"
        if state.degraded_sites:
            # Surrogates are serving — the run is alive but its data is
            # partially numerical; the console must say so.
            status = "degraded"
            detail["degraded_sites"] = sorted(state.degraded_sites)
        return {"status": status, "backlog": len(state.pending),
                "step": max(state.step - 1, -1),
                "detail": detail}
    return probe
