"""The experiment monitor: rollups plus deterministic anomaly detectors.

:class:`ExperimentMonitor` is the operator console of the reproduction.
It is a grid service hosted on the portal, fed by two subscriptions:

* streamed ``repro.monitor/v1`` metrics samples arriving through an
  :class:`~repro.nsds.subscriber.NSDSReceiver` (best-effort, may gap);
* ``health`` SDE change notifications arriving through a
  :class:`~repro.ogsi.notification.NotificationSink`.

From those it maintains rollups (committed-step progress and rate,
per-site execute latency summaries, retry/timeout counts, stream
health) and runs three detectors on the simulation clock, so a given
run raises the same alerts at the same sim times every time:

* **stall** — no committed step for ``stall_after`` sim-seconds
  (the §3.4 "experiment exited prematurely" signature, seen live);
* **slow_site** — a site's execute p95 over budget, or the dominant
  site shifting (the paper's NCSA-simulation-suddenly-dominates story);
* **stream_health** — the metrics stream itself losing or reordering
  more than a tolerated fraction of samples;
* **breaker_open** — a site's circuit breaker left ``closed`` (warning),
  escalating to critical when the coordinator fails the site over to its
  numerical surrogate (the health SDE reports ``degraded``).

Alerts are frozen :class:`Alert` records; each one is also published as
the ``lastAlert`` SDE, so remote sinks receive it through the standard
OGSI notification path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.monitor.schema import (
    ALERT_KINDS,
    SCHEMA_ID,
    validate_alert_payload,
    validate_metrics_sample,
)
from repro.nsds.stream import StreamSample
from repro.ogsi.service import GridService

#: metric whose per-site summaries drive the slow-site detector
EXECUTE_METRIC = "core.server.execute_time"
#: counter whose total is the committed-step count
STEPS_METRIC = "coordinator.mspsds.steps"


@dataclass(frozen=True)
class Alert:
    """One typed anomaly record."""

    alert_id: str
    kind: str          # one of schema.ALERT_KINDS
    severity: str      # one of schema.ALERT_SEVERITIES
    time: float        # sim time raised
    step: int          # last committed step when raised (-1: none yet)
    site: str | None   # offending site, if the alert names one
    message: str
    detail: dict[str, Any] = field(default_factory=dict)

    def to_payload(self, source: str) -> dict[str, Any]:
        """The validated ``repro.monitor/v1`` alert payload."""
        payload = {"schema": SCHEMA_ID, "kind": "alert", "source": source,
                   "time": self.time, "alert_id": self.alert_id,
                   "alert": self.kind, "severity": self.severity,
                   "step": self.step, "site": self.site,
                   "message": self.message, "detail": dict(self.detail)}
        validate_alert_payload(payload)
        return payload


@dataclass
class AlertThresholds:
    """Detector tuning.  Defaults fit the MOST step cadence (~12 s/step)."""

    #: sim-seconds without a committed step before a stall fires
    stall_after: float = 120.0
    #: per-site execute p95 budget, sim-seconds
    execute_budget: float = 30.0
    #: execute observations required before the p95 is trusted
    min_execute_samples: int = 5
    #: factor by which a new dominant site must exceed the old one
    dominance_margin: float = 1.5
    #: tolerated net-loss fraction of the metrics stream
    stream_loss_rate: float = 0.05
    #: tolerated out-of-order fraction of the metrics stream
    stream_out_of_order_rate: float = 0.25
    #: stream samples required before stream health is judged
    min_stream_samples: int = 20


class ExperimentMonitor(GridService):
    """Live rollups + anomaly detection over streamed telemetry."""

    def __init__(self, service_id: str = "monitor-console", *,
                 thresholds: AlertThresholds | None = None,
                 interval: float = 15.0,
                 on_alert: Callable[[Alert], None] | None = None):
        super().__init__(service_id)
        self.thresholds = thresholds or AlertThresholds()
        self.interval = interval
        self.on_alert = on_alert
        self.alerts: list[Alert] = []
        self.receiver = None
        self.health: dict[str, dict[str, Any]] = {}
        self.samples_seen = 0
        self.running = False
        self._counter_totals: dict[tuple[str, tuple], float] = {}
        self._site_execute: dict[str, dict[str, float]] = {}
        self._last_commit_step = -1
        self._last_progress_time: float | None = None
        self._started_watch: float | None = None
        self._finished = False
        self._stall_open = False
        self._stall_span = None
        self._slow_sites: set[str] = set()
        self._dominant: str | None = None
        self._stream_alerted = False
        self._breaker_alerted: set[str] = set()
        self._degraded_alerted: set[str] = set()

    def on_attach(self) -> None:
        self.service_data.set("alerts", 0)
        self.service_data.set("lastAlert", None)
        self.expose("getAlerts",
                    lambda caller: [a.to_payload(self.service_id)
                                    for a in self.alerts])
        self.expose("getRollups", lambda caller: self.rollups())
        telemetry = self.kernel.telemetry
        self._tm_alerts = {kind: telemetry.counter("monitor.alerts.raised",
                                                   kind=kind,
                                                   service=self.service_id)
                           for kind in ALERT_KINDS}
        self._tm_samples = telemetry.counter("monitor.console.samples",
                                             service=self.service_id)
        self._tm_health = telemetry.counter("monitor.console.health_updates",
                                            service=self.service_id)

    def bind_receiver(self, receiver) -> None:
        """Point the stream-health detector at the NSDS receiver."""
        self.receiver = receiver

    # -- ingest ---------------------------------------------------------------
    def on_stream_sample(self, sample: StreamSample) -> None:
        """NSDSReceiver callback: absorb one streamed metrics payload."""
        payload = sample.value
        if not isinstance(payload, dict) or payload.get("kind") != "metrics":
            return
        validate_metrics_sample(payload)
        self.samples_seen += 1
        self._tm_samples.inc()
        for record in payload["metrics"]:
            name = record["name"]
            labels = record.get("labels", {})
            key = (name, tuple(sorted(labels.items())))
            if record["type"] == "counter":
                self._counter_totals[key] = record["total"]
            elif record["type"] == "histogram" and name == EXECUTE_METRIC:
                site = labels.get("site")
                if site:
                    self._site_execute[site] = dict(record["summary"])
        steps = int(self.counter_total(STEPS_METRIC))
        if steps > 0:
            self._note_progress(steps)

    def on_notification(self, payload: dict[str, Any]) -> None:
        """NotificationSink callback: absorb one health SDE change."""
        if payload.get("sde_name") != "health":
            return
        value = payload.get("value")
        if not isinstance(value, dict) or value.get("kind") != "health":
            return
        source = value["source"]
        self.health[source] = value
        self._tm_health.inc()
        if "step" in value:
            self._note_progress(int(value["step"]))
        if value.get("status") == "stopped" and source == "coordinator":
            self._finished = True

    def counter_total(self, name: str) -> float:
        """Streamed cumulative total of a counter, summed over labels."""
        return sum(total for (n, _), total in self._counter_totals.items()
                   if n == name)

    def _note_progress(self, step: int) -> None:
        if step <= self._last_commit_step:
            return
        self._last_commit_step = step
        self._last_progress_time = self.kernel.now
        if self._stall_open:
            self._stall_open = False
            if self._stall_span is not None:
                self._stall_span.end(recovered_step=step)
                self._stall_span = None

    # -- detectors ------------------------------------------------------------
    def check(self) -> None:
        """Run every detector once against current state."""
        now = self.kernel.now
        self._check_stall(now)
        self._check_slow_sites()
        self._check_stream_health()
        self._check_breakers()

    def _check_stall(self, now: float) -> None:
        if self._finished or self._stall_open:
            return
        base = self._last_progress_time
        if base is None:
            base = self._started_watch
        if base is None:
            return
        silent = now - base
        if silent < self.thresholds.stall_after:
            return
        self._stall_open = True
        # Stashed on the instance so the episode spans detection to
        # recovery; _note_progress / stop() close it.
        self._stall_span = self.kernel.telemetry.start_span(
            "monitor.stall.episode", parent=None,
            step=self._last_commit_step)
        self._raise_alert(
            "stall", "critical",
            f"no committed step for {silent:.0f}s "
            f"(last committed step {self._last_commit_step})",
            detail={"silent_for": silent})

    def _check_slow_sites(self) -> None:
        th = self.thresholds
        ranked: list[tuple[float, str]] = []
        for site in sorted(self._site_execute):
            summary = self._site_execute[site]
            if summary.get("count", 0) < th.min_execute_samples:
                return  # judge dominance only once every site qualifies
            ranked.append((summary["sum"], site))
            p95 = summary.get("p95", 0.0)
            if site not in self._slow_sites and p95 > th.execute_budget:
                self._slow_sites.add(site)
                self._raise_alert(
                    "slow_site", "warning",
                    f"site {site} execute p95 {p95:.1f}s over the "
                    f"{th.execute_budget:.1f}s budget",
                    site=site,
                    detail={"p95": p95, "mean": summary.get("mean", 0.0),
                            "count": summary.get("count", 0)})
        if not ranked:
            return
        top_sum, top_site = max(ranked)
        if self._dominant is None:
            self._dominant = top_site
            return
        if top_site == self._dominant:
            return
        prev_sum = self._site_execute[self._dominant]["sum"]
        if top_sum > th.dominance_margin * prev_sum:
            previous = self._dominant
            self._dominant = top_site
            self._raise_alert(
                "slow_site", "warning",
                f"dominant site shifted from {previous} to {top_site} "
                f"(cumulative execute {top_sum:.0f}s vs {prev_sum:.0f}s)",
                site=top_site,
                detail={"previous": previous, "sum": top_sum,
                        "previous_sum": prev_sum})

    def _check_stream_health(self) -> None:
        th = self.thresholds
        stats = self.stream_stats()
        if self._stream_alerted or stats is None:
            return
        if stats["received"] < th.min_stream_samples:
            return
        reasons = []
        if stats["loss_rate"] > th.stream_loss_rate:
            reasons.append(f"loss rate {stats['loss_rate']:.1%}")
        if stats["out_of_order_rate"] > th.stream_out_of_order_rate:
            reasons.append(f"out-of-order rate "
                           f"{stats['out_of_order_rate']:.1%}")
        if not reasons:
            return
        self._stream_alerted = True
        self._raise_alert(
            "stream_health", "warning",
            "metrics stream degraded: " + ", ".join(reasons),
            detail=stats)

    def _check_breakers(self) -> None:
        """Alert on breaker trips and surrogate failovers, once per episode.

        Reads the breaker snapshots the coordinator's health probe embeds
        in its ``detail`` — the monitor never touches the breakers
        directly, so it works across the (simulated) wire like every
        other console view.
        """
        for source, value in sorted(self.health.items()):
            detail = value.get("detail") or {}
            breakers = detail.get("breakers")
            if not isinstance(breakers, dict):
                continue
            for site, snap in sorted(breakers.items()):
                state = snap.get("state")
                if state == "closed":
                    # Episode over — re-arm so a later trip alerts again.
                    self._breaker_alerted.discard(site)
                    continue
                if site not in self._breaker_alerted:
                    self._breaker_alerted.add(site)
                    self._raise_alert(
                        "breaker_open", "warning",
                        f"circuit breaker for site {site} is {state} "
                        f"(trip #{snap.get('trips', 0)}, open for "
                        f"{snap.get('open_duration', 0.0):.0f}s)",
                        site=site, detail=dict(snap))
            degraded = set(detail.get("degraded_sites", ()))
            for site in sorted(degraded):
                if site not in self._degraded_alerted:
                    self._degraded_alerted.add(site)
                    self._raise_alert(
                        "breaker_open", "critical",
                        f"site {site} failed over to its numerical "
                        "surrogate; run continuing in degraded mode",
                        site=site,
                        detail={"degraded_sites": sorted(degraded),
                                "source": source})
            for site in list(self._degraded_alerted):
                if site not in degraded:
                    self._degraded_alerted.discard(site)

    def stream_stats(self) -> dict[str, Any] | None:
        """Gap/out-of-order rates, read from the receiver's hub counters.

        Alongside the receiver-wide rates, ``channels`` breaks the
        counters down per subscribed channel (received, highest sequence
        number seen, sequence-gap losses), so a ``stream_health`` alert
        payload names which stream is actually gapping.
        """
        receiver = self.receiver
        if receiver is None:
            return None
        received = sum(len(batch) for batch in receiver.samples.values())
        registry = self.kernel.telemetry.registry
        labels = {"host": receiver.host, "port": receiver.port}
        gaps_metric = registry.find("nsds.receiver.gaps", **labels)
        ooo_metric = registry.find("nsds.receiver.out_of_order", **labels)
        gaps = gaps_metric.value if gaps_metric is not None else 0
        out_of_order = ooo_metric.value if ooo_metric is not None else 0
        lost = max(gaps - out_of_order, 0)
        channels = {channel: {"received": receiver.received_count(channel),
                              "highest_seq": receiver.highest_seq.get(
                                  channel, -1),
                              "lost": receiver.loss_count(channel)}
                    for channel in sorted(receiver.samples)}
        return {"received": received, "gaps": gaps,
                "out_of_order": out_of_order, "lost": lost,
                "loss_rate": lost / received if received else 0.0,
                "out_of_order_rate": (out_of_order / received
                                      if received else 0.0),
                "channels": channels}

    # -- alerting -------------------------------------------------------------
    def raise_alert(self, kind: str, severity: str, message: str, *,
                    site: str | None = None,
                    detail: dict[str, Any] | None = None) -> Alert:
        """Raise a typed alert on behalf of an external detector.

        The observatory's SLO burn-rate evaluator uses this to route its
        ``slo_burn`` alerts through the console's standard channel —
        SDEs, counters, and the ``on_alert`` callback all fire exactly
        as they do for the built-in detectors.
        """
        return self._raise_alert(kind, severity, message, site=site,
                                 detail=detail)

    def _raise_alert(self, kind: str, severity: str, message: str, *,
                     site: str | None = None,
                     detail: dict[str, Any] | None = None) -> Alert:
        alert = Alert(alert_id=f"{self.service_id}-{len(self.alerts) + 1:04d}",
                      kind=kind, severity=severity, time=self.kernel.now,
                      step=self._last_commit_step, site=site,
                      message=message, detail=dict(detail or {}))
        self.alerts.append(alert)
        self.service_data.set("lastAlert", alert.to_payload(self.service_id))
        self.service_data.set("alerts", len(self.alerts))
        self._tm_alerts[kind].inc()
        self.emit("alert." + kind, severity=severity, site=site,
                  message=message)
        if self.on_alert is not None:
            self.on_alert(alert)
        return alert

    # -- rollups --------------------------------------------------------------
    def rollups(self) -> dict[str, Any]:
        """The console's summary board."""
        now = self.kernel.now
        watched = (now - self._started_watch
                   if self._started_watch is not None else 0.0)
        steps = max(self._last_commit_step, 0)
        per_site = {site: {"execute_p95": summary.get("p95", 0.0),
                           "execute_mean": summary.get("mean", 0.0),
                           "executed": int(summary.get("count", 0))}
                    for site, summary in sorted(self._site_execute.items())}
        return {"watched_for": watched,
                "last_committed_step": self._last_commit_step,
                "step_rate": steps / watched if watched > 0 else 0.0,
                "per_site": per_site,
                "retries": self.counter_total("coordinator.mspsds.retries"),
                "rpc_timeouts": self.counter_total("net.rpc.timeouts"),
                "rpc_retries": self.counter_total("net.rpc.retries"),
                "stream": self.stream_stats(),
                "dominant_site": self._dominant,
                "alerts": len(self.alerts),
                "health": {source: value.get("status")
                           for source, value in sorted(self.health.items())}}

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic detector sweep (requires attachment)."""
        if self.running:
            return
        self.running = True
        self._started_watch = self.kernel.now
        self.kernel.process(self._watch(), name=f"monitor.{self.service_id}")

    def stop(self) -> None:
        self.running = False
        if self._stall_span is not None:
            self._stall_span.end(recovered=False)
            self._stall_span = None

    def _watch(self):
        while self.running:
            self.check()
            yield self.kernel.timeout(self.interval)
