"""Critical-path analysis over ``coordinator.step`` trace trees.

The paper's Figure 5 explains a step's wall time by splitting it into
phases; this module goes one level deeper and assigns the parallel
phases (propose, execute) to the *site that dominated them*.  Each step
span's tree is reconstructed — phase children, then the per-site
``core.client.propose`` / ``core.client.execute`` grandchildren — into
a per-step record and, aggregated, a per-site blame table:

* how many steps each site's execute dominated;
* its execute mean / p95 across the run;
* the slack — how long the other sites sat finished, waiting for it.

Accepts live spans or JSONL export records, like
:mod:`repro.telemetry.report`, and is exposed on its CLI via
``python -m repro.telemetry.report --critical-path``.
"""

from __future__ import annotations

import pathlib
from typing import Any

from repro.telemetry.report import CORE_PHASES, PHASES, STEP_SPAN

#: client-side leaf spans carrying the ``service`` label, by phase
CLIENT_SPANS = {"core.client.propose": "propose",
                "core.client.execute": "execute"}


def _as_record(span: Any) -> dict[str, Any]:
    return span if isinstance(span, dict) else span.to_dict()


def _percentile(values: list[float], p: float) -> float:
    """Exact percentile with linear interpolation (values pre-sorted)."""
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    rank = (p / 100.0) * (len(values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(values) - 1)
    frac = rank - lo
    return values[lo] * (1.0 - frac) + values[hi] * frac


def step_traces(spans: list[Any]) -> list[dict[str, Any]]:
    """One record per step with the per-site propose/execute split.

    Each row extends :func:`repro.telemetry.report.step_rows` with::

        {"sites": {"ntcp-uiuc": {"propose": 0.1, "execute": 11.9}, ...},
         "dominant": "ntcp-uiuc",   # site with the longest execute
         "slack": 10.2,             # dominant execute minus runner-up
         "critical": 12.3}          # serial phases + slowest client legs
    """
    records = [_as_record(s) for s in spans]
    children: dict[str, list[dict[str, Any]]] = {}
    rows_by_span: dict[str, dict[str, Any]] = {}
    for rec in records:
        parent = rec.get("parent_id")
        if parent is not None:
            children.setdefault(parent, []).append(rec)
        if rec["name"] == STEP_SPAN and rec.get("duration") is not None:
            rows_by_span[rec["span_id"]] = {
                "step": int(rec["attrs"].get("step", -1)),
                "run_id": rec["attrs"].get("run_id", ""),
                "total": rec["duration"],
                "phases": {},
            }
    for rec in records:
        row = rows_by_span.get(rec.get("parent_id"))
        if row is None or rec.get("duration") is None:
            continue
        phase = rec["name"].rsplit(".", 1)[-1]
        if phase in PHASES:
            row["phases"][phase] = (row["phases"].get(phase, 0.0)
                                    + rec["duration"])
    for span_id, row in rows_by_span.items():
        sites: dict[str, dict[str, float]] = {}
        for phase_rec in children.get(span_id, ()):
            for leaf in children.get(phase_rec["span_id"], ()):
                part = CLIENT_SPANS.get(leaf["name"])
                if part is None or leaf.get("duration") is None:
                    continue
                site = leaf["attrs"].get("service", "?")
                per = sites.setdefault(site,
                                       {"propose": 0.0, "execute": 0.0})
                per[part] += leaf["duration"]
        row["sites"] = sites
        if sites:
            executes = sorted((per["execute"], site)
                              for site, per in sites.items())
            row["dominant"] = executes[-1][1]
            row["slack"] = (executes[-1][0] - executes[-2][0]
                            if len(executes) > 1 else 0.0)
            serial = sum(row["phases"].get(p, 0.0)
                         for p in ("integrate", "commit", "retry_wait"))
            row["critical"] = (serial + executes[-1][0]
                               + max(per["propose"]
                                     for per in sites.values()))
        else:
            row["dominant"] = None
            row["slack"] = 0.0
            row["critical"] = sum(row["phases"].get(p, 0.0)
                                  for p in CORE_PHASES)
    return sorted(rows_by_span.values(),
                  key=lambda r: (r["run_id"], r["step"]))


def blame_table(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Aggregate step traces into one record per site, sorted by blame."""
    per_site: dict[str, dict[str, Any]] = {}
    dominated_steps = 0
    for row in rows:
        if row.get("dominant") is not None:
            dominated_steps += 1
        for site, split in row.get("sites", {}).items():
            agg = per_site.setdefault(site, {
                "site": site, "steps": 0, "dominated": 0,
                "propose_total": 0.0, "execute_total": 0.0,
                "_executes": []})
            agg["steps"] += 1
            agg["propose_total"] += split["propose"]
            agg["execute_total"] += split["execute"]
            agg["_executes"].append(split["execute"])
        dominant = row.get("dominant")
        if dominant is not None:
            per_site[dominant]["dominated"] += 1
            per_site[dominant].setdefault("slack_total", 0.0)
            per_site[dominant]["slack_total"] = (
                per_site[dominant].get("slack_total", 0.0)
                + row.get("slack", 0.0))
    table = []
    for site in sorted(per_site):
        agg = per_site[site]
        executes = sorted(agg.pop("_executes"))
        agg.setdefault("slack_total", 0.0)
        agg["execute_mean"] = agg["execute_total"] / agg["steps"]
        agg["execute_p95"] = _percentile(executes, 95.0)
        agg["dominated_share"] = (agg["dominated"] / dominated_steps
                                  if dominated_steps else 0.0)
        table.append(agg)
    table.sort(key=lambda a: (-a["dominated"], -a["execute_total"],
                              a["site"]))
    return table


def render_blame_table(table: list[dict[str, Any]]) -> str:
    """The per-site blame table as an aligned text block."""
    if not table:
        return "no per-site client spans in trace"
    header = (f"{'site':<14}{'steps':>7}{'dominated':>11}{'share':>8}"
              f"{'exec mean':>11}{'exec p95':>10}{'slack [s]':>11}")
    lines = [header, "-" * len(header)]
    for agg in table:
        lines.append(
            f"{agg['site']:<14}{agg['steps']:>7}{agg['dominated']:>11}"
            f"{agg['dominated_share']:>8.0%}{agg['execute_mean']:>11.3f}"
            f"{agg['execute_p95']:>10.3f}{agg['slack_total']:>11.2f}")
    return "\n".join(lines)


def critical_path_report(spans: list[Any]) -> str:
    """Blame table plus a one-line summary, from live or loaded spans."""
    rows = step_traces(spans)
    if not rows:
        return "no coordinator.step spans in trace"
    n = len(rows)
    mean_total = sum(r["total"] for r in rows) / n
    mean_critical = sum(r.get("critical", 0.0) for r in rows) / n
    mean_slack = sum(r.get("slack", 0.0) for r in rows) / n
    lines = [f"critical path — {n} steps, mean step {mean_total:.3f}s, "
             f"mean critical path {mean_critical:.3f}s, "
             f"mean slack {mean_slack:.3f}s",
             render_blame_table(blame_table(rows))]
    return "\n".join(lines)


def report_from_jsonl(path: str | pathlib.Path) -> str:
    """Load a JSONL trace export and render the blame table."""
    from repro.telemetry.hub import TelemetryHub

    loaded = TelemetryHub.load_jsonl(path)
    title = loaded["meta"].get("experiment", str(path))
    return (f"per-site blame table — {title}\n"
            f"{critical_path_report(loaded['spans'])}")
