"""Live experiment operations: health SDEs, streamed metrics, alerts.

The paper's operators babysat a five-hour run through OGSI service-data
inspection and NSDS streams; this package turns the reproduction's
recorded telemetry into that live layer — health publication
(:mod:`repro.monitor.health`), metric streaming over NSDS
(:mod:`repro.monitor.streamer`), the alerting console
(:mod:`repro.monitor.monitor`), per-site critical-path analysis
(:mod:`repro.monitor.critical_path`), and deployment wiring
(:mod:`repro.monitor.wiring`).
"""

from repro.monitor.critical_path import (
    blame_table,
    critical_path_report,
    render_blame_table,
    step_traces,
)
from repro.monitor.health import (
    HealthPublisher,
    StatusService,
    coordinator_health_probe,
    ntcp_health_probe,
)
from repro.monitor.monitor import Alert, AlertThresholds, ExperimentMonitor
from repro.monitor.schema import (
    ALERT_KINDS,
    ALERT_SEVERITIES,
    HEALTH_STATUSES,
    SCHEMA_ID,
    MonitorSchemaError,
    validate_alert_payload,
    validate_health_payload,
    validate_metrics_sample,
)
from repro.monitor.streamer import TelemetryStreamer
from repro.monitor.wiring import (
    DEFAULT_STREAM_PREFIXES,
    MonitoringKit,
    attach_monitoring,
)

__all__ = [
    "ALERT_KINDS",
    "ALERT_SEVERITIES",
    "Alert",
    "AlertThresholds",
    "DEFAULT_STREAM_PREFIXES",
    "ExperimentMonitor",
    "HEALTH_STATUSES",
    "HealthPublisher",
    "MonitorSchemaError",
    "MonitoringKit",
    "SCHEMA_ID",
    "StatusService",
    "TelemetryStreamer",
    "attach_monitoring",
    "blame_table",
    "coordinator_health_probe",
    "critical_path_report",
    "ntcp_health_probe",
    "render_blame_table",
    "step_traces",
    "validate_alert_payload",
    "validate_health_payload",
    "validate_metrics_sample",
]
