"""Sim-clock-aware tracing: spans, trace contexts, and the tracer.

A :class:`Span` measures one operation on the *simulation* clock (the
tracer is constructed with the clock callable, normally
``lambda: kernel.now``).  Spans nest through parent links and cross RPC
hops through :class:`TraceContext`, a two-id envelope that rides in
``RpcRequest.trace`` as a plain dict — no live objects cross the wire,
matching the rest of the stack's serialization discipline.

Ids come from deterministic counters, never :mod:`uuid`, so a trace is a
pure function of the run's seed (the repo-wide reproducibility rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.util.ids import IdFactory

_UNSET = object()


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one span: wire-friendly, two strings."""

    trace_id: str
    span_id: str

    def to_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceContext":
        return cls(trace_id=data["trace_id"], span_id=data["span_id"])


class Span:
    """One timed operation; finish it exactly once with :meth:`end`.

    Spans are started by the tracer; generator-based code holds the span
    across yields and ends it when the operation completes (a context
    manager would end at the wrong time there).  ``attrs`` is free-form
    metadata merged at start and at end.
    """

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "start", "end_time", "attrs")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: str | None, start: float,
                 attrs: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end_time: float | None = None
        self.attrs = attrs

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def finished(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> float:
        if self.end_time is None:
            raise RuntimeError(f"span {self.name!r} not finished")
        return self.end_time - self.start

    def end(self, **attrs: Any) -> "Span":
        """Finish the span at the current clock time; idempotent."""
        if self.end_time is None:
            self.attrs.update(attrs)
            self.end_time = self.tracer._clock()
            self.tracer._finish(self)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the span on scope exit; exceptions are recorded, not eaten.

        For synchronous code, ``with tracer.start_span(...) as span:`` is
        the preferred shape (the RPR004 lint rule enforces that spans are
        closed); generator-based code keeps calling :meth:`end` explicitly
        because a ``with`` block would close at the wrong time there.
        """
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        return False

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end_time,
            "duration": None if self.end_time is None else self.duration,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.duration:.4f}s" if self.finished else "open"
        return f"<Span {self.name} {self.span_id} {state}>"


class Tracer:
    """Creates spans on a clock and collects the finished ones.

    Parenting is explicit (``parent=span_or_context``) or ambient: a
    dispatcher that receives a remote trace context may :meth:`activate`
    it around a synchronous handler call, and any span started without an
    explicit parent inside that window becomes its child.  The ambient
    slot is only trusted across synchronous code — generator bodies that
    resume later must capture their parent at creation time.
    """

    def __init__(self, clock: Callable[[], float],
                 on_finish: Callable[[Span], None] | None = None):
        self._clock = clock
        self._on_finish = on_finish
        self._trace_ids = IdFactory("trace")
        self._span_ids = IdFactory("span")
        self._active: TraceContext | None = None
        self.finished: list[Span] = []

    # -- ambient context ---------------------------------------------------
    @property
    def active(self) -> TraceContext | None:
        return self._active

    def activate(self, ctx: "TraceContext | Span | None"):
        """Install ``ctx`` as the ambient parent; returns the previous one.

        Callers must restore the returned value in a ``finally`` block.
        """
        previous = self._active
        self._active = ctx.context if isinstance(ctx, Span) else ctx
        return previous

    # -- span lifecycle -----------------------------------------------------
    def start_span(self, name: str, *, parent: Any = _UNSET,
                   **attrs: Any) -> Span:
        """Open a span; ``parent`` may be a Span, TraceContext, dict or None.

        Omitting ``parent`` adopts the ambient active context (if any);
        passing ``parent=None`` forces a new root trace.
        """
        if parent is _UNSET:
            parent = self._active
        if isinstance(parent, Span):
            parent = parent.context
        elif isinstance(parent, dict):
            parent = TraceContext.from_dict(parent)
        if parent is None:
            trace_id, parent_id = self._trace_ids(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(self, name, trace_id, self._span_ids(), parent_id,
                    self._clock(), dict(attrs))

    def _finish(self, span: Span) -> None:
        self.finished.append(span)
        if self._on_finish is not None:
            self._on_finish(span)

    # -- queries ------------------------------------------------------------
    def spans(self, name: str | None = None, *,
              trace_id: str | None = None) -> list[Span]:
        """Finished spans filtered by exact name and/or trace id."""
        out = []
        for span in self.finished:
            if name is not None and span.name != name:
                continue
            if trace_id is not None and span.trace_id != trace_id:
                continue
            out.append(span)
        return out

    def children(self, parent: "Span | TraceContext") -> list[Span]:
        """Finished direct children of ``parent``."""
        pid = parent.span_id
        return [s for s in self.finished if s.parent_id == pid]
