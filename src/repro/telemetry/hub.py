"""The telemetry hub: one registry + tracer + pluggable sinks per run.

Every :class:`~repro.sim.kernel.Kernel` owns a hub wired to the simulation
clock, so all layers reach telemetry as ``kernel.telemetry`` without extra
plumbing.  Sinks observe finished spans as they close; the in-memory sink
is what tests assert against, the JSONL sink streams records for offline
analysis (``benchmarks/out/``).  :meth:`TelemetryHub.export_jsonl` writes
the whole run — metrics snapshot plus trace — in one pass.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Callable

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.schema import SCHEMA_ID, validate_metrics_payload
from repro.telemetry.spans import Span, TraceContext, Tracer


class InMemorySink:
    """Collects finished spans in a list (the default test sink)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def on_span(self, span: Span) -> None:
        self.spans.append(span)


class JsonlSink:
    """Streams each finished span as one JSON line to a file."""

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")

    def on_span(self, span: Span) -> None:
        record = {"kind": "span", **span.to_dict()}
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


class ScopedTelemetry:
    """A label-scoped view of a hub: same registry, fixed extra labels.

    Returned by :meth:`TelemetryHub.scoped`.  Instruments created through
    the view carry the scope's labels in addition to any call-site labels
    — this is how concurrent runs multiplexed on one kernel (fleet
    tenants, parallel sessions) keep their metric series apart.  On a key
    collision the scope's label wins, so a scoped component can never
    accidentally shed its namespace.  Spans and exports pass through to
    the underlying hub unchanged.
    """

    def __init__(self, hub: "TelemetryHub", labels: dict[str, str]):
        self.hub = hub
        self.labels = dict(labels)

    @property
    def registry(self) -> MetricRegistry:
        """The underlying (shared) metric registry."""
        return self.hub.registry

    @property
    def tracer(self) -> Any:
        """The underlying (shared) tracer."""
        return self.hub.tracer

    def counter(self, name: str, **labels: Any) -> Counter:
        """A counter carrying the scope's labels plus ``labels``."""
        return self.hub.counter(name, **{**labels, **self.labels})

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """A gauge carrying the scope's labels plus ``labels``."""
        return self.hub.gauge(name, **{**labels, **self.labels})

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """A histogram carrying the scope's labels plus ``labels``."""
        return self.hub.histogram(name, **{**labels, **self.labels})

    def start_span(self, name: str, **kwargs: Any) -> Span:
        """Shorthand for the underlying hub's ``start_span``."""
        return self.hub.start_span(name, **kwargs)

    def scoped(self, **labels: Any) -> "ScopedTelemetry":
        """A further-narrowed view (existing scope labels still win)."""
        return ScopedTelemetry(self.hub, {**labels, **self.labels})


class TelemetryHub:
    """The one observability surface of a run.

    Args:
        clock: returns the current time for spans/metrics; the kernel
            injects its simulation clock, standalone use defaults to
            :func:`time.monotonic`.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.monotonic
        self.registry = MetricRegistry()
        self.tracer = Tracer(self._clock, on_finish=self._span_finished)
        self._sinks: list[Any] = []

    # -- instruments ---------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.registry.histogram(name, **labels)

    def scoped(self, **labels: Any) -> ScopedTelemetry:
        """A view of this hub whose instruments all carry ``labels``.

        Concurrently constructed deployments sharing one kernel must each
        take a scope (e.g. ``hub.scoped(tenant="t03")``) so their metric
        series cannot collide in the shared registry.
        """
        return ScopedTelemetry(self, labels)

    # -- spans ---------------------------------------------------------------
    def start_span(self, name: str, **kwargs: Any) -> Span:
        """Shorthand for ``hub.tracer.start_span``."""
        return self.tracer.start_span(name, **kwargs)

    def spans(self, name: str | None = None, *,
              trace_id: str | None = None) -> list[Span]:
        return self.tracer.spans(name, trace_id=trace_id)

    def _span_finished(self, span: Span) -> None:
        for sink in self._sinks:
            sink.on_span(span)

    # -- sinks ---------------------------------------------------------------
    def add_sink(self, sink: Any) -> Any:
        """Register an object with ``on_span(span)``; returns it."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Any) -> None:
        self._sinks.remove(sink)

    # -- export --------------------------------------------------------------
    def metrics_snapshot(self) -> list[dict[str, Any]]:
        return self.registry.snapshot()

    def metrics_payload(self, experiment: str) -> dict[str, Any]:
        """A schema-valid metrics document for one experiment."""
        payload = {
            "schema": SCHEMA_ID,
            "experiment": experiment,
            "metrics": self.metrics_snapshot(),
        }
        validate_metrics_payload(payload)
        return payload

    def export_jsonl(self, path: str | pathlib.Path, *,
                     experiment: str = "run") -> pathlib.Path:
        """Write the whole run as JSONL: one meta line, then metrics, then spans."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The line discriminator is "kind", NOT "type": metric records
        # carry their own "type" field (counter/gauge/histogram).
        with path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "meta", "schema": SCHEMA_ID,
                                 "experiment": experiment}) + "\n")
            for record in self.metrics_snapshot():
                fh.write(json.dumps({"kind": "metric", **record}) + "\n")
            for span in self.tracer.finished:
                fh.write(json.dumps({"kind": "span", **span.to_dict()}) + "\n")
        return path

    @staticmethod
    def load_jsonl(path: str | pathlib.Path) -> dict[str, Any]:
        """Parse an export back into ``{"meta", "metrics", "spans"}``."""
        meta: dict[str, Any] = {}
        metrics: list[dict[str, Any]] = []
        spans: list[dict[str, Any]] = []
        for line in pathlib.Path(path).read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            kind = record.pop("kind", None)
            if kind == "meta":
                meta = record
            elif kind == "metric":
                metrics.append(record)
            elif kind == "span":
                spans.append(record)
        return {"meta": meta, "metrics": metrics, "spans": spans}
