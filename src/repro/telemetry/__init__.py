"""Telemetry: counters, histograms, gauges, and sim-clock-aware tracing.

The observability spine of the reproduction.  One :class:`TelemetryHub`
per run (owned by the :class:`~repro.sim.kernel.Kernel`) collects

* **metrics** — named instruments following the ``layer.component.name``
  convention (``net.rpc.latency``, ``core.server.executed``, ...);
* **spans** — timed operations linked into traces whose context
  propagates across RPC hops in ``RpcRequest.trace``, so one MS-PSDS
  step decomposes end-to-end into integrate → propose → execute → commit
  (the paper's Figure-5 step-time breakdown);
* **exports** — a JSONL trace/metrics dump validated by
  :mod:`repro.telemetry.schema` and rendered by
  :mod:`repro.telemetry.report`.
"""

from repro.telemetry.hub import (
    InMemorySink,
    JsonlSink,
    ScopedTelemetry,
    TelemetryHub,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
)
from repro.telemetry.schema import (
    BENCH_SCHEMA_ID,
    SCHEMA_ID,
    SchemaError,
    validate_bench_payload,
    validate_fleet_bench_payload,
    validate_jsonl_export,
    validate_metric_name,
    validate_metrics_payload,
    validate_queue_bench_payload,
    validate_stepping_bench_payload,
)
from repro.telemetry.spans import Span, TraceContext, Tracer

__all__ = [
    "TelemetryHub",
    "ScopedTelemetry",
    "InMemorySink",
    "JsonlSink",
    "MetricRegistry",
    "Metric",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "TraceContext",
    "SCHEMA_ID",
    "BENCH_SCHEMA_ID",
    "SchemaError",
    "validate_metric_name",
    "validate_metrics_payload",
    "validate_bench_payload",
    "validate_fleet_bench_payload",
    "validate_queue_bench_payload",
    "validate_stepping_bench_payload",
    "validate_jsonl_export",
]
