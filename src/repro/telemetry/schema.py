"""Schema validation for exported telemetry documents.

Hand-rolled on purpose: the validator is ~100 lines, has no dependency
beyond the standard library, and produces errors with a JSON-path to the
offending field.  Benchmarks and the CI smoke target validate every
metrics document they emit through :func:`validate_metrics_payload`, so a
malformed export fails the run instead of silently rotting in
``benchmarks/out/``.

Conventions enforced:

* metric names are dotted ``layer.component.name`` (>= 3 non-empty parts);
* counters/gauges carry a numeric ``value``; histograms carry a
  ``summary`` with exact-percentile fields;
* spans are closed (``end >= start``) and id-complete.
"""

from __future__ import annotations

from typing import Any

from repro.util.errors import ReproError

SCHEMA_ID = "repro.telemetry/v1"

_METRIC_TYPES = ("counter", "gauge", "histogram")
_SUMMARY_KEYS = ("count", "sum", "mean", "min", "max", "p50", "p90", "p99")
_SPAN_KEYS = ("name", "trace_id", "span_id", "parent_id", "start", "end",
              "duration", "attrs")


class SchemaError(ReproError):
    """A telemetry document does not match the expected shape."""


def _fail(path: str, message: str) -> None:
    raise SchemaError(f"{path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        _fail(path, message)


def _check_number(value: Any, path: str) -> None:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             path, f"expected a number, got {type(value).__name__}")


def validate_metric_name(name: Any, path: str = "name") -> None:
    """Enforce the ``layer.component.name`` naming convention."""
    _require(isinstance(name, str), path, "metric name must be a string")
    parts = name.split(".")
    _require(len(parts) >= 3 and all(parts), path,
             f"metric name {name!r} must be dotted layer.component.name")


def validate_metric_record(record: Any, path: str = "metric") -> None:
    """One entry of a ``metrics`` list."""
    _require(isinstance(record, dict), path, "metric record must be an object")
    validate_metric_name(record.get("name"), f"{path}.name")
    mtype = record.get("type")
    _require(mtype in _METRIC_TYPES, f"{path}.type",
             f"metric type must be one of {_METRIC_TYPES}, got {mtype!r}")
    labels = record.get("labels", {})
    _require(isinstance(labels, dict), f"{path}.labels", "labels must be an object")
    for key, value in labels.items():
        _require(isinstance(key, str) and isinstance(value, str),
                 f"{path}.labels.{key}", "labels must map strings to strings")
    if mtype == "histogram":
        summary = record.get("summary")
        _require(isinstance(summary, dict), f"{path}.summary",
                 "histogram requires a summary object")
        for key in _SUMMARY_KEYS:
            _require(key in summary, f"{path}.summary.{key}", "missing")
            _check_number(summary[key], f"{path}.summary.{key}")
    else:
        _require("value" in record, f"{path}.value",
                 f"{mtype} requires a value")
        _check_number(record["value"], f"{path}.value")


def validate_span_record(record: Any, path: str = "span") -> None:
    """One span record (from ``Span.to_dict`` or a JSONL line)."""
    _require(isinstance(record, dict), path, "span record must be an object")
    for key in _SPAN_KEYS:
        _require(key in record, f"{path}.{key}", "missing")
    for key in ("name", "trace_id", "span_id"):
        _require(isinstance(record[key], str) and record[key],
                 f"{path}.{key}", "must be a non-empty string")
    _require(record["parent_id"] is None or isinstance(record["parent_id"], str),
             f"{path}.parent_id", "must be a string or null")
    _check_number(record["start"], f"{path}.start")
    _check_number(record["end"], f"{path}.end")
    _require(record["end"] >= record["start"], f"{path}.end",
             "span must close at or after its start")
    _require(isinstance(record["attrs"], dict), f"{path}.attrs",
             "attrs must be an object")


def validate_metrics_payload(payload: Any) -> None:
    """A full metrics document as emitted by benchmarks / the smoke target.

    Shape::

        {"schema": "repro.telemetry/v1", "experiment": "...",
         "metrics": [...], "spans": [...]?}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == SCHEMA_ID, "$.schema",
             f"expected {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    experiment = payload.get("experiment")
    _require(isinstance(experiment, str) and experiment, "$.experiment",
             "experiment must be a non-empty string")
    metrics = payload.get("metrics")
    _require(isinstance(metrics, list), "$.metrics", "metrics must be a list")
    for i, record in enumerate(metrics):
        validate_metric_record(record, f"$.metrics[{i}]")
    if "spans" in payload:
        spans = payload["spans"]
        _require(isinstance(spans, list), "$.spans", "spans must be a list")
        for i, record in enumerate(spans):
            validate_span_record(record, f"$.spans[{i}]")


def validate_jsonl_export(loaded: dict[str, Any]) -> None:
    """Validate the dict returned by :meth:`TelemetryHub.load_jsonl`."""
    _require(loaded.get("meta", {}).get("schema") == SCHEMA_ID, "$.meta.schema",
             f"expected {SCHEMA_ID!r}")
    for i, record in enumerate(loaded.get("metrics", [])):
        validate_metric_record(record, f"$.metrics[{i}]")
    for i, record in enumerate(loaded.get("spans", [])):
        validate_span_record(record, f"$.spans[{i}]")


# ---------------------------------------------------------------------------
# Benchmark comparison documents (repo-root BENCH_*.json)
# ---------------------------------------------------------------------------

BENCH_SCHEMA_ID = "repro.bench/v1"

#: every stepping mode must report these (all in *simulated* seconds, so
#: the committed document is deterministic run-to-run).
_BENCH_MODE_KEYS = ("steps", "variants", "wall_time", "median_step_latency",
                    "aggregate_steps_per_s", "aggregate_variant_steps_per_s")


def validate_bench_mode(record: Any, path: str = "mode") -> None:
    """One stepping-mode record of a benchmark comparison document."""
    _require(isinstance(record, dict), path, "mode record must be an object")
    for key in _BENCH_MODE_KEYS:
        _require(key in record, f"{path}.{key}", "missing")
        _check_number(record[key], f"{path}.{key}")
    for key in ("steps", "variants"):
        _require(isinstance(record[key], int) and record[key] >= 1,
                 f"{path}.{key}", "must be a positive integer")
    for key in ("wall_time", "median_step_latency", "aggregate_steps_per_s",
                "aggregate_variant_steps_per_s"):
        _require(record[key] > 0, f"{path}.{key}", "must be positive")


def validate_bench_payload(payload: Any) -> None:
    """A benchmark comparison document (repo-root ``BENCH_*.json``).

    Dispatches on ``$.experiment``: ``"tfleet"`` documents follow the
    fleet shape (:func:`validate_fleet_bench_payload`); everything else
    follows the stepping-mode comparison shape
    (:func:`validate_stepping_bench_payload`).
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == BENCH_SCHEMA_ID, "$.schema",
             f"expected {BENCH_SCHEMA_ID!r}, got {payload.get('schema')!r}")
    experiment = payload.get("experiment")
    _require(isinstance(experiment, str) and experiment, "$.experiment",
             "experiment must be a non-empty string")
    if experiment == "tfleet":
        validate_fleet_bench_payload(payload)
    else:
        validate_stepping_bench_payload(payload)


def validate_stepping_bench_payload(payload: Any) -> None:
    """A stepping-mode comparison document (``BENCH_tperf_ntcp.json``).

    Shape::

        {"schema": "repro.bench/v1", "experiment": "...",
         "config": {"n_steps": int, "n_variants": int},
         "modes": {"sequential": {...}, "pipelined": {...},
                   "ensemble": {...}},
         "speedups": {"pipelined_aggregate_steps_per_s": float,
                      "ensemble_aggregate_variant_steps_per_s": float},
         "bit_exact": {"pipelined": bool, "ensemble_base_variant": bool}}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == BENCH_SCHEMA_ID, "$.schema",
             f"expected {BENCH_SCHEMA_ID!r}, got {payload.get('schema')!r}")
    experiment = payload.get("experiment")
    _require(isinstance(experiment, str) and experiment, "$.experiment",
             "experiment must be a non-empty string")
    config = payload.get("config")
    _require(isinstance(config, dict), "$.config", "config must be an object")
    for key in ("n_steps", "n_variants"):
        _require(isinstance(config.get(key), int) and config[key] >= 1,
                 f"$.config.{key}", "must be a positive integer")
    modes = payload.get("modes")
    _require(isinstance(modes, dict), "$.modes", "modes must be an object")
    for name in ("sequential", "pipelined", "ensemble"):
        _require(name in modes, f"$.modes.{name}", "missing")
        validate_bench_mode(modes[name], f"$.modes.{name}")
    speedups = payload.get("speedups")
    _require(isinstance(speedups, dict), "$.speedups",
             "speedups must be an object")
    for key in ("pipelined_aggregate_steps_per_s",
                "ensemble_aggregate_variant_steps_per_s"):
        _require(key in speedups, f"$.speedups.{key}", "missing")
        _check_number(speedups[key], f"$.speedups.{key}")
    bit_exact = payload.get("bit_exact")
    _require(isinstance(bit_exact, dict), "$.bit_exact",
             "bit_exact must be an object")
    for key in ("pipelined", "ensemble_base_variant"):
        _require(isinstance(bit_exact.get(key), bool), f"$.bit_exact.{key}",
                 "must be a boolean")


#: per-tenant record keys in a fleet bench document
_FLEET_TENANT_KEYS = ("runs", "steps", "completion_time", "lease_wait_max",
                      "duplicate_executes")


def validate_fleet_bench_payload(payload: Any) -> None:
    """A multi-tenant fleet document (``BENCH_tfleet.json``).

    Shape::

        {"schema": "repro.bench/v1", "experiment": "tfleet",
         "config": {"n_sites": int, "n_tenants": int,
                    "runs_per_tenant": int, "n_experiments": int,
                    "n_steps": int, "sites_per_lease": int},
         "fleet": {"duration": float, "completed": int,
                   "peak_queue_depth": int, "lease_wait_max": float,
                   "lease_wait_mean": float, "duplicate_executes": int},
         "fairness": {"completion_ratio": float, "bound": float,
                      "within_bound": bool},
         "tenants": {"<tenant>": {"runs": int, "steps": int,
                                  "completion_time": float,
                                  "lease_wait_max": float,
                                  "duplicate_executes": int}, ...},
         "bit_exact": {"solo_vs_fleet": bool, "tenants_checked": int},
         "security": {"unauthorized_rejected": bool}}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == BENCH_SCHEMA_ID, "$.schema",
             f"expected {BENCH_SCHEMA_ID!r}, got {payload.get('schema')!r}")
    _require(payload.get("experiment") == "tfleet", "$.experiment",
             "fleet bench documents use experiment 'tfleet'")
    config = payload.get("config")
    _require(isinstance(config, dict), "$.config", "config must be an object")
    for key in ("n_sites", "n_tenants", "runs_per_tenant", "n_experiments",
                "n_steps", "sites_per_lease"):
        _require(isinstance(config.get(key), int) and config[key] >= 1,
                 f"$.config.{key}", "must be a positive integer")
    _require(config["n_experiments"]
             == config["n_tenants"] * config["runs_per_tenant"],
             "$.config.n_experiments",
             "must equal n_tenants * runs_per_tenant")
    fleet = payload.get("fleet")
    _require(isinstance(fleet, dict), "$.fleet", "fleet must be an object")
    for key in ("duration", "lease_wait_max", "lease_wait_mean"):
        _require(key in fleet, f"$.fleet.{key}", "missing")
        _check_number(fleet[key], f"$.fleet.{key}")
        _require(fleet[key] >= 0, f"$.fleet.{key}", "must be non-negative")
    for key in ("completed", "peak_queue_depth", "duplicate_executes"):
        _require(isinstance(fleet.get(key), int) and fleet[key] >= 0,
                 f"$.fleet.{key}", "must be a non-negative integer")
    fairness = payload.get("fairness")
    _require(isinstance(fairness, dict), "$.fairness",
             "fairness must be an object")
    for key in ("completion_ratio", "bound"):
        _require(key in fairness, f"$.fairness.{key}", "missing")
        _check_number(fairness[key], f"$.fairness.{key}")
        _require(fairness[key] >= 1.0, f"$.fairness.{key}",
                 "ratios are >= 1")
    _require(isinstance(fairness.get("within_bound"), bool),
             "$.fairness.within_bound", "must be a boolean")
    tenants = payload.get("tenants")
    _require(isinstance(tenants, dict) and tenants, "$.tenants",
             "tenants must be a non-empty object")
    for tenant, record in tenants.items():
        path = f"$.tenants.{tenant}"
        _require(isinstance(record, dict), path,
                 "tenant record must be an object")
        for key in _FLEET_TENANT_KEYS:
            _require(key in record, f"{path}.{key}", "missing")
            _check_number(record[key], f"{path}.{key}")
        for key in ("runs", "steps"):
            _require(isinstance(record[key], int) and record[key] >= 1,
                     f"{path}.{key}", "must be a positive integer")
        _require(isinstance(record["duplicate_executes"], int)
                 and record["duplicate_executes"] >= 0,
                 f"{path}.duplicate_executes",
                 "must be a non-negative integer")
    bit_exact = payload.get("bit_exact")
    _require(isinstance(bit_exact, dict), "$.bit_exact",
             "bit_exact must be an object")
    _require(isinstance(bit_exact.get("solo_vs_fleet"), bool),
             "$.bit_exact.solo_vs_fleet", "must be a boolean")
    _require(isinstance(bit_exact.get("tenants_checked"), int)
             and bit_exact["tenants_checked"] >= 1,
             "$.bit_exact.tenants_checked", "must be a positive integer")
    security = payload.get("security")
    _require(isinstance(security, dict), "$.security",
             "security must be an object")
    _require(isinstance(security.get("unauthorized_rejected"), bool),
             "$.security.unauthorized_rejected", "must be a boolean")
