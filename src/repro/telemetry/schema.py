"""Schema validation for exported telemetry documents.

Hand-rolled on purpose: the validator is ~100 lines, has no dependency
beyond the standard library, and produces errors with a JSON-path to the
offending field.  Benchmarks and the CI smoke target validate every
metrics document they emit through :func:`validate_metrics_payload`, so a
malformed export fails the run instead of silently rotting in
``benchmarks/out/``.

Conventions enforced:

* metric names are dotted ``layer.component.name`` (>= 3 non-empty parts);
* counters/gauges carry a numeric ``value``; histograms carry a
  ``summary`` with exact-percentile fields;
* spans are closed (``end >= start``) and id-complete.
"""

from __future__ import annotations

from typing import Any

from repro.util.errors import ReproError

SCHEMA_ID = "repro.telemetry/v1"

_METRIC_TYPES = ("counter", "gauge", "histogram")
_SUMMARY_KEYS = ("count", "sum", "mean", "min", "max", "p50", "p90", "p99")
_SPAN_KEYS = ("name", "trace_id", "span_id", "parent_id", "start", "end",
              "duration", "attrs")


class SchemaError(ReproError):
    """A telemetry document does not match the expected shape."""


def _fail(path: str, message: str) -> None:
    raise SchemaError(f"{path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        _fail(path, message)


def _check_number(value: Any, path: str) -> None:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             path, f"expected a number, got {type(value).__name__}")


def validate_metric_name(name: Any, path: str = "name") -> None:
    """Enforce the ``layer.component.name`` naming convention."""
    _require(isinstance(name, str), path, "metric name must be a string")
    parts = name.split(".")
    _require(len(parts) >= 3 and all(parts), path,
             f"metric name {name!r} must be dotted layer.component.name")


def validate_metric_record(record: Any, path: str = "metric") -> None:
    """One entry of a ``metrics`` list."""
    _require(isinstance(record, dict), path, "metric record must be an object")
    validate_metric_name(record.get("name"), f"{path}.name")
    mtype = record.get("type")
    _require(mtype in _METRIC_TYPES, f"{path}.type",
             f"metric type must be one of {_METRIC_TYPES}, got {mtype!r}")
    labels = record.get("labels", {})
    _require(isinstance(labels, dict), f"{path}.labels", "labels must be an object")
    for key, value in labels.items():
        _require(isinstance(key, str) and isinstance(value, str),
                 f"{path}.labels.{key}", "labels must map strings to strings")
    if mtype == "histogram":
        summary = record.get("summary")
        _require(isinstance(summary, dict), f"{path}.summary",
                 "histogram requires a summary object")
        for key in _SUMMARY_KEYS:
            _require(key in summary, f"{path}.summary.{key}", "missing")
            _check_number(summary[key], f"{path}.summary.{key}")
    else:
        _require("value" in record, f"{path}.value",
                 f"{mtype} requires a value")
        _check_number(record["value"], f"{path}.value")


def validate_span_record(record: Any, path: str = "span") -> None:
    """One span record (from ``Span.to_dict`` or a JSONL line)."""
    _require(isinstance(record, dict), path, "span record must be an object")
    for key in _SPAN_KEYS:
        _require(key in record, f"{path}.{key}", "missing")
    for key in ("name", "trace_id", "span_id"):
        _require(isinstance(record[key], str) and record[key],
                 f"{path}.{key}", "must be a non-empty string")
    _require(record["parent_id"] is None or isinstance(record["parent_id"], str),
             f"{path}.parent_id", "must be a string or null")
    _check_number(record["start"], f"{path}.start")
    _check_number(record["end"], f"{path}.end")
    _require(record["end"] >= record["start"], f"{path}.end",
             "span must close at or after its start")
    _require(isinstance(record["attrs"], dict), f"{path}.attrs",
             "attrs must be an object")


def validate_metrics_payload(payload: Any) -> None:
    """A full metrics document as emitted by benchmarks / the smoke target.

    Shape::

        {"schema": "repro.telemetry/v1", "experiment": "...",
         "metrics": [...], "spans": [...]?}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == SCHEMA_ID, "$.schema",
             f"expected {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    experiment = payload.get("experiment")
    _require(isinstance(experiment, str) and experiment, "$.experiment",
             "experiment must be a non-empty string")
    metrics = payload.get("metrics")
    _require(isinstance(metrics, list), "$.metrics", "metrics must be a list")
    for i, record in enumerate(metrics):
        validate_metric_record(record, f"$.metrics[{i}]")
    if "spans" in payload:
        spans = payload["spans"]
        _require(isinstance(spans, list), "$.spans", "spans must be a list")
        for i, record in enumerate(spans):
            validate_span_record(record, f"$.spans[{i}]")


def validate_jsonl_export(loaded: dict[str, Any]) -> None:
    """Validate the dict returned by :meth:`TelemetryHub.load_jsonl`."""
    _require(loaded.get("meta", {}).get("schema") == SCHEMA_ID, "$.meta.schema",
             f"expected {SCHEMA_ID!r}")
    for i, record in enumerate(loaded.get("metrics", [])):
        validate_metric_record(record, f"$.metrics[{i}]")
    for i, record in enumerate(loaded.get("spans", [])):
        validate_span_record(record, f"$.spans[{i}]")


def validate_step_report_payload(payload: Any) -> None:
    """A JSON step-latency report (``repro.telemetry.report --format json``).

    Shape::

        {"schema": "repro.telemetry/v1", "kind": "step_report",
         "experiment": "...", "count": 40,
         "rows": [{"step": 1, "run_id": "...", "total": 0.21,
                   "phases": {"propose": 0.1, ...}}, ...],
         "means": {"total": 0.2, "phases": {"propose": 0.09, ...}}}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == SCHEMA_ID, "$.schema",
             f"expected {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    _require(payload.get("kind") == "step_report", "$.kind",
             f"expected 'step_report', got {payload.get('kind')!r}")
    experiment = payload.get("experiment")
    _require(isinstance(experiment, str) and experiment, "$.experiment",
             "experiment must be a non-empty string")
    rows = payload.get("rows")
    _require(isinstance(rows, list), "$.rows", "rows must be a list")
    _require(payload.get("count") == len(rows), "$.count",
             "count must equal len(rows)")
    for i, row in enumerate(rows):
        path = f"$.rows[{i}]"
        _require(isinstance(row, dict), path, "row must be an object")
        _require(isinstance(row.get("step"), int)
                 and not isinstance(row.get("step"), bool),
                 f"{path}.step", "step must be an integer")
        _require(isinstance(row.get("run_id"), str), f"{path}.run_id",
                 "run_id must be a string")
        _check_number(row.get("total"), f"{path}.total")
        phases = row.get("phases")
        _require(isinstance(phases, dict), f"{path}.phases",
                 "phases must be an object")
        for phase, duration in phases.items():
            _check_number(duration, f"{path}.phases.{phase}")
    means = payload.get("means")
    _require(isinstance(means, dict), "$.means", "means must be an object")
    _check_number(means.get("total"), "$.means.total")
    _require(isinstance(means.get("phases"), dict), "$.means.phases",
             "means.phases must be an object")
    for phase, duration in means["phases"].items():
        _check_number(duration, f"$.means.phases.{phase}")


# ---------------------------------------------------------------------------
# Benchmark comparison documents (repo-root BENCH_*.json)
# ---------------------------------------------------------------------------

BENCH_SCHEMA_ID = "repro.bench/v1"

#: every stepping mode must report these (all in *simulated* seconds, so
#: the committed document is deterministic run-to-run).
_BENCH_MODE_KEYS = ("steps", "variants", "wall_time", "median_step_latency",
                    "aggregate_steps_per_s", "aggregate_variant_steps_per_s")


def validate_bench_mode(record: Any, path: str = "mode") -> None:
    """One stepping-mode record of a benchmark comparison document."""
    _require(isinstance(record, dict), path, "mode record must be an object")
    for key in _BENCH_MODE_KEYS:
        _require(key in record, f"{path}.{key}", "missing")
        _check_number(record[key], f"{path}.{key}")
    for key in ("steps", "variants"):
        _require(isinstance(record[key], int) and record[key] >= 1,
                 f"{path}.{key}", "must be a positive integer")
    for key in ("wall_time", "median_step_latency", "aggregate_steps_per_s",
                "aggregate_variant_steps_per_s"):
        _require(record[key] > 0, f"{path}.{key}", "must be positive")


def validate_bench_payload(payload: Any) -> None:
    """A benchmark comparison document (repo-root ``BENCH_*.json``).

    Dispatches on ``$.experiment``: ``"tfleet"`` documents follow the
    fleet shape (:func:`validate_fleet_bench_payload`), ``"tobs"``
    documents the observatory shape (:func:`validate_obs_bench_payload`),
    ``"tqueue"`` documents the durable-queue shape
    (:func:`validate_queue_bench_payload`); everything else follows the
    stepping-mode comparison shape
    (:func:`validate_stepping_bench_payload`).
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == BENCH_SCHEMA_ID, "$.schema",
             f"expected {BENCH_SCHEMA_ID!r}, got {payload.get('schema')!r}")
    experiment = payload.get("experiment")
    _require(isinstance(experiment, str) and experiment, "$.experiment",
             "experiment must be a non-empty string")
    if experiment == "tfleet":
        validate_fleet_bench_payload(payload)
    elif experiment == "tobs":
        validate_obs_bench_payload(payload)
    elif experiment == "tqueue":
        validate_queue_bench_payload(payload)
    else:
        validate_stepping_bench_payload(payload)


def validate_stepping_bench_payload(payload: Any) -> None:
    """A stepping-mode comparison document (``BENCH_tperf_ntcp.json``).

    Shape::

        {"schema": "repro.bench/v1", "experiment": "...",
         "config": {"n_steps": int, "n_variants": int},
         "modes": {"sequential": {...}, "pipelined": {...},
                   "ensemble": {...}},
         "speedups": {"pipelined_aggregate_steps_per_s": float,
                      "ensemble_aggregate_variant_steps_per_s": float},
         "bit_exact": {"pipelined": bool, "ensemble_base_variant": bool}}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == BENCH_SCHEMA_ID, "$.schema",
             f"expected {BENCH_SCHEMA_ID!r}, got {payload.get('schema')!r}")
    experiment = payload.get("experiment")
    _require(isinstance(experiment, str) and experiment, "$.experiment",
             "experiment must be a non-empty string")
    config = payload.get("config")
    _require(isinstance(config, dict), "$.config", "config must be an object")
    for key in ("n_steps", "n_variants"):
        _require(isinstance(config.get(key), int) and config[key] >= 1,
                 f"$.config.{key}", "must be a positive integer")
    modes = payload.get("modes")
    _require(isinstance(modes, dict), "$.modes", "modes must be an object")
    for name in ("sequential", "pipelined", "ensemble"):
        _require(name in modes, f"$.modes.{name}", "missing")
        validate_bench_mode(modes[name], f"$.modes.{name}")
    speedups = payload.get("speedups")
    _require(isinstance(speedups, dict), "$.speedups",
             "speedups must be an object")
    for key in ("pipelined_aggregate_steps_per_s",
                "ensemble_aggregate_variant_steps_per_s"):
        _require(key in speedups, f"$.speedups.{key}", "missing")
        _check_number(speedups[key], f"$.speedups.{key}")
    bit_exact = payload.get("bit_exact")
    _require(isinstance(bit_exact, dict), "$.bit_exact",
             "bit_exact must be an object")
    for key in ("pipelined", "ensemble_base_variant"):
        _require(isinstance(bit_exact.get(key), bool), f"$.bit_exact.{key}",
                 "must be a boolean")


def validate_obs_bench_payload(payload: Any) -> None:
    """A grid-observatory document (``BENCH_tobs.json``).

    Shape::

        {"schema": "repro.bench/v1", "experiment": "tobs",
         "config": {"n_steps": int, "slo_interval": float},
         "overhead": {"median_step_off": float, "median_step_on": float,
                      "overhead_fraction": float, "bound": float,
                      "within_bound": bool},
         "rollups": {"series_checked": int, "consistent": bool},
         "determinism": {"query_identical": bool,
                         "postmortem_identical": bool},
         "flight": {"aborted_step": int, "faulted_site": str,
                    "snapshot_events": int,
                    "timeline_names_site_and_step": bool}}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == BENCH_SCHEMA_ID, "$.schema",
             f"expected {BENCH_SCHEMA_ID!r}, got {payload.get('schema')!r}")
    _require(payload.get("experiment") == "tobs", "$.experiment",
             "observatory bench documents use experiment 'tobs'")
    config = payload.get("config")
    _require(isinstance(config, dict), "$.config", "config must be an object")
    _require(isinstance(config.get("n_steps"), int)
             and config["n_steps"] >= 1,
             "$.config.n_steps", "must be a positive integer")
    _check_number(config.get("slo_interval"), "$.config.slo_interval")
    overhead = payload.get("overhead")
    _require(isinstance(overhead, dict), "$.overhead",
             "overhead must be an object")
    for key in ("median_step_off", "median_step_on", "bound"):
        _require(key in overhead, f"$.overhead.{key}", "missing")
        _check_number(overhead[key], f"$.overhead.{key}")
        _require(overhead[key] > 0, f"$.overhead.{key}", "must be positive")
    _check_number(overhead.get("overhead_fraction"),
                  "$.overhead.overhead_fraction")
    _require(isinstance(overhead.get("within_bound"), bool),
             "$.overhead.within_bound", "must be a boolean")
    rollups = payload.get("rollups")
    _require(isinstance(rollups, dict), "$.rollups",
             "rollups must be an object")
    _require(isinstance(rollups.get("series_checked"), int)
             and rollups["series_checked"] >= 1,
             "$.rollups.series_checked", "must be a positive integer")
    _require(isinstance(rollups.get("consistent"), bool),
             "$.rollups.consistent", "must be a boolean")
    determinism = payload.get("determinism")
    _require(isinstance(determinism, dict), "$.determinism",
             "determinism must be an object")
    for key in ("query_identical", "postmortem_identical"):
        _require(isinstance(determinism.get(key), bool),
                 f"$.determinism.{key}", "must be a boolean")
    flight = payload.get("flight")
    _require(isinstance(flight, dict), "$.flight",
             "flight must be an object")
    _require(isinstance(flight.get("aborted_step"), int)
             and flight["aborted_step"] >= 0,
             "$.flight.aborted_step", "must be a non-negative integer")
    _require(isinstance(flight.get("faulted_site"), str)
             and flight["faulted_site"],
             "$.flight.faulted_site", "must be a non-empty string")
    _require(isinstance(flight.get("snapshot_events"), int)
             and flight["snapshot_events"] >= 1,
             "$.flight.snapshot_events", "must be a positive integer")
    _require(isinstance(flight.get("timeline_names_site_and_step"), bool),
             "$.flight.timeline_names_site_and_step", "must be a boolean")


#: per-tenant record keys in a fleet bench document
_FLEET_TENANT_KEYS = ("runs", "steps", "completion_time", "lease_wait_max",
                      "duplicate_executes")


def validate_fleet_bench_payload(payload: Any) -> None:
    """A multi-tenant fleet document (``BENCH_tfleet.json``).

    Shape::

        {"schema": "repro.bench/v1", "experiment": "tfleet",
         "config": {"n_sites": int, "n_tenants": int,
                    "runs_per_tenant": int, "n_experiments": int,
                    "n_steps": int, "sites_per_lease": int},
         "fleet": {"duration": float, "completed": int,
                   "peak_queue_depth": int, "lease_wait_max": float,
                   "lease_wait_mean": float, "duplicate_executes": int},
         "fairness": {"completion_ratio": float, "bound": float,
                      "within_bound": bool},
         "tenants": {"<tenant>": {"runs": int, "steps": int,
                                  "completion_time": float,
                                  "lease_wait_max": float,
                                  "duplicate_executes": int}, ...},
         "bit_exact": {"solo_vs_fleet": bool, "tenants_checked": int},
         "security": {"unauthorized_rejected": bool}}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == BENCH_SCHEMA_ID, "$.schema",
             f"expected {BENCH_SCHEMA_ID!r}, got {payload.get('schema')!r}")
    _require(payload.get("experiment") == "tfleet", "$.experiment",
             "fleet bench documents use experiment 'tfleet'")
    config = payload.get("config")
    _require(isinstance(config, dict), "$.config", "config must be an object")
    for key in ("n_sites", "n_tenants", "runs_per_tenant", "n_experiments",
                "n_steps", "sites_per_lease"):
        _require(isinstance(config.get(key), int) and config[key] >= 1,
                 f"$.config.{key}", "must be a positive integer")
    _require(config["n_experiments"]
             == config["n_tenants"] * config["runs_per_tenant"],
             "$.config.n_experiments",
             "must equal n_tenants * runs_per_tenant")
    fleet = payload.get("fleet")
    _require(isinstance(fleet, dict), "$.fleet", "fleet must be an object")
    for key in ("duration", "lease_wait_max", "lease_wait_mean"):
        _require(key in fleet, f"$.fleet.{key}", "missing")
        _check_number(fleet[key], f"$.fleet.{key}")
        _require(fleet[key] >= 0, f"$.fleet.{key}", "must be non-negative")
    for key in ("completed", "peak_queue_depth", "duplicate_executes"):
        _require(isinstance(fleet.get(key), int) and fleet[key] >= 0,
                 f"$.fleet.{key}", "must be a non-negative integer")
    fairness = payload.get("fairness")
    _require(isinstance(fairness, dict), "$.fairness",
             "fairness must be an object")
    for key in ("completion_ratio", "bound"):
        _require(key in fairness, f"$.fairness.{key}", "missing")
        _check_number(fairness[key], f"$.fairness.{key}")
        _require(fairness[key] >= 1.0, f"$.fairness.{key}",
                 "ratios are >= 1")
    _require(isinstance(fairness.get("within_bound"), bool),
             "$.fairness.within_bound", "must be a boolean")
    tenants = payload.get("tenants")
    _require(isinstance(tenants, dict) and tenants, "$.tenants",
             "tenants must be a non-empty object")
    for tenant, record in tenants.items():
        path = f"$.tenants.{tenant}"
        _require(isinstance(record, dict), path,
                 "tenant record must be an object")
        for key in _FLEET_TENANT_KEYS:
            _require(key in record, f"{path}.{key}", "missing")
            _check_number(record[key], f"{path}.{key}")
        for key in ("runs", "steps"):
            _require(isinstance(record[key], int) and record[key] >= 1,
                     f"{path}.{key}", "must be a positive integer")
        _require(isinstance(record["duplicate_executes"], int)
                 and record["duplicate_executes"] >= 0,
                 f"{path}.duplicate_executes",
                 "must be a non-negative integer")
    bit_exact = payload.get("bit_exact")
    _require(isinstance(bit_exact, dict), "$.bit_exact",
             "bit_exact must be an object")
    _require(isinstance(bit_exact.get("solo_vs_fleet"), bool),
             "$.bit_exact.solo_vs_fleet", "must be a boolean")
    _require(isinstance(bit_exact.get("tenants_checked"), int)
             and bit_exact["tenants_checked"] >= 1,
             "$.bit_exact.tenants_checked", "must be a positive integer")
    security = payload.get("security")
    _require(isinstance(security, dict), "$.security",
             "security must be an object")
    _require(isinstance(security.get("unauthorized_rejected"), bool),
             "$.security.unauthorized_rejected", "must be a boolean")


def validate_queue_bench_payload(payload: Any) -> None:
    """A durable-queue crash-recovery document (``BENCH_tqueue.json``).

    Shape::

        {"schema": "repro.bench/v1", "experiment": "tqueue",
         "config": {"n_sites": int, "n_tenants": int,
                    "runs_per_tenant": int, "n_submissions": int,
                    "n_steps": int, "checkpoint_every": int, "seed": int,
                    "crash_times": [float, ...], "takeover_delay": float},
         "campaign": {"completed": int, "failed": int, "outstanding": int,
                      "redeliveries": int, "voided": int,
                      "incarnations": int, "final_epoch": int,
                      "journal_entries": int, "duration": float},
         "fencing": {"refusals": int, "stale_accepts": int,
                     "refusals_by_epoch": {"<epoch>": int, ...},
                     "refusal_paths": [str, ...],
                     "every_crash_epoch_refused": bool},
         "exactness": {"duplicate_executes": int, "runs_checked": int,
                       "resubmit_deduped": bool,
                       "bit_exact_vs_uncrashed": bool}}
    """
    _require(isinstance(payload, dict), "$", "payload must be an object")
    _require(payload.get("schema") == BENCH_SCHEMA_ID, "$.schema",
             f"expected {BENCH_SCHEMA_ID!r}, got {payload.get('schema')!r}")
    _require(payload.get("experiment") == "tqueue", "$.experiment",
             "durable-queue bench documents use experiment 'tqueue'")
    config = payload.get("config")
    _require(isinstance(config, dict), "$.config", "config must be an object")
    for key in ("n_sites", "n_tenants", "runs_per_tenant", "n_submissions",
                "n_steps", "checkpoint_every"):
        _require(isinstance(config.get(key), int) and config[key] >= 1,
                 f"$.config.{key}", "must be a positive integer")
    _require(config["n_submissions"]
             == config["n_tenants"] * config["runs_per_tenant"],
             "$.config.n_submissions",
             "must equal n_tenants * runs_per_tenant")
    _require(isinstance(config.get("seed"), int), "$.config.seed",
             "must be an integer")
    crash_times = config.get("crash_times")
    _require(isinstance(crash_times, list) and crash_times,
             "$.config.crash_times", "must be a non-empty list")
    for i, value in enumerate(crash_times):
        _check_number(value, f"$.config.crash_times[{i}]")
        _require(value > 0, f"$.config.crash_times[{i}]",
                 "must be positive")
    _check_number(config.get("takeover_delay"), "$.config.takeover_delay")
    campaign = payload.get("campaign")
    _require(isinstance(campaign, dict), "$.campaign",
             "campaign must be an object")
    for key in ("completed", "failed", "outstanding", "redeliveries",
                "voided", "journal_entries"):
        _require(isinstance(campaign.get(key), int) and campaign[key] >= 0,
                 f"$.campaign.{key}", "must be a non-negative integer")
    for key in ("incarnations", "final_epoch"):
        _require(isinstance(campaign.get(key), int) and campaign[key] >= 1,
                 f"$.campaign.{key}", "must be a positive integer")
    _require(campaign["incarnations"] == len(crash_times) + 1,
             "$.campaign.incarnations",
             "must equal len(crash_times) + 1")
    _check_number(campaign.get("duration"), "$.campaign.duration")
    fencing = payload.get("fencing")
    _require(isinstance(fencing, dict), "$.fencing",
             "fencing must be an object")
    for key in ("refusals", "stale_accepts"):
        _require(isinstance(fencing.get(key), int) and fencing[key] >= 0,
                 f"$.fencing.{key}", "must be a non-negative integer")
    by_epoch = fencing.get("refusals_by_epoch")
    _require(isinstance(by_epoch, dict), "$.fencing.refusals_by_epoch",
             "must be an object keyed by refused epoch")
    for epoch, count in by_epoch.items():
        path = f"$.fencing.refusals_by_epoch.{epoch}"
        _require(isinstance(epoch, str) and epoch.isdigit(), path,
                 "epoch keys must be decimal strings (JSON object keys)")
        _require(isinstance(count, int) and count >= 1, path,
                 "refusal counts must be positive integers")
    paths = fencing.get("refusal_paths")
    _require(isinstance(paths, list), "$.fencing.refusal_paths",
             "must be a list of write-path names")
    for i, name in enumerate(paths):
        _require(isinstance(name, str) and bool(name),
                 f"$.fencing.refusal_paths[{i}]",
                 "must be a non-empty string")
    _require(isinstance(fencing.get("every_crash_epoch_refused"), bool),
             "$.fencing.every_crash_epoch_refused", "must be a boolean")
    exactness = payload.get("exactness")
    _require(isinstance(exactness, dict), "$.exactness",
             "exactness must be an object")
    _require(isinstance(exactness.get("duplicate_executes"), int)
             and exactness["duplicate_executes"] >= 0,
             "$.exactness.duplicate_executes",
             "must be a non-negative integer")
    _require(isinstance(exactness.get("runs_checked"), int)
             and exactness["runs_checked"] >= 1,
             "$.exactness.runs_checked", "must be a positive integer")
    for key in ("resubmit_deduped", "bit_exact_vs_uncrashed"):
        _require(isinstance(exactness.get(key), bool),
                 f"$.exactness.{key}", "must be a boolean")
