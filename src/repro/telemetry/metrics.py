"""Counters, gauges, and histograms.

Instruments are cheap plain-Python objects owned by a
:class:`MetricRegistry`; every instrument is identified by a dotted name
following the repo-wide convention ``layer.component.name`` (e.g.
``net.rpc.latency``, ``core.server.executed``) plus an optional label set
(e.g. ``site="ntcp-uiuc"``).  Asking the registry twice for the same
name+labels returns the same instrument, so call sites never coordinate.

Histograms keep every observation (experiments here run thousands of
steps, not millions of requests), which makes percentile math exact
rather than bucketed.
"""

from __future__ import annotations

from typing import Any, Iterator


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common identity: dotted name plus frozen labels."""

    kind = "metric"

    def __init__(self, name: str, labels: dict[str, Any]):
        self.name = name
        self.labels = {str(k): str(v) for k, v in labels.items()}

    def describe(self) -> dict[str, Any]:
        """One serialization-friendly record (see telemetry.schema)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lbl = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"<{type(self).__name__} {self.name}{{{lbl}}}>"


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]):
        super().__init__(name, labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "type": "counter", "labels": self.labels,
                "value": self.value}


class Gauge(Metric):
    """A value that goes up and down (queue depth, lag, utilization)."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any]):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "type": "gauge", "labels": self.labels,
                "value": self.value}


class Histogram(Metric):
    """Exact-percentile histogram over all observations."""

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, Any]):
        super().__init__(name, labels)
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        value = float(value)
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return float(sum(self._values))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self._values else 0.0

    def _ordered(self) -> list[float]:
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        return self._values

    def percentile(self, p: float) -> float:
        """Exact percentile with linear interpolation between ranks.

        ``p`` is in [0, 100]; an empty histogram reports 0.0.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        values = self._ordered()
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = (p / 100.0) * (len(values) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(values) - 1)
        frac = rank - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    def summary(self) -> dict[str, float]:
        values = self._ordered()
        return {
            "count": len(values),
            "sum": self.sum,
            "mean": self.mean,
            "min": values[0] if values else 0.0,
            "max": values[-1] if values else 0.0,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "type": "histogram", "labels": self.labels,
                "summary": self.summary()}


class MetricRegistry:
    """All instruments of one run, keyed by name + labels."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], Metric] = {}

    def _get(self, cls, name: str, labels: dict[str, Any]):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> list[dict[str, Any]]:
        """Serialization-friendly records for every instrument, sorted."""
        return sorted((m.describe() for m in self._metrics.values()),
                      key=lambda d: (d["name"], sorted(d["labels"].items())))

    def find(self, name: str, **labels: Any) -> Metric | None:
        """The instrument registered under name+labels, or None."""
        return self._metrics.get((name, _label_key(labels)))
