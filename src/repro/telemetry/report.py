"""Render the MOST step-latency breakdown from a trace.

The coordinator emits one ``coordinator.step`` span per MS-PSDS step with
child spans for each phase (``integrate`` / ``propose`` / ``execute`` /
``commit``, plus ``retry_wait`` when a fault policy back-off ran).  This
module turns those spans — live from a :class:`TelemetryHub` or loaded
back from a JSONL export — into the paper's Figure-5-style step-time
decomposition table.

Usage::

    python -m repro.telemetry.report benchmarks/out/tperf_ntcp.trace.jsonl
    python -m repro.telemetry.report --critical-path trace.jsonl
    python -m repro.telemetry.report --format json trace.jsonl

With ``--critical-path`` the per-step phase table is replaced by the
:mod:`repro.monitor.critical_path` blame analysis: which site's execute
leg dominated each step, and how the idle slack distributes.  With
``--format json`` the rows are emitted as a schema-validated
``repro.telemetry/v1`` ``step_report`` document instead of the text
table, so the observatory, CI, and scripts consume step breakdowns
without screen-scraping the renderer.
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Any

STEP_SPAN = "coordinator.step"
PHASES = ("integrate", "propose", "execute", "commit", "retry_wait",
          "propose_execute")
#: the contiguous phases of a clean barrier-mode step (their durations
#: sum to the step wall time — asserted by the integration tests)
CORE_PHASES = ("integrate", "propose", "execute", "commit")


def _as_record(span: Any) -> dict[str, Any]:
    return span if isinstance(span, dict) else span.to_dict()


def step_rows(spans: list[Any]) -> list[dict[str, Any]]:
    """Fold a span list into one row per step.

    Accepts live :class:`~repro.telemetry.spans.Span` objects or the dict
    records of a JSONL export.  Returns rows sorted by step number::

        {"step": 3, "run_id": "most", "total": 0.21,
         "phases": {"integrate": 0.0, "propose": 0.1, ...}}
    """
    records = [_as_record(s) for s in spans]
    steps: dict[str, dict[str, Any]] = {}
    for rec in records:
        if rec["name"] == STEP_SPAN and rec.get("duration") is not None:
            steps[rec["span_id"]] = {
                "step": int(rec["attrs"].get("step", -1)),
                "run_id": rec["attrs"].get("run_id", ""),
                "total": rec["duration"],
                "phases": {},
            }
    for rec in records:
        parent = rec.get("parent_id")
        if parent not in steps or rec.get("duration") is None:
            continue
        phase = rec["name"].rsplit(".", 1)[-1]
        if phase in PHASES:
            row = steps[parent]["phases"]
            row[phase] = row.get(phase, 0.0) + rec["duration"]
    return sorted(steps.values(), key=lambda r: r["step"])


def render_step_table(rows: list[dict[str, Any]], *,
                      max_rows: int | None = 20) -> str:
    """The step-latency breakdown as an aligned text table."""
    if not rows:
        return "no coordinator.step spans in trace"
    phases = [p for p in PHASES
              if any(p in r["phases"] for r in rows)]
    header = f"{'step':>6}" + "".join(f"{p:>16}" for p in phases) \
        + f"{'total [s]':>12}"
    lines = [header, "-" * len(header)]
    shown = rows if max_rows is None else rows[:max_rows]
    for row in shown:
        cells = "".join(f"{row['phases'].get(p, 0.0):>16.4f}" for p in phases)
        lines.append(f"{row['step']:>6}{cells}{row['total']:>12.4f}")
    if max_rows is not None and len(rows) > max_rows:
        lines.append(f"... ({len(rows) - max_rows} more steps)")
    n = len(rows)
    mean_total = sum(r["total"] for r in rows) / n
    means = "".join(
        f"{sum(r['phases'].get(p, 0.0) for r in rows) / n:>16.4f}"
        for p in phases)
    lines.append("-" * len(header))
    lines.append(f"{'mean':>6}{means}{mean_total:>12.4f}")
    return "\n".join(lines)


def step_report_payload(rows: list[dict[str, Any]],
                        experiment: str) -> dict[str, Any]:
    """The rows as a validated ``repro.telemetry/v1`` step_report document."""
    from repro.telemetry.schema import SCHEMA_ID, validate_step_report_payload

    n = len(rows)
    phases = sorted({phase for row in rows for phase in row["phases"]})
    payload = {
        "schema": SCHEMA_ID, "kind": "step_report",
        "experiment": experiment, "count": n,
        "rows": [{"step": row["step"], "run_id": row["run_id"],
                  "total": row["total"], "phases": dict(row["phases"])}
                 for row in rows],
        "means": {
            "total": sum(r["total"] for r in rows) / n if n else 0.0,
            "phases": {phase: sum(r["phases"].get(phase, 0.0)
                                  for r in rows) / n
                       for phase in phases}},
    }
    validate_step_report_payload(payload)
    return payload


def report_from_spans(spans: list[Any], **kwargs: Any) -> str:
    return render_step_table(step_rows(spans), **kwargs)


def report_from_jsonl(path: str | pathlib.Path, **kwargs: Any) -> str:
    """Load a :meth:`TelemetryHub.export_jsonl` file and render the table."""
    from repro.telemetry.hub import TelemetryHub

    loaded = TelemetryHub.load_jsonl(path)
    title = loaded["meta"].get("experiment", str(path))
    table = render_step_table(step_rows(loaded["spans"]), **kwargs)
    return f"step-latency breakdown — {title}\n{table}"


def json_report_from_jsonl(path: str | pathlib.Path) -> dict[str, Any]:
    """Load a trace export and build its step_report document."""
    from repro.telemetry.hub import TelemetryHub

    loaded = TelemetryHub.load_jsonl(path)
    experiment = loaded["meta"].get("experiment") or str(path)
    return step_report_payload(step_rows(loaded["spans"]), experiment)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    critical_path = "--critical-path" in argv
    argv = [a for a in argv if a != "--critical-path"]
    output_format = "text"
    if "--format" in argv:
        at = argv.index("--format")
        if at + 1 >= len(argv) or argv[at + 1] not in ("text", "json"):
            print("error: --format takes 'text' or 'json'", file=sys.stderr)
            return 2
        output_format = argv[at + 1]
        argv = argv[:at] + argv[at + 2:]
    if critical_path and output_format == "json":
        print("error: --critical-path has no json format", file=sys.stderr)
        return 2
    if not argv:
        print("usage: python -m repro.telemetry.report "
              "[--critical-path] [--format text|json] <trace.jsonl> [...]",
              file=sys.stderr)
        return 2
    for path in argv:
        if not pathlib.Path(path).exists():
            print(f"error: no such trace file: {path}", file=sys.stderr)
            return 2
        try:
            if critical_path:
                from repro.monitor.critical_path import (
                    report_from_jsonl as cp_report)

                print(cp_report(path))
            elif output_format == "json":
                print(json.dumps(json_report_from_jsonl(path),
                                 indent=2, sort_keys=True))
            else:
                print(report_from_jsonl(path))
        except BrokenPipeError:  # e.g. piped into head
            return 0
        except (ValueError, KeyError) as exc:  # malformed trace file
            print(f"error: not a telemetry trace: {path} ({exc})",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
