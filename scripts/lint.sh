#!/bin/sh
# Lint gate: ruff when available (byte-compile fallback otherwise), then
# the project-specific static-analysis pass (repro.analysis: RPR rules +
# NTCP protocol conformance).  Ruff configuration lives in pyproject.toml
# ([tool.ruff]); the RPR rule table lives in docs/ARCHITECTURE.md.
set -e
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "lint: ruff check"
    ruff check src tests benchmarks examples scripts
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "lint: python -m ruff check"
    python -m ruff check src tests benchmarks examples scripts
else
    echo "lint: ruff not installed; falling back to compileall"
    python -m compileall -q src tests benchmarks examples scripts
fi

echo "lint: repro.analysis (RPR rules + NTCP conformance)"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro.analysis src tests examples benchmarks scripts

echo "lint: OK"
