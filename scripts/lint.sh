#!/bin/sh
# Lint gate: ruff when available, byte-compile fallback otherwise.
#
# The container used for CI may not ship ruff; the fallback still catches
# syntax errors in every tree we ship.  Configuration lives in
# pyproject.toml ([tool.ruff]).
set -e
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "lint: ruff check"
    ruff check src tests benchmarks examples scripts
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "lint: python -m ruff check"
    python -m ruff check src tests benchmarks examples scripts
else
    echo "lint: ruff not installed; falling back to compileall"
    python -m compileall -q src tests benchmarks examples scripts
fi
echo "lint: OK"
