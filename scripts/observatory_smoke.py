#!/usr/bin/env python
"""CI smoke target: the grid observatory records, queries, and replays.

Two short MOST runs with the observatory attached
(``repro.observatory``):

1. **Clean** — a monitored run whose metrics stream must land in the
   time-series store, answer a range query with a positive step-time
   aggregate, keep every SLO error budget intact, and leave zero flight
   snapshots.  The store dump must round-trip through the offline
   loader to a byte-identical query answer.
2. **Aborted** — the same run with a fatal mid-run outage.  Must leave
   exactly one flight snapshot whose rendered postmortem timeline names
   the faulted site and the aborted step.

Exits non-zero on any failure, so CI can gate on
``make observatory-smoke``.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.most import ExperimentSession, MOSTConfig
from repro.observatory import TimeSeriesStore, run_query
from repro.observatory.schema import validate_dump

QUERY = {"metric": "coordinator.mspsds.step_time",
         "selector": {"stat": "p95"}, "agg": "max"}


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> int:
    config = MOSTConfig().scaled(40)

    print("[1] clean observed run (store, query, SLO budgets)")
    clean = (ExperimentSession(config, run_id="obs-smoke")
             .with_fault_tolerance()
             .with_observatory()
             .run())
    if not clean.result.completed:
        fail("clean run did not complete")
    obs = clean.observatory
    stats = obs.store.stats()
    if stats["samples_ingested"] == 0:
        fail("store ingested no streamed metric samples")
    doc = obs.query(dict(QUERY))
    if doc["aggregate"] is None or doc["aggregate"]["value"] <= 0.0:
        fail(f"step-time query returned {doc['aggregate']!r}")
    budgets = obs.slo.budget_remaining()
    low = {name: b for name, b in budgets.items() if b < 1.0}
    if low:
        fail(f"clean run burned SLO error budget: {low}")
    if obs.recorder.snapshots:
        fail(f"clean run left {len(obs.recorder.snapshots)} "
             f"flight snapshots")
    print(f"    {stats['series']} series, {stats['points']} points; "
          f"max p95 step time {doc['aggregate']['value']:.3f}s; "
          f"{len(budgets)} SLOs at full budget")

    dump = obs.dump()
    validate_dump(dump)
    offline = TimeSeriesStore.from_records(dump["series"])
    request = dict(QUERY, end=dump["time"])
    live = json.dumps(obs.query(dict(request)), sort_keys=True)
    replay = json.dumps(run_query(offline, dict(request),
                                  now=dump["time"]), sort_keys=True)
    if live != replay:
        fail("offline dump replay disagrees with the live store")
    print(f"    dump round-trip: {len(dump['series'])} series records, "
          f"replayed query identical")

    print("[2] aborted run (flight recorder + postmortem)")
    aborted = (ExperimentSession(config, run_id="obs-smoke-abort")
               .with_faults(outage_duration=float("inf"))
               .with_observatory()
               .run())
    if aborted.result.completed:
        fail("seeded outage did not abort the run")
    obs = aborted.observatory
    if len(obs.recorder.snapshots) != 1:
        fail(f"expected exactly one flight snapshot, got "
             f"{len(obs.recorder.snapshots)}")
    step = aborted.result.aborted_at_step
    timeline = obs.postmortem("obs-smoke-abort")
    if "uiuc" not in timeline or str(step) not in timeline:
        fail(f"postmortem does not name site 'uiuc' and step {step}")
    for line in timeline.splitlines()[:3]:
        print(f"    {line}")
    print(f"    snapshot at step {step}; timeline names the faulted "
          f"site and step")

    print("observatory smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
