#!/usr/bin/env python
"""CI smoke target: the multi-tenant fleet holds its guarantees.

A short campaign (4 tenants x 2 runs over 4 shared sites, 2 sites per
lease) exercised twice (``repro.fleet``):

1. **Clean** — every experiment completes, the fair-share queue keeps the
   max/min tenant completion ratio bounded, per-tenant at-most-once holds
   (zero duplicate executes attributed to any lease), one sampled
   tenant's history is bit-exact against its solo run, and an identity
   the fleet never admitted is refused with a ``SecurityError``.
2. **Seeded outages** — the same campaign under a deterministic outage
   plan on the *shared* sites: no tenant is starved, the multi-tenant
   chaos invariants (completion, monotone commits, per-lease
   at-most-once, bit-exactness when undegraded) all pass.

Exits non-zero on any failure, so CI can gate on ``make fleet-smoke``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.chaos import (
    arm_fleet_outages,
    check_fleet_invariants,
    make_fleet_outage_plan,
)
from repro.fleet import (
    ExperimentRequest,
    FleetScheduler,
    SitePool,
    TenantRegistry,
    build_fleet_grid,
    solo_displacement_history,
)
from repro.net import RemoteException

N_TENANTS = 4
RUNS_PER_TENANT = 3
N_SITES = 4
SITES_PER_LEASE = 2
N_STEPS = 10
FAIRNESS_BOUND = 1.5
OUTAGE_SEED = 7


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def requests(*, degradation: bool = False) -> list:
    out = []
    for i in range(N_TENANTS):
        tenant = f"t{i:02d}"
        scale = 0.75 + 0.5 * i / (N_TENANTS - 1)
        for run in range(RUNS_PER_TENANT):
            out.append(ExperimentRequest(
                tenant=tenant, run_id=f"{tenant}-r{run}", n_steps=N_STEPS,
                n_sites=SITES_PER_LEASE, motion_scale=scale,
                degradation=degradation))
    return out


def build_fleet():
    grid = build_fleet_grid(N_SITES)
    pool = SitePool(grid.kernel, grid.sites.values())
    registry = TenantRegistry(grid)
    return grid, pool, registry, FleetScheduler(grid, pool, registry)


def probe_outsider(grid, registry) -> None:
    outsider = registry.outsider_client()
    site = next(iter(grid.sites.values()))
    seen = {}

    def probe():
        try:
            yield from outsider.propose(site.handle, "outsider-probe", [])
        except RemoteException as exc:
            seen["remote_type"] = exc.remote_type

    grid.kernel.run(until=grid.kernel.process(probe(), name="outsider"))
    if seen.get("remote_type") != "SecurityError":
        fail("outsider NTCP call was not refused by GSI authorization")
    print("    outsider NTCP call refused (SecurityError)")


def main() -> int:
    n = N_TENANTS * RUNS_PER_TENANT

    print(f"[1] clean campaign ({n} experiments, {N_SITES} shared sites)")
    grid, pool, registry, fleet = build_fleet()
    reqs = requests()
    for request in reqs:
        fleet.submit(request)
    result = fleet.run()
    summary = result.summary()
    if summary["completed"] != n:
        fail(f"only {summary['completed']}/{n} experiments completed")
    if summary["duplicate_executes"] != 0:
        fail("duplicate executes attributed to a lease on the shared pool")
    ratio = result.completion_ratio()
    if ratio > FAIRNESS_BOUND:
        fail(f"fairness ratio {ratio:.2f} exceeds bound {FAIRNESS_BOUND}")
    sampled = result.outcomes[-1]
    solo = solo_displacement_history(sampled.request)
    if not np.array_equal(sampled.result.displacement_history(), solo):
        fail(f"run {sampled.run_id} differs from its solo history")
    print(f"    {summary['completed']} completed, fairness {ratio:.2f}, "
          f"0 duplicate executes, {sampled.run_id} bit-exact vs solo")
    probe_outsider(grid, registry)

    print(f"[2] seeded outages on shared sites (seed {OUTAGE_SEED})")
    grid, pool, registry, fleet = build_fleet()
    for request in requests(degradation=True):
        fleet.submit(request)
    plan = make_fleet_outage_plan(OUTAGE_SEED, sorted(grid.sites),
                                  n_events=3)
    arm_fleet_outages(grid, plan)
    result = fleet.run()
    verdict = check_fleet_invariants(result.outcomes)
    for violation in verdict["violations"]:
        print(f"    ! {violation}")
    if not verdict["ok"]:
        fail("multi-tenant chaos invariants violated")
    ratio = result.completion_ratio()
    if ratio > 2.0:
        fail(f"outages starved a tenant (completion ratio {ratio:.2f})")
    print(f"    {result.summary()['completed']}/{n} completed under "
          f"{len(plan)} outages, fairness {ratio:.2f}, "
          f"{verdict['duplicate_executes']} duplicate requests absorbed")

    print("fleet smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
