#!/usr/bin/env python
"""Validate the committed benchmark comparison documents.

Checks every ``BENCH_*.json`` at the repo root (and the smoke-mode
document under ``benchmarks/out/``, when present) against the
``repro.bench/v1`` schema, and re-asserts the performance floors the
documents exist to witness: pipelined stepping >= 1.5x aggregate steps/s
over sequential, ensembles >= half their variant count in aggregate
variant-steps/s, committed histories bit-exact.

Run:  python scripts/validate_bench.py   (or ``make validate-bench``)
"""

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.telemetry.schema import validate_bench_payload  # noqa: E402


def check(path: pathlib.Path, *, committed: bool) -> None:
    payload = json.loads(path.read_text())
    validate_bench_payload(payload)
    speed = payload["speedups"]
    assert payload["bit_exact"]["pipelined"], f"{path}: pipelined not bit-exact"
    assert payload["bit_exact"]["ensemble_base_variant"], \
        f"{path}: ensemble base variant not bit-exact"
    assert speed["pipelined_aggregate_steps_per_s"] >= 1.5, \
        f"{path}: pipelined speedup below 1.5x"
    floor = payload["config"]["n_variants"] / 2.0
    if committed:
        floor = max(floor, 4.0)
    assert speed["ensemble_aggregate_variant_steps_per_s"] >= floor, \
        f"{path}: ensemble speedup below {floor}x"
    print(f"  {path.relative_to(ROOT)}: OK "
          f"(pipelined {speed['pipelined_aggregate_steps_per_s']:.2f}x, "
          f"ensemble {speed['ensemble_aggregate_variant_steps_per_s']:.2f}x)")


def main() -> int:
    committed = sorted(ROOT.glob("BENCH_*.json"))
    if not committed:
        print("no BENCH_*.json documents at the repo root", file=sys.stderr)
        return 1
    print("validating benchmark documents (repro.bench/v1):")
    for path in committed:
        check(path, committed=True)
    smoke = ROOT / "benchmarks" / "out" / "BENCH_tperf_ntcp.smoke.json"
    if smoke.exists():
        check(smoke, committed=False)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
