#!/usr/bin/env python
"""Validate the committed benchmark comparison documents.

Checks every ``BENCH_*.json`` at the repo root (and the smoke-mode
documents under ``benchmarks/out/``, when present) against the
``repro.bench/v1`` schema, and re-asserts the floors each document
exists to witness:

* stepping-mode documents (``BENCH_tperf_ntcp.json``) — pipelined
  stepping >= 1.5x aggregate steps/s over sequential, ensembles >= half
  their variant count in aggregate variant-steps/s, committed histories
  bit-exact;
* fleet documents (``BENCH_tfleet.json``) — every experiment completed,
  zero duplicate executes, fairness ratio within its bound, histories
  bit-exact against solo runs, the unauthorized call rejected, and (for
  the committed document) >= 100 experiments over <= 8 shared sites;
* observatory documents (``BENCH_tobs.json``) — observed median step
  time within its bound of the unobserved run, every checked rollup
  bucket consistent with its raw points, query + postmortem documents
  identical across repeated campaigns, and the seeded abort's flight
  snapshot naming the faulted site and step;
* durable-queue documents (``BENCH_tqueue.json``) — every submission
  completed despite the scheduler crashes, zero duplicate executes and
  zero stale-epoch accepts, at least one fencing refusal per crash
  epoch, the resubmitted id deduped, histories bit-exact against the
  uncrashed campaign, and (for the committed document) >= 60
  submissions surviving >= 3 crashes.

Run:  python scripts/validate_bench.py   (or ``make validate-bench``)
"""

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.telemetry.schema import validate_bench_payload  # noqa: E402


def check_stepping(path: pathlib.Path, payload: dict, *,
                   committed: bool) -> None:
    speed = payload["speedups"]
    assert payload["bit_exact"]["pipelined"], f"{path}: pipelined not bit-exact"
    assert payload["bit_exact"]["ensemble_base_variant"], \
        f"{path}: ensemble base variant not bit-exact"
    assert speed["pipelined_aggregate_steps_per_s"] >= 1.5, \
        f"{path}: pipelined speedup below 1.5x"
    floor = payload["config"]["n_variants"] / 2.0
    if committed:
        floor = max(floor, 4.0)
    assert speed["ensemble_aggregate_variant_steps_per_s"] >= floor, \
        f"{path}: ensemble speedup below {floor}x"
    print(f"  {path.relative_to(ROOT)}: OK "
          f"(pipelined {speed['pipelined_aggregate_steps_per_s']:.2f}x, "
          f"ensemble {speed['ensemble_aggregate_variant_steps_per_s']:.2f}x)")


def check_fleet(path: pathlib.Path, payload: dict, *,
                committed: bool) -> None:
    config = payload["config"]
    fleet = payload["fleet"]
    assert fleet["completed"] == config["n_experiments"], \
        f"{path}: not every experiment completed"
    assert fleet["duplicate_executes"] == 0, \
        f"{path}: duplicate executes on shared sites"
    assert payload["fairness"]["within_bound"], \
        f"{path}: fairness ratio exceeds its bound"
    assert payload["bit_exact"]["solo_vs_fleet"], \
        f"{path}: fleet histories not bit-exact vs solo runs"
    assert payload["security"]["unauthorized_rejected"], \
        f"{path}: unauthorized call was not rejected"
    if committed:
        assert config["n_experiments"] >= 100, \
            f"{path}: committed fleet document needs >= 100 experiments"
        assert config["n_sites"] <= 8, \
            f"{path}: committed fleet document needs <= 8 shared sites"
    print(f"  {path.relative_to(ROOT)}: OK "
          f"({config['n_experiments']} experiments / "
          f"{config['n_sites']} sites, fairness "
          f"{payload['fairness']['completion_ratio']:.2f} <= "
          f"{payload['fairness']['bound']})")


def check_obs(path: pathlib.Path, payload: dict, *,
              committed: bool) -> None:
    overhead = payload["overhead"]
    assert overhead["within_bound"], \
        f"{path}: observatory overhead exceeds its bound"
    assert abs(overhead["overhead_fraction"]) <= overhead["bound"], \
        f"{path}: overhead_fraction disagrees with within_bound"
    assert payload["rollups"]["consistent"], \
        f"{path}: rollup buckets disagree with their raw points"
    assert payload["determinism"]["query_identical"], \
        f"{path}: query documents not identical across campaigns"
    assert payload["determinism"]["postmortem_identical"], \
        f"{path}: postmortems not identical across campaigns"
    flight = payload["flight"]
    assert flight["timeline_names_site_and_step"], \
        f"{path}: postmortem does not name the faulted site and step"
    if committed:
        assert payload["rollups"]["series_checked"] >= 1, \
            f"{path}: committed observatory document checked no rollups"
    print(f"  {path.relative_to(ROOT)}: OK "
          f"(overhead {overhead['overhead_fraction']:+.2%} within "
          f"{overhead['bound']:.0%}, {payload['rollups']['series_checked']} "
          f"rollup series, abort at step {flight['aborted_step']} "
          f"on {flight['faulted_site']})")


def check_tqueue(path: pathlib.Path, payload: dict, *,
                 committed: bool) -> None:
    config = payload["config"]
    campaign = payload["campaign"]
    fencing = payload["fencing"]
    exact = payload["exactness"]
    assert campaign["completed"] == config["n_submissions"], \
        f"{path}: not every submission completed"
    assert campaign["outstanding"] == 0, \
        f"{path}: submissions left outstanding after the campaign"
    assert exact["duplicate_executes"] == 0, \
        f"{path}: duplicate executes under redelivery"
    assert fencing["stale_accepts"] == 0, \
        f"{path}: a stale-epoch write was accepted"
    assert fencing["every_crash_epoch_refused"], \
        f"{path}: a crash epoch produced no fencing refusal"
    for epoch in range(1, len(config["crash_times"]) + 1):
        assert fencing["refusals_by_epoch"].get(str(epoch), 0) >= 1, \
            f"{path}: crash epoch {epoch} has no recorded refusal"
    assert exact["resubmit_deduped"], \
        f"{path}: resubmitted id was not deduped"
    assert exact["bit_exact_vs_uncrashed"], \
        f"{path}: recovered histories differ from the uncrashed run"
    if committed:
        assert config["n_submissions"] >= 60, \
            f"{path}: committed queue document needs >= 60 submissions"
        assert len(config["crash_times"]) >= 3, \
            f"{path}: committed queue document needs >= 3 crashes"
    print(f"  {path.relative_to(ROOT)}: OK "
          f"({config['n_submissions']} submissions / "
          f"{len(config['crash_times'])} crashes, "
          f"{campaign['redeliveries']} redeliveries, "
          f"{fencing['refusals']} refusals, "
          f"{exact['duplicate_executes']} duplicate executes)")


def check(path: pathlib.Path, *, committed: bool) -> None:
    payload = json.loads(path.read_text())
    validate_bench_payload(payload)
    if payload["experiment"] == "tfleet":
        check_fleet(path, payload, committed=committed)
    elif payload["experiment"] == "tobs":
        check_obs(path, payload, committed=committed)
    elif payload["experiment"] == "tqueue":
        check_tqueue(path, payload, committed=committed)
    else:
        check_stepping(path, payload, committed=committed)


def main() -> int:
    committed = sorted(ROOT.glob("BENCH_*.json"))
    if not committed:
        print("no BENCH_*.json documents at the repo root", file=sys.stderr)
        return 1
    print("validating benchmark documents (repro.bench/v1):")
    for path in committed:
        check(path, committed=True)
    for name in ("BENCH_tperf_ntcp.smoke.json", "BENCH_tfleet.smoke.json",
                  "BENCH_tobs.smoke.json", "BENCH_tqueue.smoke.json"):
        smoke = ROOT / "benchmarks" / "out" / name
        if smoke.exists():
            check(smoke, committed=False)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
