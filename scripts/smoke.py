#!/usr/bin/env python
"""CI smoke target: run a short experiment, validate its telemetry.

A MOST-shaped two-site run (a few dozen steps), then the full telemetry
pipeline end-to-end:

1. export the run as JSONL (meta + metrics + spans) and re-load it;
2. schema-validate the export and the metrics document;
3. check the Figure-5 invariant — each step's phase spans sum to the
   step's wall time;
4. render the step-latency table with :mod:`repro.telemetry.report`.

Exits non-zero on any failure, so CI can gate on
``python scripts/smoke.py``.  Artifacts land in ``benchmarks/out/``.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import (
    GroundMotion,
    Kernel,
    LinearSubstructure,
    Network,
    NTCPClient,
    NTCPServer,
    RpcClient,
    ServiceContainer,
    SimulationCoordinator,
    SimulationPlugin,
    SiteBinding,
    StructuralModel,
    TelemetryHub,
)
from repro.telemetry import validate_jsonl_export, validate_metrics_payload
from repro.telemetry.report import CORE_PHASES, report_from_jsonl, step_rows

OUT_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "out"
N_STEPS = 40


def run_experiment():
    kernel = Kernel()
    net = Network(kernel, seed=0)
    net.add_host("coord")
    handles = {}
    for name, latency in (("uiuc", 0.02), ("colorado", 0.03)):
        net.add_host(name)
        net.connect("coord", name, latency=latency)
        container = ServiceContainer(net, name)
        server = NTCPServer(f"ntcp-{name}", SimulationPlugin(
            LinearSubstructure(name, [[50.0]], [0]), compute_time=0.1))
        handles[name] = container.deploy(server)
    model = StructuralModel(mass=[[2.0, 0.0], [0.0, 2.0]],
                            stiffness=[[150.0, -50.0], [-50.0, 50.0]],
                            damping=[[1.0, 0.0], [0.0, 1.0]])
    motion = GroundMotion(dt=0.02, accel=np.sin(np.arange(N_STEPS) * 0.3))
    client = NTCPClient(RpcClient(net, "coord", default_timeout=1e3),
                        timeout=1e3, retries=1)
    coordinator = SimulationCoordinator(
        run_id="smoke", client=client, model=model, motion=motion,
        sites=[SiteBinding("uiuc", handles["uiuc"], [0]),
               SiteBinding("colorado", handles["colorado"], [1])],
        execution_timeout=1e3)
    result = kernel.run(until=kernel.process(coordinator.run()))
    return result, kernel


def main() -> int:
    result, kernel = run_experiment()
    if not result.completed:
        print(f"FAIL: experiment aborted: {result.aborted_reason}")
        return 1
    print(f"experiment: {result.steps_completed}/{result.target_steps} steps "
          f"in {result.wall_duration:.1f} simulated s")

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    trace_path = kernel.telemetry.export_jsonl(
        OUT_DIR / "smoke.trace.jsonl", experiment="smoke")
    loaded = TelemetryHub.load_jsonl(trace_path)
    validate_jsonl_export(loaded)
    print(f"trace: {len(loaded['metrics'])} metrics, "
          f"{len(loaded['spans'])} spans -> {trace_path}")

    payload = kernel.telemetry.metrics_payload("smoke")
    validate_metrics_payload(payload)
    metrics_path = OUT_DIR / "smoke.metrics.json"
    metrics_path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                            + "\n")
    print(f"metrics: schema-valid -> {metrics_path}")

    rows = step_rows(loaded["spans"])
    if len(rows) != result.steps_completed + 1:  # init + integrated steps
        print(f"FAIL: {len(rows)} step spans for "
              f"{result.steps_completed} steps")
        return 1
    for row in rows[1:]:
        phase_sum = sum(row["phases"].get(p, 0.0) for p in CORE_PHASES)
        if abs(phase_sum - row["total"]) > 1e-9:
            print(f"FAIL: step {row['step']} phases sum to {phase_sum}, "
                  f"step wall time is {row['total']}")
            return 1
    print(f"decomposition: {len(rows)} steps, phases sum to step wall time")

    print()
    print(report_from_jsonl(trace_path, max_rows=5))
    print()
    print("smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
