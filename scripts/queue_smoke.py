#!/usr/bin/env python
"""CI smoke target: the durable queue survives scheduler crashes.

A short campaign (4 tenants x 2 runs over 4 shared sites) exercised
three ways (``repro.queue``):

1. **Crash recovery** — the repository-journaled campaign with one
   mid-flight scheduler kill: every submission reaches a terminal state,
   the crash epoch is refused at least once on a durable write path, no
   stale epoch is ever accepted, zero duplicate executes, and every
   history is bit-exact against the same campaign run uncrashed.
2. **Repository outage** — the same campaign with seeded outages cutting
   the repository host under the journal's claim/terminal appends: the
   shared :class:`~repro.net.retry.RetryPolicy` absorbs the outage and
   the campaign still drains completely.
3. **File journal round-trip** — the CLI path: submissions appended to a
   JSONL journal by one process-like pass are replayed by another,
   resubmission is deduped, and a drain leaves nothing outstanding.

Exits non-zero on any failure, so CI can gate on ``make queue-smoke``.
"""

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.chaos import (
    arm_fleet_outages,
    check_fleet_invariants,
    make_repo_outage_plan,
)
from repro.fleet import SitePool, TenantRegistry, build_fleet_grid
from repro.queue import (
    ExperimentQueue,
    FencingAuthority,
    FileJournalStore,
    InMemoryJournalStore,
    QueueSubmission,
    attach_durable_repository,
    run_durable_campaign,
)
from repro.sim import Kernel

N_TENANTS = 4
RUNS_PER_TENANT = 2
N_SITES = 4
N_STEPS = 10
CHECKPOINT_EVERY = 4
CRASH_AT = 2.0
TAKEOVER_DELAY = 8.0
OUTAGE_SEED = 7


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def submissions() -> list:
    out = []
    for i in range(N_TENANTS):
        tenant = f"t{i:02d}"
        scale = 0.75 + 0.5 * i / (N_TENANTS - 1)
        for run in range(RUNS_PER_TENANT):
            out.append(QueueSubmission(
                submission_id=f"{tenant}-r{run}", tenant=tenant,
                n_steps=N_STEPS, n_sites=1, motion_scale=scale,
                checkpoint_every=CHECKPOINT_EVERY))
    return out


def build_queue(n_sites=N_SITES, *, durable=True):
    grid = build_fleet_grid(n_sites)
    pool = SitePool(grid.kernel, grid.sites.values())
    registry = TenantRegistry(grid)
    store = (attach_durable_repository(grid, name="smoke")
             if durable else InMemoryJournalStore())
    queue = ExperimentQueue(grid.kernel, store,
                            FencingAuthority(grid.kernel))
    return grid, pool, registry, queue


def main() -> int:
    n = N_TENANTS * RUNS_PER_TENANT
    subs = submissions()

    print(f"[1] crash recovery ({n} submissions, 1 scheduler kill)")
    grid, pool, registry, queue = build_queue(durable=False)
    baseline = run_durable_campaign(grid, pool, registry, queue, subs)
    base_histories = baseline.histories()
    if baseline.summary()["completed"] != n:
        fail("uncrashed reference campaign did not complete")

    grid, pool, registry, queue = build_queue()
    result = run_durable_campaign(
        grid, pool, registry, queue, subs, crash_after=(CRASH_AT,),
        takeover_delay=TAKEOVER_DELAY)
    summary = result.summary()
    if summary["completed"] != n or summary["outstanding"] != 0:
        fail(f"only {summary['completed']}/{n} submissions completed")
    if summary["duplicate_executes"] != 0:
        fail("duplicate executes under crash redelivery")
    if summary["stale_accepts"] != 0:
        fail("a stale-epoch write was accepted")
    if result.fencing["refusals_by_epoch"].get(1, 0) < 1:
        fail("the crashed epoch produced no fencing refusal")
    mismatched = [run_id for run_id, base in base_histories.items()
                  if not np.array_equal(result.histories().get(run_id),
                                        base)]
    if mismatched:
        fail(f"histories differ from the uncrashed run: {mismatched}")
    verdict = check_fleet_invariants(result.outcomes,
                                     fencing=result.fencing)
    for violation in verdict["violations"]:
        print(f"    ! {violation}")
    if not verdict["ok"]:
        fail("queue campaign violated the fleet/fencing invariants")
    print(f"    {summary['completed']} completed across "
          f"{summary['incarnations']} incarnations, "
          f"{summary['redeliveries']} redeliveries, "
          f"{summary['refusals']} zombie writes refused, bit-exact")

    print(f"[2] repository outage under journal appends "
          f"(seed {OUTAGE_SEED})")
    grid, pool, registry, queue = build_queue()
    plan = make_repo_outage_plan(OUTAGE_SEED)
    arm_fleet_outages(grid, plan)
    result = run_durable_campaign(grid, pool, registry, queue, subs)
    summary = result.summary()
    if summary["completed"] != n or summary["outstanding"] != 0:
        fail(f"repo outage lost work: {summary['completed']}/{n} done")
    print(f"    {summary['completed']}/{n} completed under {len(plan)} "
          f"repository outages (retried appends, nothing lost)")

    print("[3] file journal round-trip (the CLI path)")
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "queue.jsonl"
        kernel = Kernel()
        queue = ExperimentQueue(kernel, FileJournalStore(path),
                                FencingAuthority(kernel))

        def writer():
            for submission in subs:
                yield from queue.submit(submission)
            resubmit = yield from queue.submit(subs[0])
            return resubmit

        kernel.run(until=kernel.process(writer(), name="smoke.writer"))
        if queue.stats()["submitted"] != n:
            fail("file journal dedupe failed on resubmission")

        grid, pool, registry, queue = build_queue(durable=False)
        queue.store = FileJournalStore(path)
        result = run_durable_campaign(grid, pool, registry, queue, [])
        if result.summary()["outstanding"] != 0:
            fail("file-journal drain left submissions outstanding")
        replayed = FileJournalStore(path)
        kernel = Kernel()
        check = ExperimentQueue(kernel, replayed, FencingAuthority(kernel))
        kernel.run(until=kernel.process(check.recover(),
                                        name="smoke.recheck"))
        if check.stats()["completed"] != n:
            fail("replayed journal does not show every run completed")
    print(f"    {n} submissions journaled, deduped, drained, and "
          "re-replayed from disk")

    print("queue smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
