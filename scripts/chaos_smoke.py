#!/usr/bin/env python
"""CI smoke target: chaos campaigns hold their invariants.

Two fixed seeds over a short MOST assembly (``repro.chaos``):

1. **Recoverable** — seed 1's fault schedule must be ridden out by the
   fault-tolerant coordinator with every protocol invariant intact and
   the result bit-exact against a clean baseline (zero degraded steps).
2. **Forced failover** — seed 7's schedule ends in a permanent outage.
   The site's circuit breaker must open, the numerical surrogate must
   take over, the monitor must raise a ``breaker_open`` alert, and the
   run must still commit every step with zero double-executions and
   every degraded step labelled.

Exits non-zero on any failure, so CI can gate on ``make chaos-smoke``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.chaos import ChaosCampaign
from repro.most import MOSTConfig

RECOVERABLE_SEED = 1
FAILOVER_SEED = 7


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def show(report) -> None:
    inv = report.invariants
    for name, ok in sorted(inv["checks"].items()):
        print(f"    {'ok ' if ok else 'BAD'} {name}")
    for violation in inv["violations"]:
        print(f"    ! {violation}")


def main() -> int:
    config = MOSTConfig().scaled(40)

    print(f"[1] recoverable chaos run (seed {RECOVERABLE_SEED})")
    recoverable = ChaosCampaign(config, n_events=3).run_one(RECOVERABLE_SEED)
    show(recoverable)
    if not recoverable.ok:
        fail(f"invariant violations: {recoverable.invariants['violations']}")
    if not recoverable.result.completed:
        fail(f"recoverable run stopped at "
             f"{recoverable.result.steps_completed} steps")
    if recoverable.invariants["degraded_steps"] != 0:
        fail("recoverable schedule should never need the surrogate")
    if not recoverable.invariants["checks"].get("bit_exact_vs_baseline"):
        fail("recoverable run is not bit-exact against the clean baseline")
    print(f"    completed {recoverable.result.steps_completed} steps, "
          f"recoveries={recoverable.result.recoveries}, bit-exact")

    print(f"[2] forced-failover chaos run (seed {FAILOVER_SEED})")
    forced = ChaosCampaign(config, n_events=2, force_failover=True,
                           monitor=True).run_one(FAILOVER_SEED)
    show(forced)
    if not forced.ok:
        fail(f"invariant violations: {forced.invariants['violations']}")
    if not forced.result.completed:
        fail(f"degraded run stopped at {forced.result.steps_completed} "
             "steps — failover did not carry it through the outage")
    if forced.invariants["degraded_steps"] == 0:
        fail("permanent outage never forced a surrogate swap")
    kinds = {kind for kind, *_ in forced.alerts}
    if "breaker_open" not in kinds:
        fail(f"no breaker_open alert during the permanent outage "
             f"(got {sorted(kinds)})")
    print(f"    completed {forced.result.steps_completed} steps, "
          f"degraded_steps={forced.invariants['degraded_steps']}, "
          f"alerts={sorted(kinds)}")

    print("chaos smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
